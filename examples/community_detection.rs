//! Community detection with LCC — one of the applications the paper's introduction
//! motivates: vertices with a high local clustering coefficient sit inside dense
//! communities, vertices with a low LCC sit on community frontiers or act as
//! bridges.
//!
//! The example builds a synthetic social network of overlapping circles, computes
//! per-vertex LCC with the distributed algorithm, and classifies vertices into
//! community cores, members and bridges, reporting how the classification relates
//! to degree.
//!
//! Run with: `cargo run --release --example community_detection`

use rmatc::prelude::*;

fn main() {
    // A social network with overlapping friendship circles plus a handful of
    // high-degree "celebrity" hubs that connect many circles.
    let graph = EgoCircles::facebook_like().generate_cleaned(7).into_csr();
    println!(
        "Social graph: {} vertices, {} edges",
        graph.vertex_count(),
        graph.logical_edge_count()
    );

    // Distributed LCC over 8 simulated ranks with degree-scored caching.
    let config = DistConfig::cached(8, graph.csr_size_bytes() as usize / 2).with_degree_scores();
    let result = DistLcc::new(config).run(&graph);
    println!(
        "Computed LCC for {} vertices on {} ranks ({} triangles, average LCC {:.3}).\n",
        result.lcc.len(),
        result.rank_count,
        result.triangle_count,
        result.average_lcc()
    );

    // Classify: community cores (high LCC, non-trivial degree), members, and
    // bridges/hubs (low LCC but high degree — they connect communities).
    let degrees = graph.degrees();
    let mut cores = Vec::new();
    let mut bridges = Vec::new();
    let mut members = 0usize;
    for (v, &lcc) in result.lcc.iter().enumerate() {
        let degree = degrees[v];
        if degree < 2 {
            continue;
        }
        if lcc >= 0.5 {
            cores.push((v, degree, lcc));
        } else if lcc <= 0.1 && degree >= 30 {
            bridges.push((v, degree, lcc));
        } else {
            members += 1;
        }
    }
    cores.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap().then(b.1.cmp(&a.1)));
    bridges.sort_by_key(|b| std::cmp::Reverse(b.1));

    println!(
        "Community cores (LCC ≥ 0.5): {}   members: {}   bridges/hubs (LCC ≤ 0.1, degree ≥ 30): {}",
        cores.len(),
        members,
        bridges.len()
    );
    println!("\nTop community-core vertices (dense neighbourhoods):");
    for (v, degree, lcc) in cores.iter().take(5) {
        println!("  vertex {v:>5}  degree {degree:>4}  LCC {lcc:.3}");
    }
    println!("\nTop bridge vertices (high degree, sparse neighbourhood — community connectors):");
    for (v, degree, lcc) in bridges.iter().take(5) {
        println!("  vertex {v:>5}  degree {degree:>4}  LCC {lcc:.3}");
    }

    // The structural signature the paper's introduction describes: bridges have much
    // higher degree than cores, cores have much higher LCC than bridges.
    if let (Some(core), Some(bridge)) = (cores.first(), bridges.first()) {
        assert!(
            core.2 > bridge.2,
            "cores must be more clustered than bridges"
        );
        println!(
            "\nThe most central bridge has {}x the degree but only {:.0}% of the LCC of the \
             densest community core.",
            bridge.1 / core.1.max(1),
            100.0 * bridge.2 / core.2
        );
    }
}
