//! The distributed pipeline end to end, with every knob spelled out: rank
//! setup and partitioning, the paper's cache budget split
//! (`CacheSpec::paper`), degree-centrality eviction scores, double buffering,
//! and the full per-rank statistics report (timing breakdown, RMA counters,
//! and per-window cache statistics).
//!
//! Run with: `cargo run --release --example distributed_lcc`

use rmatc::prelude::*;

fn main() {
    // -- Graph -------------------------------------------------------------
    // Scale 13 R-MAT with the paper's skew (a = 0.57, b = c = 0.19,
    // d = 0.05), edge factor 16; self-loops and duplicates removed.
    let graph = RmatGenerator::paper(13, 16).generate_cleaned(7).into_csr();
    println!(
        "Graph: 2^13 = {} vertices, {} undirected edges ({} bytes of CSR)\n",
        graph.vertex_count(),
        graph.logical_edge_count(),
        graph.csr_size_bytes()
    );

    // -- Rank setup --------------------------------------------------------
    // 8 simulated ranks, each owning a contiguous block of vertices and the
    // CSR rows of exactly those vertices (the paper's 1D block scheme —
    // `PartitionScheme::BalancedBlock1D` would draw degree-balanced
    // boundaries instead). Every rank runs as a thread over a shared
    // passive-target RMA window pair, with no synchronization whatsoever
    // between ranks during the computation.
    let ranks = 8;

    // -- Cache configuration -----------------------------------------------
    // `CacheSpec::paper` reproduces the paper's budget split: C_offsets gets
    // 0.8·|V| bytes ((start, end) pairs for 40% of the vertices), the rest of
    // the budget goes to C_adj. Degree-centrality scores protect high-degree
    // (high-reuse) rows from eviction — the paper's CLaMPI extension.
    let budget = graph.csr_size_bytes() as usize / 2;
    let config = DistConfig {
        ranks,
        scheme: PartitionScheme::Block1D,
        method: IntersectMethod::Hybrid,
        cost_model: CostModel::Analytic,
        network: NetworkModel::aries(),
        double_buffering: true,
        cache: Some(CacheSpec::paper(budget)),
        score_mode: ScoreMode::DegreeCentrality,
        // The self-healing read path: up to 4 attempts per get with exponential
        // backoff. With `faults: None` no fault is ever injected and the policy
        // is never exercised — it exists so chaos tests can flip it on.
        retry: rmatc::prelude::RetryPolicy::default(),
        faults: None,
        pipeline_depth: 1,
        intra_threads: 1,
        // Plain adjacency windows; `GraphStorage::Compressed` (or
        // `RMATC_STORAGE=compressed`) would transfer and cache delta/varint
        // rows instead, with bit-identical scores.
        storage: GraphStorage::from_env(),
    };

    // -- Run ---------------------------------------------------------------
    let result = DistLcc::new(config).run(&graph);
    println!(
        "{} triangles, average LCC {:.4}, {:.1}% of edges remote\n",
        result.triangle_count,
        result.average_lcc(),
        100.0 * result.remote_edge_fraction
    );

    // -- Per-rank reports --------------------------------------------------
    // The paper reports the median over the longest-running node; the same
    // per-rank numbers drive Figures 7-10.
    println!("rank  edges     remote    gets      comm(ms)  overlap(ms)  adj-hit%");
    for rank in &result.ranks {
        let adj_hit = rank
            .adjacency_cache
            .as_ref()
            .map(|c| 100.0 * c.hit_rate())
            .unwrap_or(0.0);
        println!(
            "{:>4}  {:>8}  {:>8}  {:>8}  {:>8.2}  {:>11.2}  {:>7.1}",
            rank.rank,
            rank.edges_processed,
            rank.remote_edges,
            rank.rma.gets,
            rank.timing.comm_ns / 1e6,
            rank.timing.overlapped_ns / 1e6,
            adj_hit
        );
    }

    // -- Aggregated cache statistics ----------------------------------------
    let adj = result.adjacency_cache_totals().expect("C_adj enabled");
    let off = result.offsets_cache_totals().expect("C_offsets enabled");
    println!(
        "\nC_adj:     {:.1}% hits, {:.1}% compulsory-miss floor, {} evictions",
        100.0 * adj.hit_rate(),
        100.0 * adj.compulsory_miss_rate(),
        adj.evictions()
    );
    println!(
        "C_offsets: {:.1}% hits, {:.1}% compulsory-miss floor, {} evictions",
        100.0 * off.hit_rate(),
        100.0 * off.compulsory_miss_rate(),
        off.evictions()
    );
    println!(
        "Longest rank: {:.1} ms modeled ({:.1}% communication), imbalance {:.2}x",
        result.max_rank_time_ns() / 1e6,
        100.0
            * result
                .ranks
                .iter()
                .map(|r| r.timing.comm_fraction())
                .fold(0.0, f64::max),
        result.time_imbalance()
    );
}
