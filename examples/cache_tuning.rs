//! Tuning the CLaMPI caches for a distributed LCC run: sweep the cache budget and
//! the eviction-score mode, and report where the communication savings saturate —
//! the practical workflow behind Figures 7 and 8 of the paper.
//!
//! Run with: `cargo run --release --example cache_tuning`

use rmatc::prelude::*;

fn main() {
    let graph = Dataset::LiveJournal.generate(DatasetScale::Tiny, 3);
    let ranks = 8;
    println!(
        "Graph: LiveJournal stand-in, {} vertices, {} edges, CSR {} bytes, {} ranks\n",
        graph.vertex_count(),
        graph.logical_edge_count(),
        graph.csr_size_bytes(),
        ranks
    );

    let baseline = DistLcc::new(DistConfig::non_cached(ranks)).run(&graph);
    println!(
        "non-cached: {} gets, modeled communication {:.1} ms",
        baseline.total_gets(),
        baseline.max_comm_time_ns() / 1e6
    );

    println!(
        "\n{:<22} {:>10} {:>12} {:>12} {:>10}",
        "configuration", "hit rate", "comm (ms)", "saved", "evictions"
    );
    let csr = graph.csr_size_bytes() as f64;
    for fraction in [0.05, 0.1, 0.25, 0.5, 1.0] {
        for (label, mode) in [
            ("LRU", ScoreMode::Lru),
            ("degree", ScoreMode::DegreeCentrality),
        ] {
            let budget = (csr * fraction) as usize;
            let mut config = DistConfig::cached(ranks, budget);
            config.score_mode = mode;
            let result = DistLcc::new(config).run(&graph);
            assert_eq!(result.triangle_count, baseline.triangle_count);
            let stats = result.adjacency_cache_totals().expect("cache enabled");
            let saved = 1.0 - result.max_comm_time_ns() / baseline.max_comm_time_ns();
            println!(
                "{:<22} {:>9.1}% {:>12.1} {:>11.1}% {:>10}",
                format!("{:.0}% budget, {label}", fraction * 100.0),
                100.0 * stats.hit_rate(),
                result.max_comm_time_ns() / 1e6,
                100.0 * saved,
                stats.evictions()
            );
        }
    }

    println!(
        "\nReading the sweep: savings grow steeply while the adjacency cache still misses hot \
         hub vertices, then saturate once the working set fits; degree-centrality scores only \
         matter while the cache is under pressure (evictions > 0), exactly as in Figure 8."
    );
}
