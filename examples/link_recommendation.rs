//! Link recommendation ("people you may know") — the second application family the
//! paper's introduction cites for triangle counting and clustering coefficients.
//!
//! The idea: a missing edge `(u, w)` is a good recommendation when `u` and `w`
//! already share many common neighbours (each shared neighbour would close a new
//! triangle) and when the neighbourhood is cohesive (high LCC). This example uses
//! the library's intersection kernels — the same ones the LCC computation uses — to
//! score candidate links on a synthetic social graph and prints the top
//! recommendations for a few users.
//!
//! Run with: `cargo run --release --example link_recommendation`

use rmatc::prelude::*;
use rmatc_core::Intersector;

fn main() {
    let graph = BarabasiAlbert::with_closure(3_000, 8, 4)
        .generate_cleaned(11)
        .into_csr();
    println!(
        "Friendship graph: {} vertices, {} edges",
        graph.vertex_count(),
        graph.logical_edge_count()
    );

    // Per-vertex LCC gives the cohesion weight of each user's neighbourhood.
    let lcc = LocalLcc::new(LocalConfig::parallel(4)).run(&graph);
    let intersector = Intersector::new(IntersectMethod::Hybrid);

    // Pick the three highest-degree users as the ones asking for recommendations.
    let mut by_degree: Vec<u32> = (0..graph.vertex_count() as u32).collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    for &user in by_degree.iter().take(3) {
        let friends = graph.neighbours(user);
        // Candidates: friends-of-friends that are not already friends.
        let mut scores: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        for &f in friends {
            for &fof in graph.neighbours(f) {
                if fof == user || graph.has_edge(user, fof) {
                    continue;
                }
                // Score: number of common neighbours (triangles the new edge would
                // close), weighted by the cohesion of the candidate's neighbourhood.
                let common = intersector.count(friends, graph.neighbours(fof)) as f64;
                let cohesion = 1.0 + lcc.lcc[fof as usize];
                scores.insert(fof, common * cohesion);
            }
        }
        let mut ranked: Vec<(u32, f64)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        println!(
            "\nUser {user} (degree {}, LCC {:.3}) — top recommendations:",
            graph.degree(user),
            lcc.lcc[user as usize]
        );
        for (candidate, score) in ranked.iter().take(5) {
            let common = intersector.count(friends, graph.neighbours(*candidate));
            println!(
                "  recommend vertex {candidate:>5}: {common} mutual friends, score {score:.1}"
            );
        }
        if let Some((best, _)) = ranked.first() {
            let common = intersector.count(friends, graph.neighbours(*best));
            assert!(
                common > 0,
                "a recommended link must close at least one triangle"
            );
        }
    }
    println!(
        "\nEvery recommended edge closes at least one triangle; the scores reuse the same \
         hybrid intersection kernel (Eq. 3) as the triangle-counting core."
    );
}
