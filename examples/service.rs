//! The resident query service: a long-lived [`QueryEngine`] serving
//! similarity point queries with warm CLaMPI caches, batched cache-deduped
//! reads, and explicit backpressure.
//!
//! The scenario: an online recommender keeps the co-occurrence graph
//! partitioned and its RMA windows open, answering "how similar are these two
//! items?" / "what are the best matches for this item?" queries as they
//! arrive. Batching lets the engine fetch each hub row once per window even
//! when many queries in the window need it, and the cache keeps hot rows
//! resident *across* windows — the serving workload the paper's eviction
//! scores were designed for.
//!
//! Run with: `cargo run --release --example service`

use rmatc::prelude::*;

fn main() {
    let graph = RmatGenerator::paper(10, 8).generate_cleaned(42).into_csr();
    println!(
        "Catalogue graph: {} items, {} edges",
        graph.vertex_count(),
        graph.logical_edge_count()
    );

    // A resident engine on 4 ranks with adjacency caches at half the CSR
    // footprint and the paper's degree eviction scores. Windows of up to 32
    // queries share fetched rows; at most 256 queries may wait.
    let ranks = 4;
    let dist = DistConfig::cached(ranks, graph.csr_size_bytes() as usize / 2).with_degree_scores();
    let config = ServiceConfig::new(dist)
        .with_batch_size(32)
        .with_queue_capacity(256);
    let mut engine = QueryEngine::new(&graph, config);

    // --- One batch window with overlapping reads -------------------------
    // Every query involves vertex 0 (an R-MAT hub), so the window's planner
    // fetches its row once and reuses it.
    let hub = 0u32;
    for v in 1..=8u32 {
        engine
            .submit(Query::Jaccard { u: hub, v })
            .expect("queue has room");
    }
    engine
        .submit(Query::TopK { u: hub, k: 3 })
        .expect("queue has room");
    engine
        .submit(Query::LccOf { v: hub })
        .expect("queue has room");

    println!(
        "\nFirst window ({} queries around hub {hub}):",
        engine.queue_depth()
    );
    for resp in engine.drain() {
        match resp.result {
            Ok(QueryAnswer::Jaccard(e)) => println!(
                "  Jaccard({},{})          = {:.3}  ({} shared neighbours)",
                e.source, e.destination, e.jaccard, e.common_neighbours
            ),
            Ok(QueryAnswer::TopK(best)) => {
                println!("  TopK({hub}, 3):");
                for e in best {
                    println!(
                        "    ({:>4}, {:>4})  Jaccard {:.3}",
                        e.source, e.destination, e.jaccard
                    );
                }
            }
            Ok(QueryAnswer::Lcc(lcc)) => println!("  Lcc({hub})                = {lcc:.4}"),
            Ok(QueryAnswer::CommonNeighbors(c)) => println!("  CommonNeighbors = {c}"),
            Err(e) => println!("  query {:?} failed: {e}", resp.query),
        }
    }
    let after_first = engine.stats();
    println!(
        "  planner: {} row reads collapsed into {} fetches (dedup ratio {:.2})",
        after_first.row_reads,
        after_first.unique_row_reads,
        after_first.dedup_ratio()
    );

    // --- A sustained stream: the cache compounds across windows ----------
    let n = graph.vertex_count() as u32;
    let mut submitted = 0u64;
    for round in 0..40u32 {
        for i in 0..32u32 {
            let u = (round * 7 + i) % 64; // hot set: the low-id R-MAT hubs
            let q = match i % 3 {
                0 => Query::Jaccard { u, v: (u + 1) % n },
                1 => Query::CommonNeighbors { u, v: (u + 3) % n },
                _ => Query::LccOf { v: u },
            };
            if engine.submit(q).is_ok() {
                submitted += 1;
            }
            engine.run_batch();
        }
    }
    engine.drain();

    let stats = engine.stats();
    assert!(stats.reconciles(), "admission accounting must balance");
    println!("\nAfter {submitted} streamed queries:");
    println!(
        "  dedup ratio {:.2}, adjacency cache hit rate {:.1}%",
        stats.dedup_ratio(),
        stats.cache_hit_rate().unwrap_or(0.0) * 100.0
    );
    println!(
        "  virtual latency p50 {:.0} ns, p99 {:.0} ns (modeled network + measured compute)",
        stats.virtual_latency.p50_ns, stats.virtual_latency.p99_ns
    );
    println!(
        "  completed {} / failed {} / shed {}",
        stats.completed, stats.failed, stats.shed_overload
    );

    // --- Backpressure is explicit, never blocking ------------------------
    let tiny = ServiceConfig::new(
        DistConfig::cached(ranks, graph.csr_size_bytes() as usize / 2).with_degree_scores(),
    )
    .with_queue_capacity(2)
    .with_batch_size(1);
    let mut small = QueryEngine::new(&graph, tiny);
    small.submit(Query::LccOf { v: 1 }).unwrap();
    small.submit(Query::LccOf { v: 2 }).unwrap();
    match small.submit(Query::LccOf { v: 3 }) {
        Err(ServiceError::Overloaded {
            queue_depth,
            capacity,
        }) => println!(
            "\nOverload demo: third submit shed synchronously at depth {queue_depth}/{capacity} \
             — callers always learn their fate immediately."
        ),
        other => unreachable!("expected Overloaded, got {other:?}"),
    }
    // A deadline of 0 virtual ns queued behind other work expires instead of
    // running late: the query ahead of it advances the engine's virtual
    // clock, so by the time its window starts it has already waited too long.
    small.run_batch(); // frees a slot and advances the clock
    let id = small
        .submit_with_deadline(Query::LccOf { v: 3 }, Some(0.0))
        .expect("room after the first batch");
    let late = small
        .drain()
        .into_iter()
        .find(|r| r.id == id)
        .expect("expired queries still respond");
    match late.result {
        Err(ServiceError::DeadlineExceeded { .. }) => {
            println!("Deadline demo: the 0 ns-deadline query expired cleanly in its response.")
        }
        other => unreachable!("expected DeadlineExceeded, got {other:?}"),
    }
}
