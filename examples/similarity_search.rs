//! Edge-similarity search with distributed Jaccard scores — the extension direction
//! the paper's conclusion proposes ("other graph problems that may benefit from the
//! proposed approach"), using the exact same asynchronous RMA machinery and CLaMPI
//! caches as the LCC computation.
//!
//! The scenario: in a co-purchase / co-occurrence graph, edges whose endpoints share
//! most of their neighbourhoods (high Jaccard similarity) indicate near-duplicate or
//! strongly substitutable items, while low-similarity edges are incidental
//! co-occurrences. The example scores every edge, prints the strongest and weakest
//! ties, and shows that caching cuts the remote traffic of the similarity pass just
//! like it does for LCC.
//!
//! Run with: `cargo run --release --example similarity_search`

use rmatc::prelude::*;

fn main() {
    // A clustered co-occurrence graph: dense communities with a few global hubs.
    let graph = EgoCircles {
        vertices: 2_500,
        communities: 160,
        max_community_size: 120,
        intra_probability: 0.4,
        hubs: 6,
    }
    .generate_cleaned(5)
    .into_csr();
    println!(
        "Co-occurrence graph: {} items, {} co-occurrence edges",
        graph.vertex_count(),
        graph.logical_edge_count()
    );

    let ranks = 8;
    let plain = DistJaccard::new(DistConfig::non_cached(ranks)).run(&graph);
    let cached = DistJaccard::new(
        DistConfig::cached(ranks, graph.csr_size_bytes() as usize / 2).with_degree_scores(),
    )
    .run(&graph);
    assert_eq!(
        plain.edges, cached.edges,
        "caching must not change the scores"
    );

    println!(
        "Scored {} edges on {ranks} ranks; mean Jaccard similarity {:.3}.",
        plain.edges.len(),
        plain.mean_jaccard()
    );
    println!("\nStrongest ties (near-duplicate neighbourhoods):");
    for e in cached.top_k(5) {
        println!(
            "  ({:>5}, {:>5})  {} shared neighbours, Jaccard {:.3}",
            e.source, e.destination, e.common_neighbours, e.jaccard
        );
    }
    let weakest = plain
        .edges
        .iter()
        .filter(|e| e.common_neighbours == 0)
        .take(3)
        .collect::<Vec<_>>();
    println!(
        "\nIncidental co-occurrences (no shared neighbourhood): {} edges",
        weakest.len()
    );

    println!(
        "\nRMA traffic: {} gets without caching vs {} with CLaMPI ({}% saved) — the same \
         data reuse LCC exploits carries over to the similarity pass.",
        plain.total_gets(),
        cached.total_gets(),
        (100.0 * (1.0 - cached.total_gets() as f64 / plain.total_gets() as f64)).round()
    );
}
