//! Quickstart: build a graph, compute LCC locally, then distribute it over
//! simulated ranks with and without RMA caching, and compare.
//!
//! Run with: `cargo run --release --example quickstart`

use rmatc::prelude::*;

fn main() {
    // 1. Build a scale-free graph with the paper's R-MAT parameters
    //    (a = 0.57, b = c = 0.19, d = 0.05), cleaned and in CSR form.
    let graph = RmatGenerator::paper(12, 16).generate_cleaned(42).into_csr();
    println!(
        "Graph: {} vertices, {} undirected edges, CSR size {} bytes",
        graph.vertex_count(),
        graph.logical_edge_count(),
        graph.csr_size_bytes()
    );

    // 2. Shared-memory computation (the per-node kernel of the paper).
    let local = LocalLcc::new(LocalConfig::parallel(4)).run(&graph);
    println!(
        "Shared memory: {} triangles, average LCC {:.4}, {:.3} edges/µs",
        local.triangle_count,
        local.average_lcc(),
        local.edges_per_us()
    );

    // 3. Fully asynchronous distributed computation on 8 simulated ranks,
    //    without caching.
    let non_cached = DistLcc::new(DistConfig::non_cached(8)).run(&graph);
    println!(
        "Distributed (8 ranks, no cache): {} triangles, {} RMA gets, {:.1} MiB moved, \
         modeled running time {:.1} ms",
        non_cached.triangle_count,
        non_cached.total_gets(),
        non_cached.total_bytes() as f64 / (1024.0 * 1024.0),
        non_cached.max_rank_time_ns() / 1e6
    );

    // 4. The same computation with CLaMPI caching of both windows and
    //    degree-centrality eviction scores.
    let cache_budget = graph.csr_size_bytes() as usize / 2;
    let cached = DistLcc::new(DistConfig::cached(8, cache_budget).with_degree_scores()).run(&graph);
    let adj_stats = cached
        .adjacency_cache_totals()
        .expect("adjacency cache enabled");
    println!(
        "Distributed (8 ranks, cached):   {} triangles, {} RMA gets, hit rate {:.1}%, \
         modeled running time {:.1} ms",
        cached.triangle_count,
        cached.total_gets(),
        100.0 * adj_stats.hit_rate(),
        cached.max_rank_time_ns() / 1e6
    );

    // 5. The three implementations must agree exactly.
    assert_eq!(local.triangle_count, non_cached.triangle_count);
    assert_eq!(local.triangle_count, cached.triangle_count);
    println!(
        "Caching removed {:.1}% of the remote gets and {:.1}% of the modeled communication time.",
        100.0 * (1.0 - cached.total_gets() as f64 / non_cached.total_gets() as f64),
        100.0 * (1.0 - cached.max_comm_time_ns() / non_cached.max_comm_time_ns())
    );
}
