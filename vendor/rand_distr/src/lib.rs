//! Offline stub of `rand_distr`: the `Distribution` trait and the `Zipf`
//! distribution (the only one this workspace samples).

use rand::Rng;

/// Types that produce values of `T` when driven by an RNG.
pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error type for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZipfError;

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid Zipf parameters")
    }
}

impl std::error::Error for ZipfError {}

/// Zipf distribution over `1..=n` with exponent `s`: `P(k) ∝ 1 / k^s`.
///
/// Sampled by inverse-CDF binary search over a precomputed table — `n` is a
/// few hundred everywhere in this workspace, so the table is tiny and the
/// sampling exact.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 || !s.is_finite() || s < 0.0 {
            return Err(ZipfError);
        }
        let n = usize::try_from(n).map_err(|_| ZipfError)?;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Self { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        (idx + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn samples_stay_in_support_and_skew_low() {
        let z = Zipf::new(100, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut ones = 0usize;
        for _ in 0..5_000 {
            let x = z.sample(&mut rng);
            assert!((1.0..=100.0).contains(&x));
            if x == 1.0 {
                ones += 1;
            }
        }
        // P(1) ≈ 0.26 for s = 1.2, n = 100: the mode must dominate.
        assert!(ones > 800, "only {ones} samples of rank 1");
    }
}
