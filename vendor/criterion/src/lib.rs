//! Offline stub of the `criterion` API subset this workspace uses.
//!
//! `criterion_group!` / `criterion_main!`, benchmark groups, `Bencher::iter`
//! and `iter_batched`, `Throughput::Elements`, and `BenchmarkId` are all
//! supported. Measurement is a warmup phase followed by `sample_size` samples
//! of an adaptively chosen iteration count; the median per-iteration time is
//! reported.
//!
//! In addition to the human-readable table on stdout, passing `--json <path>`
//! after `--` (`cargo bench --bench intersect -- --json out.json`) writes
//! every record as machine-readable JSON, and `--history <path>` *appends*
//! one self-contained JSON line per run — commit hash, timestamp, host
//! metadata, and all records — building a per-commit perf trajectory that
//! `bench-diff` (in `rmatc-bench`) can gate regressions on.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How input values are amortized in `iter_batched`; the stub times every
/// routine call individually, so the variants only exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation attached to subsequent benchmarks in a group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { id: name }
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Record {
    pub group: String,
    pub bench: String,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
    pub throughput_elems: Option<u64>,
    /// Relative spread of the per-repeat medians when `--repeat N` ran the
    /// measurement more than once: `(max − min) / median × 100`. `0.0` for
    /// single runs and reported metrics — a large value flags a noisy
    /// record that a regression gate should not trust blindly.
    pub spread_pct: f64,
}

impl Record {
    /// Elements processed per microsecond, when a throughput was declared.
    pub fn elems_per_us(&self) -> Option<f64> {
        self.throughput_elems.map(|e| {
            if self.median_ns == 0.0 {
                0.0
            } else {
                e as f64 / (self.median_ns / 1_000.0)
            }
        })
    }
}

/// Top-level driver; collects every measurement for the final report.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
    measurement_time: Duration,
    records: Vec<Record>,
    filter: Option<String>,
    repeat: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 30,
            warmup: Duration::from_millis(60),
            measurement_time: Duration::from_millis(240),
            records: Vec::new(),
            filter: parse_filter(),
            repeat: parse_repeat(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs every measurement `n` times and records the median of the
    /// per-run medians plus their spread (also settable via `--repeat N`
    /// after `--`). Repeats steady a regression gate: one noisy run cannot
    /// move the recorded median to an extreme.
    pub fn repeat(mut self, n: usize) -> Self {
        self.repeat = n.max(1);
        self
    }

    /// Records a non-timing metric (a hit rate in ppm, bytes moved, ...) as
    /// an ordinary record — it prints with the table and lands in `--json` /
    /// `--history` output, so downstream gates (`bench-diff`) can track it
    /// exactly like a timing. The value is carried in `median_ns`.
    pub fn report_metric(
        &mut self,
        group: impl Into<String>,
        bench: impl Into<String>,
        value: f64,
    ) -> &mut Self {
        let group = group.into();
        let bench = bench.into();
        let full = if group.is_empty() {
            bench.clone()
        } else {
            format!("{group}/{bench}")
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        println!("{full:<56} metric {value:>14.1}");
        self.records.push(Record {
            group,
            bench,
            median_ns: value,
            mean_ns: value,
            samples: 1,
            iters_per_sample: 1,
            throughput_elems: None,
            spread_pct: 0.0,
        });
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut group = self.benchmark_group("");
        group.bench_function(id.id.as_str(), f);
        group.finish();
        self
    }

    pub fn into_records(self) -> Vec<Record> {
        self.records
    }

    fn measure(
        &mut self,
        group: &str,
        bench: &str,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let full = if group.is_empty() {
            bench.to_string()
        } else {
            format!("{group}/{bench}")
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: Mode::Warmup {
                budget: self.warmup,
            },
            per_iter_estimate_ns: 0.0,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let per_sample_budget =
            (self.measurement_time.as_nanos() as f64 / sample_size as f64).max(50_000.0);
        let iters =
            (per_sample_budget / bencher.per_iter_estimate_ns.max(0.5)).clamp(1.0, 1e9) as u64;
        // `--repeat N` runs the whole measurement N times; the recorded
        // median is the median of the per-run medians, and the run-to-run
        // spread is kept alongside so gates can judge how noisy it was.
        let mut run_medians = Vec::with_capacity(self.repeat);
        let mut total_sum = 0.0;
        let mut total_samples = 0usize;
        for _ in 0..self.repeat {
            bencher.mode = Mode::Measure {
                samples: sample_size,
                iters,
            };
            bencher.samples_ns.clear();
            f(&mut bencher);
            let mut samples = std::mem::take(&mut bencher.samples_ns);
            if samples.is_empty() {
                continue;
            }
            samples.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
            run_medians.push(samples[samples.len() / 2]);
            total_sum += samples.iter().sum::<f64>();
            total_samples += samples.len();
        }
        if run_medians.is_empty() {
            return;
        }
        run_medians.sort_by(|a, b| a.partial_cmp(b).expect("medians are finite"));
        let median_ns = run_medians[run_medians.len() / 2];
        let spread_pct = if run_medians.len() > 1 && median_ns > 0.0 {
            (run_medians[run_medians.len() - 1] - run_medians[0]) / median_ns * 100.0
        } else {
            0.0
        };
        let mean_ns = total_sum / total_samples as f64;
        let throughput_elems = match throughput {
            Some(Throughput::Elements(e)) => Some(e),
            _ => None,
        };
        let record = Record {
            group: group.to_string(),
            bench: bench.to_string(),
            median_ns,
            mean_ns,
            samples: total_samples,
            iters_per_sample: iters,
            throughput_elems,
            spread_pct,
        };
        let spread = if record.spread_pct > 0.0 {
            format!(
                "  (±{:.1}% over {} runs)",
                record.spread_pct,
                run_medians.len()
            )
        } else {
            String::new()
        };
        match record.elems_per_us() {
            Some(rate) => println!(
                "{full:<56} median {:>12} /iter  ({rate:.1} elems/us){spread}",
                fmt_ns(record.median_ns)
            ),
            None => println!(
                "{full:<56} median {:>12} /iter{spread}",
                fmt_ns(record.median_ns)
            ),
        }
        self.records.push(record);
    }
}

/// The operand of `--<flag>`, if present and plausible. Cargo appends its own
/// flags (e.g. `--bench`) after user args, so a flag-like token following the
/// flag means the path was omitted.
fn parse_path_flag(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == flag {
            return match args.next() {
                Some(path) if !path.starts_with('-') => Some(path),
                _ => {
                    eprintln!("{flag} requires a path operand; ignoring");
                    None
                }
            };
        }
    }
    None
}

fn parse_json_path() -> Option<String> {
    parse_path_flag("--json").map(resolve_output_path)
}

fn parse_history_path() -> Option<String> {
    parse_path_flag("--history").map(resolve_output_path)
}

/// Resolves a relative output path against the workspace root instead of the
/// package directory `cargo bench` runs benchmarks in, so
/// `cargo bench ... -- --json BENCH_x.json` lands next to the root
/// `Cargo.toml` whether invoked from the root or a member crate. The root is
/// the nearest ancestor holding a `Cargo.lock`; without one (bench binary run
/// outside cargo), the path is used as given.
fn resolve_output_path(path: String) -> String {
    if std::path::Path::new(&path).is_absolute() {
        return path;
    }
    let Ok(cwd) = std::env::current_dir() else {
        return path;
    };
    cwd.ancestors()
        .find(|dir| dir.join("Cargo.lock").is_file())
        .map(|root| root.join(&path).to_string_lossy().into_owned())
        .unwrap_or(path)
}

/// The operand of `--repeat`, clamped to at least 1; absent or malformed
/// operands fall back to a single run.
fn parse_repeat() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--repeat" {
            return match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => n,
                _ => {
                    eprintln!("--repeat requires a positive integer operand; ignoring");
                    1
                }
            };
        }
    }
    1
}

/// First positional CLI argument = substring filter on benchmark names
/// (mirrors criterion/libtest). `--json <path>`, `--history <path>`,
/// `--repeat <n>` and other flags are skipped.
fn parse_filter() -> Option<String> {
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        if arg == "--json" || arg == "--history" || arg == "--repeat" {
            if args.peek().is_some_and(|next| !next.starts_with('-')) {
                args.next();
            }
        } else if !arg.starts_with('-') {
            return Some(arg);
        }
    }
    None
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        let (name, throughput) = (self.name.clone(), self.throughput);
        self.criterion
            .measure(&name, &id.id, throughput, sample_size, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

enum Mode {
    Warmup { budget: Duration },
    Measure { samples: usize, iters: u64 },
}

/// Passed to every benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    mode: Mode,
    per_iter_estimate_ns: f64,
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            Mode::Warmup { budget } => {
                let start = Instant::now();
                let mut iters = 0u64;
                while start.elapsed() < budget || iters == 0 {
                    black_box(routine());
                    iters += 1;
                    if iters >= 1_000_000 {
                        break;
                    }
                }
                self.per_iter_estimate_ns = start.elapsed().as_nanos() as f64 / iters as f64;
            }
            Mode::Measure { samples, iters } => {
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    self.samples_ns
                        .push(start.elapsed().as_nanos() as f64 / iters as f64);
                }
            }
        }
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        match self.mode {
            Mode::Warmup { budget } => {
                let mut spent = Duration::ZERO;
                let mut iters = 0u64;
                while spent < budget || iters == 0 {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(input));
                    spent += start.elapsed();
                    iters += 1;
                    if iters >= 1_000_000 {
                        break;
                    }
                }
                self.per_iter_estimate_ns = spent.as_nanos() as f64 / iters as f64;
            }
            Mode::Measure { samples, iters } => {
                for _ in 0..samples {
                    let mut spent = Duration::ZERO;
                    for _ in 0..iters {
                        let input = setup();
                        let start = Instant::now();
                        black_box(routine(input));
                        spent += start.elapsed();
                    }
                    self.samples_ns.push(spent.as_nanos() as f64 / iters as f64);
                }
            }
        }
    }
}

fn host_json() -> String {
    let cpus = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(0);
    format!(
        "{{\"cpus\": {cpus}, \"arch\": {:?}, \"os\": {:?}}}",
        std::env::consts::ARCH,
        std::env::consts::OS,
    )
}

fn record_json(r: &Record) -> String {
    let throughput = match r.throughput_elems {
        Some(e) => e.to_string(),
        None => "null".to_string(),
    };
    let elems_per_us = match r.elems_per_us() {
        Some(v) => format!("{v:.3}"),
        None => "null".to_string(),
    };
    format!(
        "{{\"group\": {:?}, \"bench\": {:?}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \
         \"samples\": {}, \"iters_per_sample\": {}, \"throughput_elems\": {}, \
         \"elems_per_us\": {}, \"spread_pct\": {:.2}}}",
        r.group,
        r.bench,
        r.median_ns,
        r.mean_ns,
        r.samples,
        r.iters_per_sample,
        throughput,
        elems_per_us,
        r.spread_pct,
    )
}

/// The commit the benchmark ran on: `GITHUB_SHA` in CI, `git rev-parse HEAD`
/// locally, `"unknown"` outside a repository.
fn current_commit() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Appends one self-contained history line (commit, timestamp, host, records)
/// to `path`, creating parent directories as needed.
fn append_history(path: &str, records: &[Record]) {
    use std::io::Write;
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let body: Vec<String> = records.iter().map(record_json).collect();
    let line = format!(
        "{{\"commit\": {:?}, \"timestamp\": {timestamp}, \"host\": {}, \"records\": [{}]}}\n",
        current_commit(),
        host_json(),
        body.join(", "),
    );
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    let result = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut file| file.write_all(line.as_bytes()));
    match result {
        Ok(()) => println!("appended {} records to {path}", records.len()),
        Err(e) => eprintln!("failed to append history to {path}: {e}"),
    }
}

/// Final reporting: prints the table footer; `--json <path>` writes all
/// records as one JSON snapshot with host metadata (core count matters:
/// parallel sections measured on a single-core host show flat curves that say
/// nothing about the parallel code); `--history <path>` appends a
/// one-line-per-run commit-stamped record for trend tracking.
pub fn finalize(records: Vec<Record>) {
    println!("\n{} benchmarks measured", records.len());
    if let Some(path) = parse_json_path() {
        let mut out = format!("{{\"host\": {},\n\"records\": [\n", host_json());
        for (i, r) in records.iter().enumerate() {
            let sep = if i + 1 == records.len() { "" } else { "," };
            out.push_str(&format!("  {}{sep}\n", record_json(r)));
        }
        out.push_str("]}\n");
        match std::fs::write(&path, out) {
            Ok(()) => println!("wrote {} records to {path}", records.len()),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if let Some(path) = parse_history_path() {
        append_history(&path, &records);
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() -> $crate::Criterion {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut records = Vec::new();
            $( records.extend($group().into_records()); )+
            $crate::finalize(records);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(10));
        c.benchmark_group("g")
            .bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let records = c.into_records();
        assert_eq!(records.len(), 1);
        assert!(records[0].median_ns > 0.0);
    }

    #[test]
    fn benchmark_id_formats_parameter() {
        let id = BenchmarkId::new("hybrid", 8);
        assert_eq!(id.id, "hybrid/8");
    }

    #[test]
    fn repeat_records_median_of_medians_with_spread() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .repeat(3);
        c.benchmark_group("g")
            .bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let records = c.into_records();
        assert_eq!(records.len(), 1);
        assert!(records[0].median_ns > 0.0);
        assert!(records[0].spread_pct >= 0.0);
        assert_eq!(records[0].samples, 9, "3 repeats × 3 samples");
    }

    #[test]
    fn reported_metrics_become_records() {
        let mut c = Criterion::default();
        c.report_metric("cache_policy", "gdsf/missrate_ppm", 123456.0);
        let records = c.into_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].group, "cache_policy");
        assert_eq!(records[0].bench, "gdsf/missrate_ppm");
        assert_eq!(records[0].median_ns, 123456.0);
        assert_eq!(records[0].spread_pct, 0.0);
        let json = record_json(&records[0]);
        assert!(json.contains("\"spread_pct\": 0.00"), "{json}");
    }
}
