//! Strategy combinators: how random values of each shape are generated.

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of random values of type `Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

// Floating-point ranges support only the half-open form (inclusive float
// ranges are a footgun the real crate also steers away from).
impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// `prop_flat_map` adapter: the outer value parameterizes the inner strategy.
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Types with a canonical "arbitrary" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod sample {
    use super::Arbitrary;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Mirror of proptest's `sample::Index`: a position drawn independently of
    /// any collection, resolved against a concrete length with
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps this draw onto `0..len`. Panics when `len` is 0, like the
        /// real crate.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Self(rng.gen::<u64>())
        }
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_vecs_compose() {
        let strat = (2usize..50)
            .prop_flat_map(|n| (Just(n), collection::vec((0..n as u32, 0..n as u32), 0..30)));
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let (n, edges) = strat.generate(&mut rng);
            assert!((2..50).contains(&n));
            assert!(edges.len() < 30);
            for (u, v) in edges {
                assert!((u as usize) < n && (v as usize) < n);
            }
        }
    }

    #[test]
    fn any_bool_produces_both_values() {
        let strat = any::<bool>();
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
