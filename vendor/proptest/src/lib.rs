//! Offline stub of the `proptest` API subset this workspace uses.
//!
//! Implements the `proptest!` macro, composable strategies (integer ranges,
//! tuples, `Just`, `prop::collection::vec`, `any::<T>()`, `prop_map`,
//! `prop_flat_map`) and the `prop_assert*` macros. Cases are generated from a
//! deterministic per-test seed so failures reproduce; there is no shrinking —
//! a failing case reports its case index and message instead.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Error carried out of a failing test case by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn new(msg: String) -> Self {
        Self(msg)
    }

    /// Mirror of proptest's `TestCaseError::fail` constructor.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// FNV-1a, used to derive a stable per-test base seed from the test name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    hash
}

/// Executes `case` for every generated input; panics (failing the enclosing
/// `#[test]`) on the first case whose result is `Err`.
pub fn run_proptest(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    let base = fnv1a(name.as_bytes());
    for i in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = case(&mut rng) {
            panic!("proptest '{name}' failed at case {i}/{}: {e}", config.cases);
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` and
/// `prop::sample::Index` resolve.
pub mod prop {
    pub use crate::strategy::{collection, sample};
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::new(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::new(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::new(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::TestCaseError::new(format!(
                        "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r
                    )));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::TestCaseError::new(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    )));
                }
            }
        }
    };
}

/// Skips the rest of the case when the assumption does not hold (the case
/// counts as passed, matching proptest's rejection semantics closely enough
/// for these tests' loose assumptions).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategies = ( $($strat,)+ );
                $crate::run_proptest(__config, stringify!($name), |__rng| {
                    $crate::__proptest_bind!(__strategies, __rng, $($pat),+);
                    let __result: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    __result
                });
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($strats:ident, $rng:ident, $p0:pat) => {
        let $p0 = $crate::Strategy::generate(&$strats.0, $rng);
    };
    ($strats:ident, $rng:ident, $p0:pat, $p1:pat) => {
        let $p0 = $crate::Strategy::generate(&$strats.0, $rng);
        let $p1 = $crate::Strategy::generate(&$strats.1, $rng);
    };
    ($strats:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat) => {
        let $p0 = $crate::Strategy::generate(&$strats.0, $rng);
        let $p1 = $crate::Strategy::generate(&$strats.1, $rng);
        let $p2 = $crate::Strategy::generate(&$strats.2, $rng);
    };
    ($strats:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat, $p3:pat) => {
        let $p0 = $crate::Strategy::generate(&$strats.0, $rng);
        let $p1 = $crate::Strategy::generate(&$strats.1, $rng);
        let $p2 = $crate::Strategy::generate(&$strats.2, $rng);
        let $p3 = $crate::Strategy::generate(&$strats.3, $rng);
    };
    ($strats:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat, $p3:pat, $p4:pat) => {
        let $p0 = $crate::Strategy::generate(&$strats.0, $rng);
        let $p1 = $crate::Strategy::generate(&$strats.1, $rng);
        let $p2 = $crate::Strategy::generate(&$strats.2, $rng);
        let $p3 = $crate::Strategy::generate(&$strats.3, $rng);
        let $p4 = $crate::Strategy::generate(&$strats.4, $rng);
    };
    ($strats:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat, $p3:pat, $p4:pat, $p5:pat) => {
        let $p0 = $crate::Strategy::generate(&$strats.0, $rng);
        let $p1 = $crate::Strategy::generate(&$strats.1, $rng);
        let $p2 = $crate::Strategy::generate(&$strats.2, $rng);
        let $p3 = $crate::Strategy::generate(&$strats.3, $rng);
        let $p4 = $crate::Strategy::generate(&$strats.4, $rng);
        let $p5 = $crate::Strategy::generate(&$strats.5, $rng);
    };
    ($strats:ident, $rng:ident, $p0:pat, $p1:pat, $p2:pat, $p3:pat, $p4:pat, $p5:pat, $p6:pat) => {
        let $p0 = $crate::Strategy::generate(&$strats.0, $rng);
        let $p1 = $crate::Strategy::generate(&$strats.1, $rng);
        let $p2 = $crate::Strategy::generate(&$strats.2, $rng);
        let $p3 = $crate::Strategy::generate(&$strats.3, $rng);
        let $p4 = $crate::Strategy::generate(&$strats.4, $rng);
        let $p5 = $crate::Strategy::generate(&$strats.5, $rng);
        let $p6 = $crate::Strategy::generate(&$strats.6, $rng);
    };
}
