//! The persistent work-stealing thread pool behind the `rayon` facade.
//!
//! A single process-wide pool is built lazily on first parallel use and lives
//! for the rest of the process (workers are detached; an idle worker costs one
//! parked OS thread). Sizing, in decreasing precedence: `RMATC_THREADS`,
//! `RAYON_NUM_THREADS`, the first caller's hint (e.g. `LocalConfig::threads`)
//! raised to the core count, the core count.
//!
//! ## Scheduling
//!
//! A parallel call ([`run_tasks`]) allocates a stack-held `JobCore`, injects a
//! single task covering all `n` task indices into the global injector queue,
//! and then *helps*: it steals and executes tasks itself while waiting, so
//! work completes even if every worker is busy with other jobs. Workers pop
//! the injected task and split it by recursive halving onto their own
//! Chase-Lev deque ([`super::deque`]); idle workers steal the biggest ranges
//! from the top. The job's `remaining` counter reaches zero exactly when every
//! task index has executed, which unparks the submitting thread.
//!
//! Nested parallel calls from inside a worker split onto the pool too: the
//! submitting worker pushes the sub-job onto its *own* deque (so idle workers
//! can steal it) and then helps — popping its own deque first, then stealing,
//! then draining the injector — until the sub-job's counter reaches zero. The
//! helping loop never blocks indefinitely (`park_timeout` only), so a pool of
//! one cannot deadlock: with a single worker the nested call simply runs
//! inline, exactly as before. Panics raised inside a nested job unwind out of
//! the nested `run_tasks`, are caught by the *outer* job's `catch_unwind`,
//! and reach the original submitter.

use crate::deque::{Deque, Task};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::{self, Thread};
use std::time::Duration;

/// One parallel call's shared state, stack-held by the submitting thread. Task
/// entries carry a type-erased pointer to this; the pointer stays valid
/// because the submitter blocks until `remaining` hits zero, and `remaining`
/// only hits zero after the final task's last touch of this struct.
struct JobCore {
    /// Monomorphized thunk: calls the closure behind `ctx` with a task index.
    run: unsafe fn(*const (), usize),
    /// The `&impl Fn(usize)` of the submitting call.
    ctx: *const (),
    /// Task indices not yet executed.
    remaining: AtomicUsize,
    /// The submitting thread, unparked by whoever executes the last index.
    waiter: Thread,
    /// First panic raised by any task, rethrown on the submitting thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

unsafe fn call_thunk<F: Fn(usize) + Sync>(ctx: *const (), index: usize) {
    (*(ctx as *const F))(index)
}

struct Pool {
    deques: Vec<Deque>,
    /// Externally injected tasks, plus the condvar idle workers sleep on.
    injector: Mutex<VecDeque<Task>>,
    idle: Condvar,
    /// Workers currently blocked in `idle.wait` (kept exact under the
    /// injector lock; read without it only to skip needless notifies).
    sleepers: AtomicUsize,
    /// Round-robin hint so thieves do not all hammer deque 0.
    next_victim: AtomicUsize,
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();
/// OS threads ever spawned by this pool — observable proof that repeated
/// parallel calls reuse workers instead of forking per call.
static THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Whether the current thread is one of the pool's workers.
pub fn in_worker() -> bool {
    WORKER_INDEX.with(Cell::get).is_some()
}

/// The current thread's deque index, if it is a pool worker.
fn worker_index() -> Option<usize> {
    WORKER_INDEX.with(Cell::get)
}

/// Total OS threads the pool has ever spawned (0 before first parallel use;
/// equal to the pool size — and never growing — afterwards).
pub fn threads_spawned() -> usize {
    THREADS_SPAWNED.load(Ordering::Acquire)
}

/// Parses one thread-count environment value. `None` means "no usable
/// override" — unset is silent, but a set-yet-invalid value (unparseable,
/// zero, or absurdly large) earns a warning on stderr instead of being
/// silently ignored: a typo'd `RMATC_THREADS=1o` that quietly runs on all
/// cores is exactly the kind of mis-sized run that wastes an allocation.
fn parse_threads(var: &str, raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(0) => {
            eprintln!("warning: {var}=0 is not a valid thread count; using the core count");
            None
        }
        Ok(n) if n > 1024 => {
            eprintln!("warning: {var}={n} exceeds the 1024-thread cap; using the core count");
            None
        }
        Ok(n) => Some(n),
        Err(_) => {
            eprintln!("warning: {var}={raw:?} is not a thread count; using the core count");
            None
        }
    }
}

/// Environment override, read once: `effective_parallelism` runs on every
/// parallel-region entry, and `env::var` + `available_parallelism` are
/// lock/syscall-priced — paying them per intersection would swamp the very
/// region-entry cost the pool exists to remove.
fn env_threads() -> Option<usize> {
    static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *ENV_THREADS.get_or_init(|| {
        ["RMATC_THREADS", "RAYON_NUM_THREADS"]
            .iter()
            .find_map(|var| parse_threads(var, &std::env::var(var).ok()?))
    })
}

/// Physical core count, read once (see [`env_threads`] on why).
fn available_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Builds the global pool if it does not exist yet and returns its size.
/// `hint` is the caller's desired parallelism (0 = no opinion); environment
/// overrides win, and a positive hint is raised to the core count so an
/// intentionally narrow first caller does not starve later wide ones.
///
/// A hint *above* the core count is honored too: `run_tasks` and [`scope`]
/// dispatch across the full pool (preemptive interleaving exercises the
/// stealing protocol even on narrow hosts — that is what the pool's own
/// tests rely on), while the parallel-iterator facade separately caps its
/// dispatch width at [`effective_parallelism`]. Workers idle beyond that cap
/// cost one parked thread waking ~10x/s each.
///
/// [`scope`]: crate::scope
pub fn ensure_pool(hint: usize) -> usize {
    pool_with_hint(hint).deques.len()
}

/// Pool size without forcing construction: the actual size once built, the
/// size a build would pick otherwise.
pub fn current_num_threads() -> usize {
    match POOL.get() {
        Some(pool) => pool.deques.len(),
        None => env_threads().unwrap_or_else(available_cores),
    }
}

/// The parallel width worth *dispatching* from outside the pool: an explicit
/// environment override wins; otherwise the pool size capped to the physical
/// core count. A pool can be larger than the machine (a wide `ensure_pool`
/// hint keeps later callers honest), but fanning a region out wider than the
/// hardware only adds context-switch overhead — the previous scoped-thread
/// stub applied the same `cores.min(len)` cap.
pub fn effective_parallelism() -> usize {
    env_threads().unwrap_or_else(|| available_cores().min(current_num_threads()))
}

fn pool_with_hint(hint: usize) -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = env_threads()
            .unwrap_or_else(|| {
                let cores = available_cores();
                if hint > 0 {
                    hint.max(cores)
                } else {
                    cores
                }
            })
            .clamp(1, 1024);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            deques: (0..threads).map(|_| Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            idle: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            next_victim: AtomicUsize::new(0),
        }));
        for index in 0..threads {
            THREADS_SPAWNED.fetch_add(1, Ordering::AcqRel);
            thread::Builder::new()
                .name(format!("rmatc-pool-{index}"))
                .spawn(move || worker_loop(pool, index))
                .expect("failed to spawn pool worker");
        }
        pool
    })
}

/// Executes `run(0..n)` across the pool, blocking until every index has run.
/// Panics from tasks are rethrown here (first one wins). Calls from inside a
/// pool worker split the sub-job onto the worker's own deque and help until it
/// completes; a pool of one runs everything inline (nothing to split to).
pub(crate) fn run_tasks<F: Fn(usize) + Sync>(n: usize, run: &F) {
    if n == 0 {
        return;
    }
    let me = worker_index();
    if n == 1 {
        for index in 0..n {
            run(index);
        }
        return;
    }
    // A worker never lazily *builds* the pool — it exists by definition.
    let pool = match me {
        Some(_) => POOL.get().expect("a worker implies a built pool"),
        None => pool_with_hint(0),
    };
    if pool.deques.len() <= 1 {
        for index in 0..n {
            run(index);
        }
        return;
    }
    let job = JobCore {
        run: call_thunk::<F>,
        ctx: run as *const F as *const (),
        remaining: AtomicUsize::new(n),
        waiter: thread::current(),
        panic: Mutex::new(None),
    };
    let task = Task {
        job: &job as *const JobCore as usize,
        lo: 0,
        hi: n,
    };
    match me {
        // Nested submit: the whole range goes to the submitter's own deque
        // where idle workers can steal the top (largest) half while the
        // submitter helps from the bottom. If the ring is full the sub-job
        // runs through `execute` directly — same splitting, no queueing.
        Some(index) => {
            if pool.deques[index].push(task) {
                pool.wake_sleepers();
            } else {
                pool.execute(me, task);
            }
        }
        None => pool.inject(task),
    }
    pool.help_until_done(me, &job);
    let payload = job.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

fn worker_loop(pool: &'static Pool, me: usize) {
    WORKER_INDEX.with(|slot| slot.set(Some(me)));
    loop {
        if let Some(task) = pool.deques[me].pop() {
            pool.execute(Some(me), task);
            continue;
        }
        if let Some(task) = pool.steal(me) {
            pool.execute(Some(me), task);
            continue;
        }
        // Check the injector and sleep under the same lock, so an inject
        // cannot slip between the check and the wait: `inject` notifies under
        // this lock whenever sleepers are registered, and a task pushed to a
        // deque without a notify is still drained by its owner's next pop.
        // The long timeout is only a liveness backstop for that unnotified
        // window (a sleeping thief misses a steal opportunity, never work
        // loss) and keeps a fully idle pool near zero CPU.
        let mut queue = pool.injector.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(task) = queue.pop_front() {
            drop(queue);
            pool.execute(Some(me), task);
            continue;
        }
        pool.sleepers.fetch_add(1, Ordering::SeqCst);
        let (queue, _) = pool
            .idle
            .wait_timeout(queue, Duration::from_millis(100))
            .unwrap_or_else(|e| e.into_inner());
        pool.sleepers.fetch_sub(1, Ordering::SeqCst);
        drop(queue);
    }
}

impl Pool {
    fn inject(&self, task: Task) {
        let mut queue = self.injector.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(task);
        // Demand-driven wake-up: one worker per new task. The woken worker's
        // own splits wake further sleepers (`wake_sleepers` per push), so the
        // number of running workers tracks the number of available tasks
        // instead of jumping to the full pool on every region entry.
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            self.idle.notify_one();
        }
    }

    fn pop_injected(&self) -> Option<Task> {
        self.injector
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }

    fn wake_sleepers(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _queue = self.injector.lock().unwrap_or_else(|e| e.into_inner());
            self.idle.notify_one();
        }
    }

    /// One pass over every other worker's deque, starting from a rotating
    /// victim so thieves spread out.
    fn steal(&self, me: usize) -> Option<Task> {
        let n = self.deques.len();
        let start = self.next_victim.fetch_add(1, Ordering::Relaxed);
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == me {
                continue;
            }
            if let Some(task) = self.deques[victim].steal() {
                return Some(task);
            }
        }
        None
    }

    /// Steal pass for helping threads that own no deque.
    fn steal_any(&self) -> Option<Task> {
        self.steal(usize::MAX)
    }

    /// Runs a task: splits it by recursive halving — pushing upper halves to
    /// the worker's own deque (or back to the injector for deque-less helping
    /// threads) — then executes the leaves that remain.
    fn execute(&self, me: Option<usize>, task: Task) {
        // SAFETY: a task exists only while its job's `remaining` counter is at
        // least the task's width, so the submitting frame is still alive.
        let job = unsafe { &*(task.job as *const JobCore) };
        let (lo, mut hi) = (task.lo, task.hi);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let upper = Task {
                job: task.job,
                lo: mid,
                hi,
            };
            match me {
                Some(index) => {
                    if !self.deques[index].push(upper) {
                        break; // ring full — run the rest inline
                    }
                    self.wake_sleepers();
                }
                None => self.inject(upper),
            }
            hi = mid;
        }
        // Clone the unpark handle *before* the final decrement: the decrement
        // is the last permitted touch of `job`.
        let waiter = job.waiter.clone();
        for index in lo..hi {
            let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.ctx, index) }));
            if let Err(payload) = result {
                let mut slot = job.panic.lock().unwrap_or_else(|e| e.into_inner());
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
        if job.remaining.fetch_sub(hi - lo, Ordering::AcqRel) == hi - lo {
            waiter.unpark();
        }
    }

    /// The submitting thread's wait loop: execute available tasks (its own
    /// job's or anyone's — all help global progress) until the job completes.
    /// A nested submitter (`me = Some`) drains its own deque first — the
    /// sub-job it just pushed sits at the bottom — then steals, then checks
    /// the injector; an external submitter has no deque and works the other
    /// way round. Never blocks unboundedly, so nesting cannot deadlock.
    fn help_until_done(&self, me: Option<usize>, job: &JobCore) {
        let mut idle_rounds = 0u32;
        while job.remaining.load(Ordering::Acquire) > 0 {
            let task = match me {
                Some(index) => self.deques[index]
                    .pop()
                    .or_else(|| self.steal(index))
                    .or_else(|| self.pop_injected()),
                None => self.pop_injected().or_else(|| self.steal_any()),
            };
            match task {
                Some(task) => {
                    self.execute(me, task);
                    idle_rounds = 0;
                }
                None => {
                    idle_rounds += 1;
                    if idle_rounds < 32 {
                        std::hint::spin_loop();
                    } else {
                        // Re-checked on every iteration; the final unpark (or
                        // the timeout) bounds the wait.
                        thread::park_timeout(Duration::from_micros(200));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_size() -> usize {
        ensure_pool(4)
    }

    #[test]
    fn runs_every_index_exactly_once() {
        pool_size();
        let hits: Vec<AtomicUsize> = (0..1_000).map(|_| AtomicUsize::new(0)).collect();
        run_tasks(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn reuses_the_same_workers_across_calls() {
        let size = pool_size();
        let before = threads_spawned();
        assert_eq!(before, size);
        for _ in 0..200 {
            let total = AtomicUsize::new(0);
            run_tasks(16, &|i| {
                total.fetch_add(i, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), (0..16).sum::<usize>());
        }
        assert_eq!(threads_spawned(), before, "pool must not fork per call");
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        pool_size();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let total = AtomicUsize::new(0);
                    run_tasks(64, &|i| {
                        total.fetch_add(i + 1, Ordering::Relaxed);
                    });
                    assert_eq!(total.load(Ordering::Relaxed), (1..=64).sum::<usize>());
                });
            }
        });
    }

    #[test]
    fn parse_threads_accepts_positive_counts() {
        assert_eq!(parse_threads("RMATC_THREADS", "1"), Some(1));
        assert_eq!(parse_threads("RMATC_THREADS", "16"), Some(16));
        assert_eq!(parse_threads("RAYON_NUM_THREADS", " 8 "), Some(8));
        assert_eq!(parse_threads("RMATC_THREADS", "1024"), Some(1024));
    }

    #[test]
    fn parse_threads_rejects_invalid_values() {
        // Zero, garbage, negatives, and counts beyond the pool cap all fall
        // back to the core count (None) instead of panicking or sticking.
        assert_eq!(parse_threads("RMATC_THREADS", "0"), None);
        assert_eq!(parse_threads("RMATC_THREADS", ""), None);
        assert_eq!(parse_threads("RMATC_THREADS", "1o"), None);
        assert_eq!(parse_threads("RMATC_THREADS", "-4"), None);
        assert_eq!(parse_threads("RMATC_THREADS", "4.0"), None);
        assert_eq!(parse_threads("RAYON_NUM_THREADS", "all"), None);
        assert_eq!(parse_threads("RMATC_THREADS", "1025"), None);
    }

    #[test]
    fn nested_run_tasks_complete_and_stay_correct() {
        pool_size();
        // Workers submitting sub-jobs split them onto the pool instead of
        // running inline; at depth 3 every leaf must still run exactly once.
        let hits: Vec<AtomicUsize> = (0..4 * 4 * 4).map(|_| AtomicUsize::new(0)).collect();
        run_tasks(4, &|a| {
            run_tasks(4, &|b| {
                run_tasks(4, &|c| {
                    hits[a * 16 + b * 4 + c].fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        assert_eq!(threads_spawned(), pool_size(), "nesting must not spawn");
    }

    #[test]
    fn nested_panics_propagate_through_the_outer_job() {
        pool_size();
        let result = catch_unwind(|| {
            run_tasks(4, &|a| {
                run_tasks(4, &|b| {
                    if a == 2 && b == 3 {
                        panic!("nested boom");
                    }
                });
            });
        });
        assert!(
            result.is_err(),
            "inner panic must reach the outer submitter"
        );
        // The pool must stay usable afterwards.
        let total = AtomicUsize::new(0);
        run_tasks(8, &|i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn task_panics_propagate_to_the_submitter() {
        pool_size();
        let result = catch_unwind(|| {
            run_tasks(8, &|i| {
                if i == 5 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err(), "panic must reach the submitting thread");
        // The pool must stay usable afterwards.
        let total = AtomicUsize::new(0);
        run_tasks(8, &|i| {
            total.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 28);
    }
}
