//! Fixed-capacity Chase-Lev work-stealing deque.
//!
//! One deque per pool worker: the owner pushes and pops split-off subranges at
//! the *bottom* (LIFO, cache-warm), idle workers steal from the *top* (FIFO,
//! the largest remaining ranges). The protocol is the classic Chase-Lev
//! dynamic circular deque ("Dynamic Circular Work-Stealing Deque", SPAA'05)
//! with the C11 memory orderings of Lê et al. (PPoPP'13), restricted to a
//! fixed-capacity ring: `push` reports failure instead of growing, and the
//! caller runs the overflowing range inline. Because recursive halving bounds
//! the owner's depth at `log2(tasks)`, a 256-slot ring never overflows in
//! practice.
//!
//! Slot payloads are stored as three relaxed atomics rather than a plain
//! struct: a thief may read a slot that a concurrent operation is recycling,
//! and the read is only *used* after the `top` CAS confirms ownership — the
//! per-field atomics make the racy read defined behaviour instead of UB.

use std::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};

/// Number of slots per deque. Owner depth is bounded by `log2(tasks)` per
/// in-flight job, so 256 is far above anything reachable; overflow is handled
/// by running the task inline anyway.
const CAPACITY: usize = 256;
const MASK: usize = CAPACITY - 1;

/// A unit of schedulable work: `job` is a type-erased pointer to the
/// submitting call's `JobCore` (alive until every task of the job has run),
/// and `[lo, hi)` is the range of task indices this entry covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Task {
    pub job: usize,
    pub lo: usize,
    pub hi: usize,
}

#[derive(Default)]
struct Slot {
    job: AtomicUsize,
    lo: AtomicUsize,
    hi: AtomicUsize,
}

/// The per-worker deque. `push`/`pop` may only be called by the owning worker;
/// `steal` may be called by any thread.
pub(crate) struct Deque {
    /// Next index a thief will steal from (only ever increments).
    top: AtomicIsize,
    /// Next index the owner will push to (increments on push, decrements on pop).
    bottom: AtomicIsize,
    slots: Box<[Slot]>,
}

impl Deque {
    pub(crate) fn new() -> Self {
        Self {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots: (0..CAPACITY).map(|_| Slot::default()).collect(),
        }
    }

    fn read_slot(&self, index: isize) -> Task {
        let slot = &self.slots[index as usize & MASK];
        Task {
            job: slot.job.load(Ordering::Relaxed),
            lo: slot.lo.load(Ordering::Relaxed),
            hi: slot.hi.load(Ordering::Relaxed),
        }
    }

    fn write_slot(&self, index: isize, task: Task) {
        let slot = &self.slots[index as usize & MASK];
        slot.job.store(task.job, Ordering::Relaxed);
        slot.lo.store(task.lo, Ordering::Relaxed);
        slot.hi.store(task.hi, Ordering::Relaxed);
    }

    /// Owner-only: pushes `task` at the bottom. Returns `false` when the ring
    /// is full (the caller must then run the task itself).
    pub(crate) fn push(&self, task: Task) -> bool {
        let bottom = self.bottom.load(Ordering::Relaxed);
        let top = self.top.load(Ordering::Acquire);
        if bottom - top >= CAPACITY as isize {
            return false;
        }
        self.write_slot(bottom, task);
        // Publish the slot before advancing `bottom` so a thief that observes
        // the new bottom also observes the payload.
        self.bottom.store(bottom + 1, Ordering::Release);
        true
    }

    /// Owner-only: pops the most recently pushed task, racing thieves for the
    /// last element.
    pub(crate) fn pop(&self) -> Option<Task> {
        let bottom = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(bottom, Ordering::Relaxed);
        // The SeqCst fence orders the `bottom` write before the `top` read so
        // owner and thief cannot both miss the other's claim of the last task.
        fence(Ordering::SeqCst);
        let top = self.top.load(Ordering::Relaxed);
        if top > bottom {
            // Deque was already empty; restore bottom.
            self.bottom.store(bottom + 1, Ordering::Relaxed);
            return None;
        }
        let task = self.read_slot(bottom);
        if top == bottom {
            // Single element left: race thieves for it by advancing top.
            let won = self
                .top
                .compare_exchange(top, top + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(bottom + 1, Ordering::Relaxed);
            return won.then_some(task);
        }
        Some(task)
    }

    /// Thief: steals the oldest task. `None` means empty or lost a race —
    /// callers treat both as "try elsewhere".
    pub(crate) fn steal(&self) -> Option<Task> {
        let top = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let bottom = self.bottom.load(Ordering::Acquire);
        if top >= bottom {
            return None;
        }
        // Read before the CAS: on CAS failure the (possibly torn) value is
        // discarded; on success the slot cannot have been recycled, because an
        // owner reusing it would first have had to observe `top` past ours.
        let task = self.read_slot(top);
        self.top
            .compare_exchange(top, top + 1, Ordering::SeqCst, Ordering::Relaxed)
            .ok()
            .map(|_| task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn task(lo: usize, hi: usize) -> Task {
        Task { job: 1, lo, hi }
    }

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = Deque::new();
        assert!(d.push(task(0, 1)));
        assert!(d.push(task(1, 2)));
        assert!(d.push(task(2, 3)));
        assert_eq!(d.steal(), Some(task(0, 1)));
        assert_eq!(d.pop(), Some(task(2, 3)));
        assert_eq!(d.pop(), Some(task(1, 2)));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn full_deque_rejects_push() {
        let d = Deque::new();
        for i in 0..CAPACITY {
            assert!(d.push(task(i, i + 1)));
        }
        assert!(!d.push(task(999, 1000)));
        assert_eq!(d.steal(), Some(task(0, 1)));
        assert!(d.push(task(999, 1000)));
    }

    #[test]
    fn concurrent_steals_take_each_task_exactly_once() {
        let d = Deque::new();
        let n = 200usize;
        for i in 0..n {
            assert!(d.push(task(i, i + 1)));
        }
        let taken = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while taken.load(Ordering::Relaxed) < n as u64 {
                        if let Some(t) = d.steal() {
                            taken.fetch_add(1, Ordering::Relaxed);
                            sum.fetch_add(t.lo as u64, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..n as u64).sum::<u64>());
    }

    #[test]
    fn owner_pop_races_thieves_without_loss_or_duplication() {
        // Owner pushes and pops while thieves steal; every task must be
        // claimed exactly once across all participants.
        let d = Deque::new();
        let n = 20_000usize;
        let claimed = AtomicU64::new(0);
        let stop = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while stop.load(Ordering::Acquire) == 0 {
                        if let Some(t) = d.steal() {
                            claimed.fetch_add((t.hi - t.lo) as u64, Ordering::Relaxed);
                        }
                    }
                });
            }
            let mut produced = 0usize;
            while produced < n {
                if d.push(task(produced, produced + 1)) {
                    produced += 1;
                }
                if produced.is_multiple_of(7) {
                    if let Some(t) = d.pop() {
                        claimed.fetch_add((t.hi - t.lo) as u64, Ordering::Relaxed);
                    }
                }
            }
            while let Some(t) = d.pop() {
                claimed.fetch_add((t.hi - t.lo) as u64, Ordering::Relaxed);
            }
            // Drain stragglers the thieves may still race for, then stop them.
            while claimed.load(Ordering::Relaxed) < n as u64 {
                if let Some(t) = d.steal() {
                    claimed.fetch_add((t.hi - t.lo) as u64, Ordering::Relaxed);
                }
            }
            stop.store(1, Ordering::Release);
        });
        assert_eq!(claimed.load(Ordering::Relaxed), n as u64);
    }
}
