//! Offline stub of the `rayon` API subset this workspace uses, backed by a
//! persistent work-stealing thread pool.
//!
//! Parallel iteration over `Range<usize>` (`map`/`sum`/`collect`/`for_each`)
//! and `scope`/`Scope::spawn` are supported. Unlike the previous stub — which
//! forked scoped OS threads on every terminal call — all parallel work runs on
//! one process-wide pool of workers with per-worker Chase-Lev deques
//! ([`mod@pool`], [`mod@deque`]): a call injects one job, workers split it by
//! recursive halving and steal from each other, and the calling thread helps
//! instead of blocking idle. Repeated small parallel calls therefore pay a
//! queue push, not a `thread::spawn`, per call — the role rayon's persistent
//! pool (and the paper's `OMP_WAIT_POLICY=active`) plays for parallel-region
//! entry cost.
//!
//! The pool is built lazily on first use and sized by `RMATC_THREADS`,
//! `RAYON_NUM_THREADS`, the first caller's [`ensure_pool`] hint, or the core
//! count, in that order. Swapping this stub for the real rayon remains a
//! one-line change in the workspace `Cargo.toml` (see `vendor/README.md`).

mod deque;
mod pool;

pub use pool::{
    current_num_threads, effective_parallelism, ensure_pool, in_worker, threads_spawned,
};

use std::mem;
use std::sync::Mutex;

/// How many chunks each worker gets on average when a parallel iterator is
/// split: oversplitting lets the stealing balance uneven chunk costs.
const CHUNKS_PER_WORKER: usize = 4;

pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// Conversion into a parallel iterator (only `Range<usize>` is implemented).
pub trait IntoParallelIterator {
    type Iter;

    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

/// Parallel iterator over a `usize` range.
#[derive(Debug, Clone, Copy)]
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParRange {
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParMap {
            start: self.start,
            end: self.end,
            f,
        }
    }
}

/// The mapped parallel iterator; terminal operations run on the global pool.
#[derive(Debug, Clone, Copy)]
pub struct ParMap<F> {
    start: usize,
    end: usize,
    f: F,
}

/// Runs `per_chunk` over contiguous sub-ranges of `[start, end)` on the pool
/// and returns the per-chunk results in range order. Sequential only when the
/// pool has a single worker; nested calls from inside a pool worker split
/// onto the pool like any other (the worker pushes the sub-job to its own
/// deque and helps — see `pool::run_tasks`).
fn run_chunks<T, G>(start: usize, end: usize, per_chunk: G) -> Vec<T>
where
    T: Send,
    G: Fn(std::ops::Range<usize>) -> T + Sync,
{
    let len = end - start;
    if len == 0 {
        return Vec::new();
    }
    // Dispatch width: the pool size capped at the hardware's cores (see
    // `effective_parallelism`) — on a narrower machine the region runs
    // inline, exactly like the previous stub's `cores.min(len)` fallback.
    let threads = pool::effective_parallelism();
    if len == 1 || threads <= 1 {
        return vec![per_chunk(start..end)];
    }
    let chunk = len.div_ceil((threads * CHUNKS_PER_WORKER).min(len));
    let chunks = len.div_ceil(chunk);
    let slots: Vec<Mutex<Option<T>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    pool::run_tasks(chunks, &|c| {
        let lo = start + c * chunk;
        let hi = (lo + chunk).min(end);
        let result = per_chunk(lo..hi);
        *slots[c].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every chunk ran")
        })
        .collect()
}

impl<F, T> ParMap<F>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
    {
        let f = &self.f;
        run_chunks(self.start, self.end, |r| r.map(f).sum::<S>())
            .into_iter()
            .sum()
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        let f = &self.f;
        run_chunks(self.start, self.end, |r| r.map(f).collect::<Vec<T>>())
            .into_iter()
            .flatten()
            .collect()
    }

    pub fn for_each(self, consumer: impl Fn(T) + Sync) {
        let f = &self.f;
        run_chunks(self.start, self.end, |r| r.map(f).for_each(&consumer));
    }
}

/// A closure spawned on a [`Scope`].
type SpawnedTask<'s> = Box<dyn FnOnce(&Scope<'s>) + Send + 's>;

/// A scope for spawning pool tasks borrowing from the enclosing frame, after
/// rayon's `scope`: every closure spawned on it completes before [`scope`]
/// returns.
pub struct Scope<'s> {
    queue: Mutex<Vec<SpawnedTask<'s>>>,
}

impl<'s> Scope<'s> {
    /// Queues `f` to run on the pool before the scope ends. Spawned closures
    /// may spawn further work on the scope they receive.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'s>) + Send + 's,
    {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Box::new(f));
    }
}

/// Creates a scope, runs `f` in it, then runs everything spawned on the scope
/// (in parallel, on the pool) until no spawns remain.
///
/// Semantics differ from real rayon in one way: spawned closures start only
/// after `f` *returns* (they are queued, then drained in batches), whereas
/// real rayon may run them concurrently with `f`. Code must not block inside
/// `f` waiting for a spawn to run — under this stub that deadlocks. Nothing
/// in this workspace does; the facade exists so the call shape matches the
/// real crate.
pub fn scope<'s, R>(f: impl FnOnce(&Scope<'s>) -> R) -> R {
    let scope = Scope {
        queue: Mutex::new(Vec::new()),
    };
    let result = f(&scope);
    loop {
        let batch = mem::take(&mut *scope.queue.lock().unwrap_or_else(|e| e.into_inner()));
        if batch.is_empty() {
            break;
        }
        let slots: Vec<Mutex<Option<SpawnedTask<'s>>>> =
            batch.into_iter().map(|f| Mutex::new(Some(f))).collect();
        pool::run_tasks(slots.len(), &|i| {
            let task = slots[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("each spawned closure runs once");
            task(&scope);
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sum_matches_sequential() {
        super::ensure_pool(4);
        let par: u64 = (0..10_000usize).into_par_iter().map(|x| x as u64 * 3).sum();
        let seq: u64 = (0..10_000u64).map(|x| x * 3).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn collect_preserves_order() {
        super::ensure_pool(4);
        let v: Vec<usize> = (0..1_000usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(v, (0..1_000usize).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_is_fine() {
        let total: u64 = (5..5usize).into_par_iter().map(|x| x as u64).sum();
        assert_eq!(total, 0);
        let v: Vec<usize> = (3..3usize).into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn for_each_visits_everything() {
        super::ensure_pool(4);
        let hits = AtomicUsize::new(0);
        (0..777usize).into_par_iter().map(|x| x).for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 777);
    }

    #[test]
    fn nested_parallel_calls_complete() {
        super::ensure_pool(4);
        // Outer parallel map whose chunks themselves issue parallel sums:
        // inner calls split onto the pool from inside workers, and must
        // still be correct.
        let totals: Vec<u64> = (0..8usize)
            .into_par_iter()
            .map(|_| (0..100usize).into_par_iter().map(|x| x as u64).sum::<u64>())
            .collect();
        assert!(totals.iter().all(|&t| t == 4_950));
    }

    #[test]
    fn scope_runs_all_spawns_including_nested_ones() {
        super::ensure_pool(4);
        let hits = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..10 {
                s.spawn(|inner| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    inner.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 20);
    }
}
