//! Offline stub of the `rayon` API subset this workspace uses: parallel
//! iteration over `Range<usize>` with `map`/`sum`/`collect`/`for_each`.
//!
//! Parallelism is real — chunks of the range are executed on scoped OS threads
//! — but there is no persistent work-stealing pool: each `sum`/`collect` call
//! forks and joins. Callers (the intersection kernels, the vertex-parallel
//! LCC loop) already gate parallel entry behind a size cut-off, which keeps
//! the fork cost amortized exactly where rayon's pool entry cost would be.

use std::num::NonZeroUsize;

/// Number of worker threads: `RAYON_NUM_THREADS` if set, else the number of
/// available cores.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// Conversion into a parallel iterator (only `Range<usize>` is implemented).
pub trait IntoParallelIterator {
    type Iter;

    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

/// Parallel iterator over a `usize` range.
#[derive(Debug, Clone, Copy)]
pub struct ParRange {
    start: usize,
    end: usize,
}

impl ParRange {
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParMap {
            start: self.start,
            end: self.end,
            f,
        }
    }
}

/// The mapped parallel iterator; terminal operations fork scoped threads.
#[derive(Debug, Clone, Copy)]
pub struct ParMap<F> {
    start: usize,
    end: usize,
    f: F,
}

impl<F> ParMap<F> {
    /// Runs `per_chunk` on each worker's sub-range and returns the per-chunk
    /// results in range order.
    fn run_chunks<T, G>(start: usize, end: usize, per_chunk: G) -> Vec<T>
    where
        T: Send,
        G: Fn(std::ops::Range<usize>) -> T + Sync,
    {
        let len = end - start;
        if len == 0 {
            return Vec::new();
        }
        let workers = current_num_threads().min(len);
        if workers <= 1 {
            return vec![per_chunk(start..end)];
        }
        let chunk = len.div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = start + (w * chunk).min(len);
                    let hi = start + ((w + 1) * chunk).min(len);
                    let per_chunk = &per_chunk;
                    scope.spawn(move || per_chunk(lo..hi))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon stub worker panicked"))
                .collect()
        })
    }
}

impl<F, T> ParMap<F>
where
    F: Fn(usize) -> T + Sync,
    T: Send,
{
    pub fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<T> + std::iter::Sum<S>,
    {
        let f = &self.f;
        Self::run_chunks(self.start, self.end, |r| r.map(f).sum::<S>())
            .into_iter()
            .sum()
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        let f = &self.f;
        Self::run_chunks(self.start, self.end, |r| r.map(f).collect::<Vec<T>>())
            .into_iter()
            .flatten()
            .collect()
    }

    pub fn for_each(self, consumer: impl Fn(T) + Sync) {
        let f = &self.f;
        Self::run_chunks(self.start, self.end, |r| r.map(f).for_each(&consumer));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sum_matches_sequential() {
        let par: u64 = (0..10_000usize).into_par_iter().map(|x| x as u64 * 3).sum();
        let seq: u64 = (0..10_000u64).map(|x| x * 3).sum();
        assert_eq!(par, seq);
    }

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..1_000usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(v, (0..1_000usize).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_is_fine() {
        let total: u64 = (5..5usize).into_par_iter().map(|x| x as u64).sum();
        assert_eq!(total, 0);
        let v: Vec<usize> = (3..3usize).into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }
}
