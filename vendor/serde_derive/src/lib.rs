//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace only ever uses serde through `#[derive(serde::Serialize,
//! serde::Deserialize)]` attributes — no trait bounds, no (de)serializers — so
//! in this offline build the derives can expand to nothing at all.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
