//! Offline stub of the `rand` 0.8 API subset this workspace uses.
//!
//! Provides [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64` via SplitMix64, matching rand's documented seeding
//! contract), [`rngs::StdRng`] (xoshiro256++ — a different stream than the
//! real crate's ChaCha12, but the same determinism guarantees), and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates).

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from the full `u64` stream
/// (rand's `Standard` distribution, flattened into one trait).
pub trait Standard: Sized {
    fn from_u64(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_u64(bits: u64) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_u64(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn from_u64(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait UniformInt: Copy + PartialOrd {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            // Order-preserving bijection into u64 (flip the sign bit), so the
            // unsigned span arithmetic in `SampleRange` works unchanged.
            fn to_u64(self) -> u64 {
                (self as i64 as u64) ^ (1 << 63)
            }
            fn from_u64(v: u64) -> Self {
                (v ^ (1 << 63)) as i64 as $t
            }
        }
    )*};
}

impl_uniform_int_signed!(i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`] (rand's `SampleRange`).
pub trait SampleRange<T> {
    fn sample(self, rng_bits: u64) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng_bits: u64) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "gen_range called with an empty range");
        // 128-bit multiply-shift keeps the modulo bias negligible for the
        // span sizes used here (Lemire's unbiased-enough fast reduction).
        let span = hi - lo;
        let mapped = ((rng_bits as u128 * span as u128) >> 64) as u64;
        T::from_u64(lo + mapped)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng_bits: u64) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        let span = (hi - lo).wrapping_add(1);
        let mapped = if span == 0 {
            rng_bits
        } else {
            ((rng_bits as u128 * span as u128) >> 64) as u64
        };
        T::from_u64(lo + mapped)
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng_bits: u64) -> f64 {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        let unit = (rng_bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// The user-facing random-number trait.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and passes BigCrush; state is expanded from
    /// the `u64` seed with SplitMix64 exactly as rand's `seed_from_u64` does.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot produce
            // four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// rand's slice extension trait; only `shuffle` is used in this workspace.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates, high-to-low, identical access pattern to rand 0.8.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(0..1);
            assert_eq!(y, 0);
        }
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should not be the identity");
    }
}
