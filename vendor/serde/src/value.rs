//! The self-describing value tree the stub's (de)serialization goes through.

use std::collections::BTreeMap;

/// A JSON-shaped value: the six shapes of the format, with all numbers as
/// `f64` (exact for integers up to 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A string-keyed map (sorted, so output is deterministic).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup; `None` unless `self` is an object holding `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if `self` is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, if `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if `self` is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}
