//! JSON rendering and parsing of the [`Value`] tree.
//!
//! The writer emits numbers with Rust's shortest round-trip formatting and the
//! parser rounds correctly, so finite `f64`s survive a text round trip
//! bit-exactly. Non-finite numbers have no JSON representation and are
//! rejected at write time rather than silently turned into `null`.

use crate::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serializes `value` as compact single-line JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None)?;
    Ok(out)
}

/// Serializes `value` as indented multi-line JSON (2-space indent), ending
/// with a newline — the format the persisted profile files use so they stay
/// diffable and human-inspectable.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0))?;
    out.push('\n');
    Ok(out)
}

/// Parses JSON text into a `T`. Trailing non-whitespace input is an error.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    T::from_value(&parse_value_str(input)?)
}

/// Maximum container nesting the parser accepts. Deeper input is rejected as
/// malformed instead of recursing — a corrupt or hostile file must degrade to
/// a parse error (which callers warn about and ignore), never to a stack
/// overflow.
const MAX_DEPTH: usize = 128;

/// Parses JSON text into the raw [`Value`] tree.
pub fn parse_value_str(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0).ok_or_else(|| Error::new("malformed JSON"))?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Ok(value)
    } else {
        Err(Error::new(format!("trailing input at byte {pos}")))
    }
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// `indent = None` writes compact, `Some(level)` pretty at that nesting depth.
fn write_value(out: &mut String, value: &Value, indent: Option<usize>) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(x) => {
            if !x.is_finite() {
                return Err(Error::new(format!("{x} has no JSON representation")));
            }
            // `{:?}` is Rust's shortest representation that parses back to the
            // same bits — the property the round-trip tests rely on.
            let _ = write!(out, "{x:?}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, '[', ']', indent, items.len(), |out, i, inner| {
                write_value(out, &items[i], inner)
            })?;
        }
        Value::Object(map) => {
            let entries: Vec<(&String, &Value)> = map.iter().collect();
            write_seq(out, '{', '}', indent, entries.len(), |out, i, inner| {
                let (key, item) = entries[i];
                write_string(out, key);
                out.push_str(": ");
                write_value(out, item, inner)
            })?;
        }
    }
    Ok(())
}

/// Writes a bracketed, comma-separated sequence of `len` items, each rendered
/// by `emit(out, index, item_indent)` — shared by arrays and objects.
fn write_seq(
    out: &mut String,
    open: char,
    close: char,
    indent: Option<usize>,
    len: usize,
    mut emit: impl FnMut(&mut String, usize, Option<usize>) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        match indent {
            Some(level) => {
                out.push('\n');
                push_indent(out, level + 1);
                emit(out, i, Some(level + 1))?;
            }
            None => {
                if i > 0 {
                    out.push(' ');
                }
                emit(out, i, None)?;
            }
        }
    }
    if let Some(level) = indent {
        if len > 0 {
            out.push('\n');
            push_indent(out, level);
        }
    }
    out.push(close);
    Ok(())
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over the writer's output format (plus `\uXXXX`
// escapes for generality).
// ---------------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Option<()> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Value> {
    if depth > MAX_DEPTH {
        return None;
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_object(bytes, pos, depth),
        b'[' => parse_array(bytes, pos, depth),
        b'"' => parse_string(bytes, pos).map(Value::String),
        b't' => parse_literal(bytes, pos, "true", Value::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", Value::Bool(false)),
        b'n' => parse_literal(bytes, pos, "null", Value::Null),
        _ => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, text: &str, value: Value) -> Option<Value> {
    if bytes[*pos..].starts_with(text.as_bytes()) {
        *pos += text.len();
        Some(value)
    } else {
        None
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(Value::Number)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                let escaped = bytes.get(*pos)?;
                match escaped {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            &byte => {
                // Multi-byte UTF-8 sequences pass through byte by byte.
                let len = utf8_len(byte);
                let chunk = bytes.get(*pos..*pos + len)?;
                out.push_str(std::str::from_utf8(chunk).ok()?);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Value> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Value::Array(items));
            }
            _ => return None,
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Option<Value> {
    expect(bytes, pos, b'{')?;
    let mut map = std::collections::BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        map.insert(key, parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Value::Object(map));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_compact_and_pretty() {
        let value = Value::object([
            ("pi", Value::Number(std::f64::consts::PI)),
            ("name", Value::String("probe \"x\"\n".to_string())),
            (
                "grid",
                Value::Array(vec![Value::Number(1.0), Value::Number(-0.5)]),
            ),
            ("on", Value::Bool(true)),
            ("none", Value::Null),
        ]);
        for text in [
            to_string(&value).unwrap(),
            to_string_pretty(&value).unwrap(),
        ] {
            assert_eq!(parse_value_str(&text).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn floats_survive_exactly() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-9, 0.0] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn non_finite_numbers_are_rejected_at_write_time() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse_value_str("{} x").is_err());
        assert!(parse_value_str("1 2").is_err());
    }

    #[test]
    fn pathological_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse_value_str(&deep).is_err());
        // Reasonable nesting still parses.
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse_value_str(&ok).is_ok());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = parse_value_str("\"a\\u0041\\n\"").unwrap();
        assert_eq!(v.as_str(), Some("aA\n"));
    }

    #[test]
    fn pretty_output_is_indented_and_stable() {
        let value = Value::object([("b", Value::Number(2.0)), ("a", Value::Number(1.0))]);
        let text = to_string_pretty(&value).unwrap();
        // BTreeMap keys sort, so "a" precedes "b" regardless of insert order.
        assert_eq!(text, "{\n  \"a\": 1.0,\n  \"b\": 2.0\n}\n");
    }
}
