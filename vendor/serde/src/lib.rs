//! Offline stub of the `serde` facade.
//!
//! Re-exports the no-op derive macros so `#[derive(serde::Serialize,
//! serde::Deserialize)]` compiles unchanged. The real traits are declared too,
//! in case future code wants `T: serde::Serialize` bounds, but the derives
//! intentionally generate no impls while the workspace does not serialize.

pub use serde_derive::{Deserialize, Serialize};
