//! Offline stub of the `serde` facade.
//!
//! Two layers, matching how the workspace actually uses serde:
//!
//! * The **no-op derive macros** are re-exported so `#[derive(serde::Serialize,
//!   serde::Deserialize)]` compiles unchanged on the many config/result types
//!   that never cross a process boundary in this offline build.
//! * A **real, minimal data model** for the types that *do* serialize (the
//!   calibration profiles of `rmatc-core`): the [`Serialize`] / [`Deserialize`]
//!   traits below convert to and from a self-describing [`Value`] tree, and the
//!   [`json`] module renders/parses that tree as JSON text. Types opt in by
//!   implementing the traits by hand — the derives intentionally stay no-ops so
//!   the stub never has to parse arbitrary Rust item syntax.
//!
//! The data model is deliberately small: JSON's six shapes, with all numbers as
//! `f64` (exact for integers up to 2^53 — every serialized field in this
//! workspace is far below that). `f64` round-trips exactly: the writer emits
//! Rust's shortest round-trip formatting and the parser rounds correctly, so
//! `from_str(&to_string(&x)?) == x` for every finite value. Non-finite floats
//! have no JSON representation and make [`json::to_string`] return an error.

mod value;

pub mod json;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

/// Error produced by [`Deserialize::from_value`] and the [`json`] parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self(message.into())
    }

    /// An error for a `field` that is missing or has the wrong shape.
    pub fn field(field: &str, expected: &str) -> Self {
        Self(format!("field `{field}`: expected {expected}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model (the stub's `Serialize`).
///
/// Lives in the type namespace; `#[derive(serde::Serialize)]` resolves to the
/// no-op macro in the macro namespace, so deriving and hand-implementing can
/// coexist on the same name, exactly as with the real crate.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model (the stub's `Deserialize`).
pub trait Deserialize: Sized {
    /// Reads `Self` back out of a value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! impl_serde_num {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(x) => Ok(*x as $t),
                    _ => Err(Error::new(concat!("expected a number for ", stringify!($t)))),
                }
            }
        }
    )+};
}

impl_serde_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected a boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::new("expected a string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::new("expected an array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let Value::Array(items) = value else {
            return Err(Error::new("expected an array"));
        };
        if items.len() != N {
            return Err(Error::new(format!(
                "expected an array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_values() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn containers_round_trip_through_values() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let a = [0.5f64, 1.5, 2.5];
        assert_eq!(<[f64; 3]>::from_value(&a.to_value()).unwrap(), a);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&7u32.to_value()).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(u64::from_value(&Value::Null).is_err());
        assert!(<[f64; 3]>::from_value(&vec![1.0f64].to_value()).is_err());
        assert!(String::from_value(&Value::Bool(false)).is_err());
    }
}
