//! Offline stub of `parking_lot`: a `Mutex` over `std::sync::Mutex` exposing
//! the guard-returning `lock()` signature (poisoning is translated into a
//! panic, matching parking_lot's behaviour of not having poisoning at all).

use std::sync::MutexGuard;

#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}
