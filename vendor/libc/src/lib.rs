//! Offline stub of `libc`: declarations for the few symbols this workspace
//! calls. The symbols themselves come from the platform C library, which Rust
//! links on all supported Unix targets anyway — only the declarations are
//! vendored.

#![allow(non_camel_case_types)]

#[cfg(unix)]
pub type c_int = i32;
#[cfg(unix)]
pub type c_long = i64;
#[cfg(unix)]
pub type time_t = i64;
#[cfg(unix)]
pub type clockid_t = c_int;

#[cfg(unix)]
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

/// Linux value; the only platform the simulator's CPU-time clock targets.
#[cfg(all(unix, target_os = "linux"))]
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;
#[cfg(all(unix, not(target_os = "linux")))]
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 16;

#[cfg(unix)]
extern "C" {
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}
