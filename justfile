# Local developer commands mirroring the CI pipeline (.github/workflows/ci.yml).
# `cargo test` at the workspace root only runs the umbrella crate's suites;
# CI also runs `--workspace`, clippy with denied warnings, and rustfmt —
# `just verify` runs the exact same set so green-local means green-CI.

# Everything CI's tier1 + lint + docs jobs run.
verify: tier1 workspace-tests lint fmt-check docs

# The tier-1 contract from ROADMAP.md.
tier1:
    cargo build --release
    cargo test -q

# The member-crate and vendored-stub suites CI runs on top of tier-1.
workspace-tests:
    cargo test --workspace -q

lint:
    cargo clippy --workspace --all-targets -- -D warnings

fmt-check:
    cargo fmt --check

fmt:
    cargo fmt

# The documentation gate: rustdoc with denied warnings (broken intra-doc
# links fail) over the first-party crates, plus every doctest in the
# workspace. Vendored stubs are excluded — they document external APIs.
docs:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -p rmatc -p rmatc-core -p rmatc-clampi -p rmatc-rma -p rmatc-graph -p rmatc-tric -p rmatc-bench
    cargo test --workspace --doc -q

# Fit this machine's kernel-crossover cost profile and persist it to the
# default profile path (RMATC_PROFILE or ~/.cache/rmatc/). See docs/TUNING.md.
calibrate:
    cargo run --release -p rmatc-bench --bin rmatc-calibrate

# The chaos suite on its pinned seed matrix plus one extra seed (random by
# default: `just chaos`, or pinned: `just chaos 12345` to replay a failure
# from a CI artifact name). See docs/ROBUSTNESS.md.
chaos seed="random":
    #!/usr/bin/env bash
    set -euo pipefail
    seed="{{seed}}"
    if [ "$seed" = "random" ]; then
        seed=$(od -An -N8 -tu8 /dev/urandom | tr -d ' ')
    fi
    echo "chaos seed: $seed"
    RMATC_CHAOS_SEED="$seed" cargo test -q --test chaos

# The bench-smoke job: JSON snapshots plus an appended bench-history record,
# then the regression gate (median regression past the per-benchmark
# threshold fails; default 15%). Each bench runs 3 times and records the
# median-of-medians with its spread, so one noisy run cannot move the gate.
#
# `hist` is the history directory: locally the repository-seeded
# `bench-history/`, in CI the artifact-chained `ci-bench-history/` — CI runs
# exactly `just bench-smoke ci-bench-history`, so this recipe is the single
# definition of which benches are smoked and gated.
bench-smoke hist="bench-history":
    cargo bench -p rmatc-bench --bench intersect -- --repeat 3 --json BENCH_intersect.json --history {{hist}}/intersect.ndjson
    cargo bench -p rmatc-bench --bench local_lcc -- --repeat 3 --json BENCH_local_lcc.json --history {{hist}}/local_lcc.ndjson
    RMATC_THREADS=4 cargo bench -p rmatc-bench --bench remote_read -- --repeat 3 --json BENCH_remote_read.json --history {{hist}}/remote_read.ndjson
    cargo bench -p rmatc-bench --bench cache_policy -- --repeat 3 --json BENCH_cache_policy.json --history {{hist}}/cache_policy.ndjson
    cargo bench -p rmatc-bench --bench service -- --repeat 3 --json BENCH_service.json --history {{hist}}/service.ndjson
    cargo run -p rmatc-bench --bin bench-diff -- {{hist}}/intersect.ndjson {{hist}}/local_lcc.ndjson {{hist}}/remote_read.ndjson {{hist}}/cache_policy.ndjson {{hist}}/service.ndjson
