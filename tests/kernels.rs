//! Differential tests of the intersection kernel suite and the shared-memory
//! parallelization strategies: every kernel must return identical counts on
//! adversarial list shapes, and every outer-loop strategy must reproduce the
//! sequential result exactly on generated graphs.

use proptest::prelude::*;
use rmatc::prelude::*;
use rmatc_core::intersect::{
    binary_search_count, galloping_count, simd_count, ssi_count, ParallelIntersector,
};
use rmatc_core::{Intersector, LocalParallelism};
use rmatc_graph::reference;

/// Every sequential kernel, by label, for differential comparison.
fn kernel_counts(a: &[u32], b: &[u32]) -> Vec<(&'static str, u64)> {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    vec![
        ("ssi", ssi_count(a, b)),
        ("simd", simd_count(a, b)),
        ("binary", binary_search_count(short, long)),
        ("galloping", galloping_count(short, long)),
    ]
}

fn assert_all_kernels_agree(a: &[u32], b: &[u32]) {
    let expected = reference::sorted_intersection_count(a, b);
    for (name, got) in kernel_counts(a, b) {
        assert_eq!(got, expected, "{name} on |a|={} |b|={}", a.len(), b.len());
    }
    for method in IntersectMethod::all() {
        assert_eq!(Intersector::new(method).count(a, b), expected, "{method:?}");
        assert_eq!(
            Intersector::new(method).count(b, a),
            expected,
            "{method:?} swapped"
        );
        for chunks in [2, 5] {
            let par = ParallelIntersector::new(method, chunks, 8);
            assert_eq!(
                par.count(a, b),
                expected,
                "{method:?} parallel chunks={chunks}"
            );
        }
    }
}

#[test]
fn kernels_agree_on_handpicked_adversarial_shapes() {
    let empty: Vec<u32> = vec![];
    let one = vec![7u32];
    let all_equal_a: Vec<u32> = (0..500).collect();
    let evens: Vec<u32> = (0..2_000).map(|x| x * 2).collect();
    let odds: Vec<u32> = (0..2_000).map(|x| x * 2 + 1).collect();
    // Hub-leaf skew >= 1000x.
    let leaf = vec![5u32, 40_000, 99_999, 163_841];
    let hub: Vec<u32> = (0..163_842).collect();
    let cases: Vec<(&[u32], &[u32])> = vec![
        (&empty, &empty),
        (&empty, &all_equal_a),
        (&one, &empty),
        (&one, &one),
        (&one, &all_equal_a),
        (&all_equal_a, &all_equal_a),
        (&evens, &odds),
        (&evens, &evens),
        (&leaf, &hub),
    ];
    for (a, b) in cases {
        assert_all_kernels_agree(a, b);
    }
}

fn sorted_dedup(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernels_agree_on_random_lists(a in prop::collection::vec(0u32..2_000, 0..400),
                                     b in prop::collection::vec(0u32..2_000, 0..400)) {
        let a = sorted_dedup(a);
        let b = sorted_dedup(b);
        let expected = reference::sorted_intersection_count(&a, &b);
        for (name, got) in kernel_counts(&a, &b) {
            prop_assert_eq!(got, expected, "{} diverged", name);
        }
    }

    #[test]
    fn kernels_agree_on_hub_leaf_skew(keys in prop::collection::vec(0u32..4_000_000, 1..40),
                                      hub_len in 40_000usize..80_000,
                                      stride in 1u32..60) {
        // >= 1000x skew by construction: <= 40 keys vs >= 40k hub entries.
        let keys = sorted_dedup(keys);
        let hub: Vec<u32> = (0..hub_len as u32).map(|x| x * stride).collect();
        let expected = reference::sorted_intersection_count(&keys, &hub);
        for (name, got) in kernel_counts(&keys, &hub) {
            prop_assert_eq!(got, expected, "{} diverged at skew {}", name,
                            hub.len() / keys.len().max(1));
        }
    }

    #[test]
    fn parallel_strategies_match_sequential_on_rmat(seed in 0u64..12, threads in 2usize..6) {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(seed).into_csr();
        let seq = LocalLcc::new(LocalConfig::sequential()).run(&g);
        prop_assert_eq!(seq.triangle_count, reference::count_triangles(&g));
        for mode in [
            LocalParallelism::IntersectionParallel,
            LocalParallelism::VertexParallel,
            LocalParallelism::EdgeParallel,
        ] {
            let mut cfg = LocalConfig::parallel(threads).with_parallelism(mode);
            cfg.parallel_cutoff = 16;
            let par = LocalLcc::new(cfg).run(&g);
            prop_assert_eq!(&par.per_vertex_triangles, &seq.per_vertex_triangles,
                            "{:?} threads={}", mode, threads);
            prop_assert_eq!(par.edges_processed, seq.edges_processed);
        }
    }

    #[test]
    fn parallel_strategies_match_sequential_on_watts_strogatz(seed in 0u64..12,
                                                              beta_pct in 0u32..100) {
        let g = WattsStrogatz::new(300, 6, beta_pct as f64 / 100.0)
            .generate_cleaned(seed)
            .into_csr();
        let seq = LocalLcc::new(LocalConfig::sequential()).run(&g);
        for mode in [LocalParallelism::VertexParallel, LocalParallelism::EdgeParallel] {
            let par = LocalLcc::new(LocalConfig::parallel(4).with_parallelism(mode)).run(&g);
            prop_assert_eq!(&par.per_vertex_triangles, &seq.per_vertex_triangles, "{:?}", mode);
        }
    }

    #[test]
    fn methods_agree_through_the_full_local_run(seed in 0u64..8) {
        let g = RmatGenerator::paper(7, 8).generate_cleaned(seed).into_csr();
        let expected = reference::count_triangles(&g);
        for method in IntersectMethod::all() {
            let r = LocalLcc::new(LocalConfig::sequential().with_method(method)).run(&g);
            prop_assert_eq!(r.triangle_count, expected, "{:?}", method);
        }
    }

    #[test]
    fn schedules_agree_on_rmat(seed in 0u64..12, threads in 2usize..6) {
        // Degree-weighted and static chunk boundaries must be invisible in
        // the results on hub-heavy R-MAT graphs, for both outer loops.
        let g = RmatGenerator::paper(8, 8).generate_cleaned(seed).into_csr();
        let seq = LocalLcc::new(LocalConfig::sequential()).run(&g);
        for mode in [LocalParallelism::VertexParallel, LocalParallelism::EdgeParallel] {
            let static_run = LocalLcc::new(
                LocalConfig::parallel(threads)
                    .with_parallelism(mode)
                    .with_schedule(RangeSchedule::Static),
            )
            .run(&g);
            let weighted_run = LocalLcc::new(
                LocalConfig::parallel(threads)
                    .with_parallelism(mode)
                    .with_schedule(RangeSchedule::DegreeWeighted),
            )
            .run(&g);
            prop_assert_eq!(&static_run.per_vertex_triangles, &seq.per_vertex_triangles,
                            "static {:?} threads={}", mode, threads);
            prop_assert_eq!(&weighted_run.per_vertex_triangles, &seq.per_vertex_triangles,
                            "weighted {:?} threads={}", mode, threads);
            prop_assert_eq!(weighted_run.edges_processed, static_run.edges_processed);
        }
    }

    #[test]
    fn schedules_agree_on_watts_strogatz(seed in 0u64..12, beta_pct in 0u32..100) {
        // Watts-Strogatz is the near-regular counterpoint: degree weighting
        // must also change nothing when there is hardly any skew to balance.
        let g = WattsStrogatz::new(300, 6, beta_pct as f64 / 100.0)
            .generate_cleaned(seed)
            .into_csr();
        let seq = LocalLcc::new(LocalConfig::sequential()).run(&g);
        for mode in [LocalParallelism::VertexParallel, LocalParallelism::EdgeParallel] {
            for schedule in [RangeSchedule::Static, RangeSchedule::DegreeWeighted] {
                let par = LocalLcc::new(
                    LocalConfig::parallel(4)
                        .with_parallelism(mode)
                        .with_schedule(schedule),
                )
                .run(&g);
                prop_assert_eq!(&par.per_vertex_triangles, &seq.per_vertex_triangles,
                                "{:?} {:?}", mode, schedule);
            }
        }
    }
}
