//! Integration tests of the scaling behaviour the evaluation section reports:
//! remote-edge growth, communication dominance, strong-scaling speedup of the
//! asynchronous algorithm, and the relative cost of the TriC baseline on
//! scale-free graphs.

use rmatc::prelude::*;
use rmatc_core::reuse;

fn skewed_graph() -> CsrGraph {
    RmatGenerator::paper(11, 16).generate_cleaned(33).into_csr()
}

#[test]
fn remote_edge_fraction_grows_with_rank_count() {
    let g = skewed_graph();
    let mut previous = 0.0;
    for ranks in [2usize, 4, 8, 16] {
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, ranks).unwrap();
        let fraction = pg.remote_edge_fraction();
        assert!(
            fraction >= previous,
            "remote fraction must not shrink with more ranks"
        );
        previous = fraction;
    }
    assert!(
        previous > 0.5,
        "at 16 ranks most edges should cross partitions"
    );
}

#[test]
fn communication_dominates_the_modeled_running_time() {
    // Section IV-D: already at 4 nodes, communication is ~79% of the running time
    // for the R-MAT graph, growing to ~98% at 64 nodes.
    let g = skewed_graph();
    let result = DistLcc::new(DistConfig::non_cached(8)).run(&g);
    let avg_comm_fraction: f64 = result
        .ranks
        .iter()
        .map(|r| r.timing.comm_fraction())
        .sum::<f64>()
        / result.ranks.len() as f64;
    assert!(
        avg_comm_fraction > 0.5,
        "communication should dominate on a skewed distributed graph ({avg_comm_fraction})"
    );
}

#[test]
fn asynchronous_lcc_strong_scales_on_the_modeled_cluster() {
    // Since the SIMD/galloping kernel upgrade, per-rank compute at this test
    // scale is small enough that the (non-cached) modeled communication
    // dominates from 2 ranks on, so the curve flattens earlier than the
    // paper's Figure 10 — scaling remains monotone and the wider 4 -> 32 span
    // still shows the speedup the property is about.
    let g = skewed_graph();
    let time = |ranks| {
        DistLcc::new(DistConfig::non_cached(ranks))
            .run(&g)
            .max_rank_time_ns()
    };
    let at_4 = time(4);
    let at_16 = time(16);
    let at_32 = time(32);
    assert!(
        at_16 < at_4 && at_32 < at_16,
        "modeled time must shrink monotonically with ranks ({at_4:.3e} -> {at_16:.3e} -> {at_32:.3e})"
    );
    // Per-quadrupling signal so a regression inside 4 -> 16 cannot hide
    // behind the wider span (measured ~1.4x with the SIMD/galloping kernels).
    let speedup_16 = at_4 / at_16;
    assert!(
        speedup_16 > 1.15,
        "expected measurable scaling from 4 to 16 ranks, measured speedup {speedup_16:.2}"
    );
    let speedup = at_4 / at_32;
    assert!(
        speedup > 1.5,
        "expected strong scaling from 4 to 32 ranks, measured speedup {speedup:.2}"
    );
}

#[test]
fn per_rank_gets_shrink_with_more_ranks() {
    let g = skewed_graph();
    let gets_per_rank = |ranks: usize| {
        let r = DistLcc::new(DistConfig::non_cached(ranks)).run(&g);
        r.total_gets() as f64 / ranks as f64
    };
    assert!(gets_per_rank(16) < gets_per_rank(4));
}

#[test]
fn tric_is_slower_than_async_on_hub_heavy_scale_free_graphs() {
    // Figure 9's headline comparison. TriC enumerates neighbour *pairs*, so its work
    // and traffic grow quadratically with the hub degree, while the asynchronous
    // algorithm reads each remote adjacency list once (linear). In the paper's
    // full-scale graphs the hubs have degrees in the tens of thousands, which is what
    // produces the up-to-100x gap; at test scale the same effect is made visible by
    // a social graph with one celebrity vertex adjacent to every other vertex (the
    // structure real scale-free graphs have relative to a partition's size).
    let n = 4_000usize;
    let mut el = BarabasiAlbert::new(n, 4).generate_cleaned(13);
    let celebrity_edges: Vec<(u32, u32)> = (1..el.vertex_count() as u32)
        .flat_map(|v| [(0u32, v), (v, 0u32)])
        .collect();
    el.extend(celebrity_edges);
    el.deduplicate();
    let g = el.into_csr();
    assert!(g.max_degree() as usize >= g.vertex_count() - 1);

    let asynchronous = DistLcc::new(DistConfig::non_cached(8)).run(&g);
    let tric = Tric::new(TricConfig::plain(8)).run(&g);
    assert_eq!(asynchronous.triangle_count, tric.triangle_count);
    assert!(
        tric.max_rank_time_ns() > asynchronous.max_rank_time_ns(),
        "TriC ({:.1} ms) should be slower than the asynchronous algorithm ({:.1} ms)",
        tric.max_rank_time_ns() / 1e6,
        asynchronous.max_rank_time_ns() / 1e6
    );
    assert!(tric.total_bytes() > asynchronous.total_bytes());
    assert!(tric.total_queries() > asynchronous.total_gets());
}

#[test]
fn buffered_tric_bounds_memory_at_the_cost_of_more_rounds() {
    let g = skewed_graph();
    let plain = Tric::new(TricConfig::plain(4)).run(&g);
    let buffered = Tric::new(TricConfig::buffered_with(4, 256)).run(&g);
    assert_eq!(plain.triangle_count, buffered.triangle_count);
    assert!(buffered.rounds() > plain.rounds());
}

#[test]
fn data_reuse_analysis_matches_actual_remote_traffic() {
    // The static reuse analysis (Figures 1/4/5) predicts exactly the remote reads the
    // non-cached distributed run performs: every remote edge issues one adjacency
    // read, i.e. up to two gets.
    let g = skewed_graph();
    let ranks = 4;
    let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, ranks).unwrap();
    let predicted_reads: u64 = reuse::remote_read_counts(&pg).iter().sum();
    let result = DistLcc::new(DistConfig::non_cached(ranks)).run(&g);
    let remote_edges: u64 = result.ranks.iter().map(|r| r.remote_edges).sum();
    assert_eq!(predicted_reads, remote_edges);
    assert!(result.total_gets() <= 2 * remote_edges);
    assert!(result.total_gets() >= remote_edges);
}

#[test]
fn load_imbalance_is_reported_and_bounded() {
    let g = skewed_graph();
    let result = DistLcc::new(DistConfig::non_cached(8)).run(&g);
    let imbalance = result.time_imbalance();
    assert!(imbalance >= 1.0);
    assert!(
        imbalance < 8.0,
        "imbalance {imbalance} looks unreasonable for 1D blocks"
    );
}

#[test]
fn network_model_scales_the_modeled_times() {
    let g = skewed_graph();
    let mut slow = DistConfig::non_cached(4);
    slow.network = NetworkModel::commodity();
    let fast = DistLcc::new(DistConfig::non_cached(4)).run(&g);
    let slow = DistLcc::new(slow).run(&g);
    assert!(slow.max_comm_time_ns() > fast.max_comm_time_ns() * 2.0);
}
