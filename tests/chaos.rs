//! Chaos test suite of the self-healing remote-read path: under seeded,
//! deterministic fault injection, every recoverable run must produce output
//! bit-identical to the fault-free run (the faults cost virtual time, never
//! correctness), fault counters must be non-zero exactly when faults were
//! injected, and unrecoverable plans must surface a clean [`RmaError`] —
//! never a panic and never a wrong count.
//!
//! Seeds are pinned for CI; set `RMATC_CHAOS_SEED=<u64>` to add one more to
//! the matrix (the scheduled randomized CI job does this). When a pinned-seed
//! check fails, the failing [`FaultPlan`] is written as JSON to
//! `target/chaos/` so the schedule can be replayed exactly.

use proptest::prelude::*;
use rmatc::graph::gen::{GraphGenerator, RmatGenerator};
use rmatc::prelude::*;

// ---------------------------------------------------------------------------
// Harness: pinned seed matrix + failing-plan artifacts.
// ---------------------------------------------------------------------------

/// The pinned seed matrix, plus an optional `RMATC_CHAOS_SEED` override from
/// the environment (used by the scheduled randomized CI job).
fn chaos_seeds() -> Vec<u64> {
    let mut seeds = vec![1, 7, 42, 0xDEAD_BEEF, u64::MAX - 3];
    if let Ok(raw) = std::env::var("RMATC_CHAOS_SEED") {
        match raw.trim().parse::<u64>() {
            Ok(seed) => seeds.push(seed),
            Err(_) => eprintln!("RMATC_CHAOS_SEED={raw:?} is not a u64; ignoring"),
        }
    }
    seeds
}

/// Runs `f` under `plan`; if it panics (a failed assertion), the plan is
/// dumped as JSON to `target/chaos/` before the panic is re-raised, so the
/// exact fault schedule can be replayed with `RMATC_CHAOS_SEED`.
fn with_plan_artifact<R>(plan: &FaultPlan, label: &str, f: impl FnOnce() -> R) -> R {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let dir = std::path::Path::new("target").join("chaos");
            let path = dir.join(format!("{label}-seed-{}.json", plan.seed));
            let dumped = std::fs::create_dir_all(&dir).and_then(|()| {
                let json =
                    serde::json::to_string_pretty(plan).expect("a FaultPlan always serializes");
                std::fs::write(&path, json)
            });
            match dumped {
                Ok(()) => eprintln!("chaos: failing fault plan written to {}", path.display()),
                Err(e) => eprintln!("chaos: could not write failing fault plan: {e}"),
            }
            std::panic::resume_unwind(payload)
        }
    }
}

fn graph() -> CsrGraph {
    RmatGenerator::paper(7, 8).generate_cleaned(77).into_csr()
}

/// A retry budget generous enough to outlast any recoverable plan in the
/// matrix (per-attempt fault decisions are independent draws, so p < 1 plans
/// clear well within this).
fn patient_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 32,
        ..Default::default()
    }
}

// ---------------------------------------------------------------------------
// Pinned seed matrix: LCC and Jaccard under light and heavy plans.
// ---------------------------------------------------------------------------

#[test]
fn lcc_is_bit_identical_under_recoverable_fault_plans() {
    let g = graph();
    for ranks in [2usize, 4] {
        let clean = DistLcc::new(DistConfig::non_cached(ranks)).run(&g);
        assert_eq!(
            clean.total_fault_events(),
            0,
            "fault-free runs count nothing"
        );
        for seed in chaos_seeds() {
            for plan in [FaultPlan::light(seed), FaultPlan::heavy(seed)] {
                with_plan_artifact(&plan, "lcc", || {
                    let cfg = DistConfig::non_cached(ranks)
                        .with_faults(plan)
                        .with_retry(patient_retries());
                    let faulted = DistLcc::new(cfg)
                        .try_run(&g)
                        .expect("recoverable plans must heal");
                    assert_eq!(faulted.triangle_count, clean.triangle_count, "seed {seed}");
                    assert_eq!(
                        faulted.per_vertex_triangles, clean.per_vertex_triangles,
                        "seed {seed}"
                    );
                    assert_eq!(faulted.lcc, clean.lcc, "seed {seed}");
                    assert!(
                        faulted.total_fault_events() > 0,
                        "plan {plan:?} must actually inject faults"
                    );
                });
            }
        }
    }
}

#[test]
fn cached_lcc_heals_corrupted_cache_entries() {
    let g = graph();
    let cache = 1usize << 20;
    let clean = DistLcc::new(DistConfig::cached(2, cache).with_degree_scores()).run(&g);
    for seed in chaos_seeds() {
        let plan = FaultPlan::heavy(seed);
        with_plan_artifact(&plan, "lcc-cached", || {
            let cfg = DistConfig::cached(2, cache)
                .with_degree_scores()
                .with_faults(plan)
                .with_retry(patient_retries());
            let faulted = DistLcc::new(cfg)
                .try_run(&g)
                .expect("recoverable plans must heal");
            assert_eq!(faulted.per_vertex_triangles, clean.per_vertex_triangles);
            assert_eq!(faulted.lcc, clean.lcc);
            // The heavy plan corrupts cached entries and rejects inserts; the
            // healed run must have seen (and counted) those events.
            let invalidations: u64 = faulted
                .ranks
                .iter()
                .map(|r| r.rma.cache_invalidations + r.rma.cache_rejections)
                .sum();
            assert!(
                invalidations > 0,
                "the heavy plan must hit the cache (seed {seed})"
            );
        });
    }
}

#[test]
fn jaccard_is_bit_identical_under_recoverable_fault_plans() {
    let g = graph();
    let clean = DistJaccard::new(DistConfig::non_cached(3)).run(&g);
    for seed in chaos_seeds() {
        for plan in [FaultPlan::light(seed), FaultPlan::heavy(seed)] {
            with_plan_artifact(&plan, "jaccard", || {
                let cfg = DistConfig::non_cached(3)
                    .with_faults(plan)
                    .with_retry(patient_retries());
                let faulted = DistJaccard::new(cfg)
                    .try_run(&g)
                    .expect("recoverable plans must heal");
                assert_eq!(faulted.edges, clean.edges, "seed {seed}");
                let events: u64 = faulted.rank_stats.iter().map(|s| s.fault_events()).sum();
                assert!(events > 0, "plan {plan:?} must actually inject faults");
            });
        }
    }
}

#[test]
fn tric_stragglers_never_change_counts() {
    let g = graph();
    let clean = Tric::new(TricConfig::plain(4)).run(&g);
    // Plain TriC only runs a handful of exchanges per rank, so a single seed
    // can legitimately roll zero delays; the counter check is over the matrix.
    let mut delayed_across_matrix = 0u64;
    for seed in chaos_seeds() {
        let plan = FaultPlan::heavy(seed);
        delayed_across_matrix += with_plan_artifact(&plan, "tric", || {
            let faulted = Tric::new(TricConfig::plain(4).with_faults(plan)).run(&g);
            assert_eq!(faulted.triangle_count, clean.triangle_count, "seed {seed}");
            assert_eq!(faulted.lcc, clean.lcc, "seed {seed}");
            faulted.total_delayed_exchanges()
        });
    }
    assert!(
        delayed_across_matrix > 0,
        "the heavy plan must delay some exchange across the seed matrix"
    );
    assert_eq!(clean.total_delayed_exchanges(), 0);
}

// ---------------------------------------------------------------------------
// Unrecoverable plans: clean errors, never panics or wrong counts.
// ---------------------------------------------------------------------------

#[test]
fn unrecoverable_plans_error_cleanly() {
    let g = graph();
    for seed in chaos_seeds() {
        let plan = FaultPlan::unrecoverable(seed);
        assert!(!plan.is_recoverable());
        with_plan_artifact(&plan, "unrecoverable", || {
            let cfg = DistConfig::non_cached(2)
                .with_faults(plan)
                .with_retry(RetryPolicy::no_retries());
            let err = DistLcc::new(cfg).try_run(&g).expect_err("every get fails");
            assert!(
                matches!(err, RmaError::RetriesExhausted { .. }),
                "seed {seed}: got {err}"
            );
            // Same through the Jaccard path.
            let cfg = DistConfig::non_cached(2)
                .with_faults(plan)
                .with_retry(RetryPolicy::no_retries());
            let err = DistJaccard::new(cfg)
                .try_run(&g)
                .expect_err("every get fails");
            assert!(matches!(err, RmaError::RetriesExhausted { .. }));
        });
    }
}

#[test]
fn quarantine_degrades_to_the_non_cached_baseline_without_wrong_answers() {
    // A cache so sick that every hit is corrupted: after the quarantine
    // threshold the cache stops serving and every read bypasses to the plain
    // RMA path — the paper's non-cached baseline — with results intact.
    let g = graph();
    let clean = DistLcc::new(DistConfig::non_cached(2)).run(&g);
    for seed in chaos_seeds() {
        let plan = FaultPlan {
            cache_corrupt_p: 0.9,
            ..FaultPlan::reliable(seed)
        };
        with_plan_artifact(&plan, "quarantine", || {
            let cfg = DistConfig::cached(2, 1 << 20)
                .with_faults(plan)
                .with_retry(patient_retries());
            let faulted = DistLcc::new(cfg)
                .try_run(&g)
                .expect("cache corruption alone is always recoverable");
            assert_eq!(faulted.per_vertex_triangles, clean.per_vertex_triangles);
            let bypasses: u64 = faulted.ranks.iter().map(|r| r.rma.cache_bypass_reads).sum();
            assert!(
                bypasses > 0,
                "a cache this sick must quarantine and bypass (seed {seed})"
            );
        });
    }
}

// ---------------------------------------------------------------------------
// The overlapped worker under fire: pipelined gets and intra-rank threads
// must not change what a fault plan can do — recoverable plans heal to the
// fault-free answer, unrecoverable plans surface a clean error with every
// epoch closed even while gets are still in flight in the pipeline.
// ---------------------------------------------------------------------------

/// Overlap settings exercised by the chaos matrix: depth-only, threads-only,
/// and both at once.
const OVERLAP_SETTINGS: [(usize, usize); 3] = [(4, 1), (1, 4), (8, 2)];

#[test]
fn overlapped_lcc_heals_recoverable_plans_to_the_fault_free_answer() {
    let g = graph();
    let clean = DistLcc::new(DistConfig::non_cached(2)).run(&g);
    for (depth, threads) in OVERLAP_SETTINGS {
        for seed in chaos_seeds() {
            for plan in [FaultPlan::light(seed), FaultPlan::heavy(seed)] {
                with_plan_artifact(&plan, "lcc-overlapped", || {
                    let cfg = DistConfig::non_cached(2)
                        .with_pipeline_depth(depth)
                        .with_intra_threads(threads)
                        .with_faults(plan)
                        .with_retry(patient_retries());
                    let faulted = DistLcc::new(cfg)
                        .try_run(&g)
                        .expect("recoverable plans must heal under overlap");
                    assert_eq!(
                        faulted.per_vertex_triangles, clean.per_vertex_triangles,
                        "depth {depth} threads {threads} seed {seed}"
                    );
                    assert_eq!(faulted.lcc, clean.lcc, "seed {seed}");
                    assert!(
                        faulted.total_fault_events() > 0,
                        "plan {plan:?} must actually inject faults"
                    );
                });
            }
        }
    }
}

#[test]
fn overlapped_cached_lcc_heals_corrupted_cache_entries() {
    // The overlapped cached path never admits unverified data: under faults
    // every deferred get re-verifies before the row can enter the cache, so
    // corruption costs retries, never answers.
    let g = graph();
    let clean = DistLcc::new(DistConfig::cached(2, 1 << 20).with_degree_scores()).run(&g);
    for seed in chaos_seeds() {
        let plan = FaultPlan::heavy(seed);
        with_plan_artifact(&plan, "lcc-cached-overlapped", || {
            let cfg = DistConfig::cached(2, 1 << 20)
                .with_degree_scores()
                .with_pipeline_depth(6)
                .with_intra_threads(2)
                .with_faults(plan)
                .with_retry(patient_retries());
            let faulted = DistLcc::new(cfg)
                .try_run(&g)
                .expect("recoverable plans must heal under overlap");
            assert_eq!(faulted.per_vertex_triangles, clean.per_vertex_triangles);
            assert_eq!(faulted.lcc, clean.lcc, "seed {seed}");
        });
    }
}

#[test]
fn overlapped_jaccard_heals_recoverable_plans_to_the_fault_free_answer() {
    let g = graph();
    let clean = DistJaccard::new(DistConfig::non_cached(3)).run(&g);
    for (depth, threads) in OVERLAP_SETTINGS {
        for seed in chaos_seeds() {
            let plan = FaultPlan::heavy(seed);
            with_plan_artifact(&plan, "jaccard-overlapped", || {
                let cfg = DistConfig::non_cached(3)
                    .with_pipeline_depth(depth)
                    .with_intra_threads(threads)
                    .with_faults(plan)
                    .with_retry(patient_retries());
                let faulted = DistJaccard::new(cfg)
                    .try_run(&g)
                    .expect("recoverable plans must heal under overlap");
                assert_eq!(
                    faulted.edges, clean.edges,
                    "depth {depth} threads {threads} seed {seed}"
                );
            });
        }
    }
}

#[test]
fn overlapped_unrecoverable_plans_error_cleanly_with_epochs_closed() {
    // The hard case: a get fails terminally while the FIFO still holds other
    // in-flight gets. The worker must abandon them, close every access epoch
    // (the endpoint panics on an unbalanced epoch otherwise), and surface the
    // error — no hang, no panic, no partial answer.
    let g = graph();
    for (depth, threads) in OVERLAP_SETTINGS {
        for seed in chaos_seeds() {
            let plan = FaultPlan::unrecoverable(seed);
            with_plan_artifact(&plan, "unrecoverable-overlapped", || {
                let cfg = DistConfig::non_cached(2)
                    .with_pipeline_depth(depth)
                    .with_intra_threads(threads)
                    .with_faults(plan)
                    .with_retry(RetryPolicy::no_retries());
                let err = DistLcc::new(cfg).try_run(&g).expect_err("every get fails");
                assert!(
                    matches!(err, RmaError::RetriesExhausted { .. }),
                    "depth {depth} threads {threads} seed {seed}: got {err}"
                );
                let cfg = DistConfig::non_cached(2)
                    .with_pipeline_depth(depth)
                    .with_intra_threads(threads)
                    .with_faults(plan)
                    .with_retry(RetryPolicy::no_retries());
                let err = DistJaccard::new(cfg)
                    .try_run(&g)
                    .expect_err("every get fails");
                assert!(matches!(err, RmaError::RetriesExhausted { .. }));
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic replay: same plan, same outcome.
// ---------------------------------------------------------------------------

#[test]
fn fault_schedules_are_deterministic_across_runs() {
    let g = graph();
    let plan = FaultPlan::heavy(123);
    let run = || {
        let mut cfg = DistConfig::non_cached(4)
            .with_faults(plan)
            .with_retry(patient_retries());
        // Double buffering's overlap credit depends on measured wall-clock
        // compute; off, the modeled communication time is exactly replayable.
        cfg.double_buffering = false;
        DistLcc::new(cfg).try_run(&g).expect("recoverable")
    };
    let a = run();
    let b = run();
    assert_eq!(a.per_vertex_triangles, b.per_vertex_triangles);
    // Not just the outputs: the entire fault schedule replays identically,
    // because decisions hash (seed, rank, event counter), not thread timing.
    for (ra, rb) in a.ranks.iter().zip(b.ranks.iter()) {
        assert_eq!(ra.rma.retries, rb.rma.retries);
        assert_eq!(ra.rma.transient_failures, rb.rma.transient_failures);
        assert_eq!(ra.rma.checksum_failures, rb.rma.checksum_failures);
        assert_eq!(ra.rma.delayed_gets, rb.rma.delayed_gets);
        assert_eq!(ra.rma.comm_time_ns, rb.rma.comm_time_ns);
    }
}

// ---------------------------------------------------------------------------
// Property: arbitrary recoverable schedules over plans drawn by proptest.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn arbitrary_recoverable_plans_heal_to_identical_results(
        (seed, ranks) in (any::<u64>(), 2usize..=4),
        (get_failure_p, delay_p, corrupt_p) in (0.0f64..0.3, 0.0f64..0.3, 0.0f64..0.3),
        (cache_reject_p, cache_corrupt_p) in (0.0f64..0.3, 0.0f64..0.3),
        (max_attempts, with_timeout) in (16u32..=20, any::<bool>()),
        cached in any::<bool>(),
    ) {
        let g = graph();
        let plan = FaultPlan {
            seed,
            get_failure_p,
            delay_p,
            delay_factor: 8.0,
            corrupt_p,
            cache_reject_p,
            cache_corrupt_p,
        };
        prop_assert!(plan.validate().is_ok());
        prop_assert!(plan.is_recoverable());
        let retry = RetryPolicy {
            max_attempts,
            // A timeout below the delayed cost turns stragglers into retried
            // timeouts — the reissue path; without it they only cost time.
            timeout_ns: with_timeout.then_some(100_000.0),
            ..Default::default()
        };
        let base = if cached {
            DistConfig::cached(ranks, 1 << 20)
        } else {
            DistConfig::non_cached(ranks)
        };
        let clean = DistLcc::new(base).run(&g);
        let faulted = DistLcc::new(base.with_faults(plan).with_retry(retry))
            .try_run(&g)
            .expect("recoverable plans with a patient budget must heal");
        prop_assert_eq!(&faulted.per_vertex_triangles, &clean.per_vertex_triangles);
        prop_assert_eq!(&faulted.lcc, &clean.lcc);
        // Counters fire exactly when the plan can inject at all.
        if plan.is_reliable() {
            prop_assert_eq!(faulted.total_fault_events(), 0);
        }
        prop_assert_eq!(clean.total_fault_events(), 0);
    }
}

// ---------------------------------------------------------------------------
// The resident query service under fire: a long-lived engine must heal
// recoverable plans per query (answers bit-identical to a clean engine's, with
// non-zero fault counters), and unrecoverable plans must fail the affected
// queries with a clean typed error without poisoning the engine for anything
// that comes after.
// ---------------------------------------------------------------------------

/// A deterministic degree-weighted query mix over the chaos graph, exercising
/// all four query kinds.
fn service_query_mix(g: &CsrGraph, count: usize) -> Vec<Query> {
    let adj = g.adjacencies();
    let n = g.vertex_count() as u64;
    let mut state = 0xfeed_face_cafe_0001u64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    (0..count)
        .map(|_| {
            let pos = next() % adj.len() as u64;
            let u = (g.offsets().partition_point(|&o| o <= pos) - 1) as u32;
            let v = adj[pos as usize];
            match next() % 4 {
                0 => Query::CommonNeighbors { u, v },
                1 => Query::Jaccard { u, v },
                2 => Query::TopK {
                    u,
                    k: (next() % 6) as usize,
                },
                _ => Query::LccOf {
                    v: (next() % n) as u32,
                },
            }
        })
        .collect()
}

fn service_config(ranks: usize) -> DistConfig {
    DistConfig::cached(ranks, 1 << 20).with_degree_scores()
}

#[test]
fn resident_service_heals_recoverable_plans_per_query() {
    let g = graph();
    let ranks = 2;
    let queries = service_query_mix(&g, 80);
    // The clean resident engine produces the reference answers.
    let mut clean_engine = QueryEngine::new(
        &g,
        ServiceConfig::new(service_config(ranks)).with_batch_size(16),
    );
    for &q in &queries {
        clean_engine.submit(q).unwrap();
    }
    let clean: Vec<QueryAnswer> = clean_engine
        .drain()
        .into_iter()
        .map(|r| r.result.expect("fault-free queries succeed"))
        .collect();
    assert_eq!(clean_engine.stats().rma.fault_events(), 0);
    for seed in chaos_seeds() {
        for plan in [FaultPlan::light(seed), FaultPlan::heavy(seed)] {
            with_plan_artifact(&plan, "service", || {
                let dist = service_config(ranks)
                    .with_faults(plan)
                    .with_retry(patient_retries());
                let mut engine = QueryEngine::new(&g, ServiceConfig::new(dist).with_batch_size(16));
                for &q in &queries {
                    engine.submit(q).unwrap();
                }
                let responses = engine.drain();
                assert_eq!(responses.len(), clean.len());
                for (resp, want) in responses.iter().zip(&clean) {
                    let got = resp
                        .result
                        .as_ref()
                        .expect("recoverable plans heal per query");
                    assert_eq!(got, want, "seed {seed}");
                }
                let stats = engine.stats();
                assert!(
                    stats.rma.fault_events() > 0,
                    "plan {plan:?} must actually inject faults"
                );
                assert!(stats.reconciles(), "seed {seed}: {stats:?}");
            });
        }
    }
}

#[test]
fn resident_service_survives_unrecoverable_plans_without_poisoning() {
    let g = graph();
    let ranks = 2;
    // A pair query whose operands are co-located (no remote reads, immune to
    // get faults) and one whose home row has a remote neighbour (must fail
    // under an unrecoverable plan).
    let mut probe = QueryEngine::new(&g, ServiceConfig::new(service_config(ranks)));
    let pg = probe.partitioned_graph();
    let mut local_pair = None;
    let mut remote_query = None;
    for v in 0..pg.global_vertex_count() as u32 {
        let owner = pg.partitioner.owner(v);
        for &w in pg.partitions[owner].neighbours_of_local(pg.partitioner.local_index(v)) {
            if pg.partitioner.owner(w) == owner {
                local_pair.get_or_insert(Query::Jaccard { u: v, v: w });
            } else {
                remote_query.get_or_insert(Query::Jaccard { u: v, v: w });
            }
        }
    }
    let local_pair = local_pair.expect("block partitions keep intra-rank edges");
    let remote_query = remote_query.expect("2-rank partitions of this graph have remote edges");
    let local_answer = probe.oneshot(local_pair).expect("clean run succeeds");
    drop(probe);

    for seed in chaos_seeds() {
        let plan = FaultPlan::unrecoverable(seed);
        with_plan_artifact(&plan, "service-unrecoverable", || {
            let dist = service_config(ranks)
                .with_faults(plan)
                .with_retry(RetryPolicy::no_retries());
            let mut engine = QueryEngine::new(&g, ServiceConfig::new(dist));
            // The remote-dependent query fails with a clean typed error.
            let err = engine.oneshot(remote_query).expect_err("every get fails");
            assert!(
                matches!(err, ServiceError::Read(RmaError::RetriesExhausted { .. })),
                "seed {seed}: got {err}"
            );
            // The engine is not poisoned: a co-located query still succeeds
            // with the clean answer, errors stay per-query under interleaving.
            for _ in 0..3 {
                let got = engine
                    .oneshot(local_pair)
                    .expect("local queries are immune to get faults");
                assert_eq!(got, local_answer, "seed {seed}");
                let err = engine.oneshot(remote_query).expect_err("still failing");
                assert!(matches!(err, ServiceError::Read(_)));
            }
            let stats = engine.stats();
            assert!(stats.reconciles(), "seed {seed}: {stats:?}");
            assert_eq!(stats.completed, 3);
            assert_eq!(stats.failed, 4);
            assert_eq!(stats.queue_depth, 0);
        });
    }
}
