//! Determinism and equivalence tests of the calibrated cost model
//! (`rmatc_core::intersect::calibrate`):
//!
//! * `CostProfile` round-trips through serde (the workspace's value-tree
//!   facade + JSON text) bit-exactly, for arbitrary finite profiles;
//! * `CostModel::Calibrated` with the analytic-fitted profile selects the
//!   same kernel as `CostModel::Analytic` — exhaustively across the
//!   differential shapes and a dense sweep of `(|A|, |B|)` pairs;
//! * whatever profile is installed — fitted, distorted, or adversarial —
//!   only the *kernel choice* changes: LCC values and triangle counts are
//!   identical on the local and distributed paths.

use proptest::prelude::*;
use rmatc::prelude::*;
use rmatc_core::intersect::calibrate::{CostProfile, GRID_POINTS};
use rmatc_core::intersect::select_kernel;
use rmatc_core::Intersector;
use rmatc_graph::reference;

/// Profiles that pull the boundaries to extremes, to force kernel choices
/// the analytic rule would never make.
fn adversarial_profiles() -> Vec<CostProfile> {
    let analytic = CostProfile::analytic();
    let mut always_merge = analytic;
    always_merge.merge_ratio = [1e18; GRID_POINTS];
    let mut never_merge = analytic;
    never_merge.merge_ratio = [0.5; GRID_POINTS];
    let mut gallop_everything = never_merge;
    gallop_everything.gallop_exponent = 0.01;
    let mut binary_everything = never_merge;
    binary_everything.gallop_exponent = 1e6;
    vec![
        analytic,
        always_merge,
        never_merge,
        gallop_everything,
        binary_everything,
    ]
}

#[test]
fn analytic_profile_selection_is_identical_on_a_dense_sweep() {
    // The analytic-fitted profile must agree with the analytic model on
    // every pair, including right at the class boundaries; sweep a dense
    // grid of sizes plus the exact boundary neighbourhoods.
    let profile = CostProfile::analytic();
    let model = CostModel::Calibrated(profile);
    let mut sizes: Vec<usize> = vec![0, 1, 2, 3];
    for log in 2..=24 {
        let base = 1usize << log;
        sizes.extend([base - 1, base, base + 1]);
    }
    // Near the Eq. 3 boundary for |B| = 4096 (threshold ratio 11).
    sizes.extend([372, 373, 374]);
    let mut checked = 0u64;
    for &long in &sizes {
        for &short in &sizes {
            if short > long {
                continue;
            }
            assert_eq!(
                model.select(short, long),
                CostModel::Analytic.select(short, long),
                "short={short} long={long}"
            );
            checked += 1;
        }
    }
    assert!(
        checked > 1_000,
        "sweep must actually cover pairs: {checked}"
    );
}

#[test]
fn analytic_profile_matches_on_the_differential_shapes() {
    // The same list shapes `tests/kernels.rs` runs the kernel suite on.
    let empty: Vec<u32> = vec![];
    let one = vec![7u32];
    let all_equal_a: Vec<u32> = (0..500).collect();
    let evens: Vec<u32> = (0..2_000).map(|x| x * 2).collect();
    let odds: Vec<u32> = (0..2_000).map(|x| x * 2 + 1).collect();
    let leaf = vec![5u32, 40_000, 99_999, 163_841];
    let hub: Vec<u32> = (0..163_842).collect();
    let cases: Vec<(&[u32], &[u32])> = vec![
        (&empty, &empty),
        (&empty, &all_equal_a),
        (&one, &empty),
        (&one, &one),
        (&one, &all_equal_a),
        (&all_equal_a, &all_equal_a),
        (&evens, &odds),
        (&evens, &evens),
        (&leaf, &hub),
    ];
    let profile = CostProfile::analytic();
    for (a, b) in cases {
        let (short, long) = if a.len() <= b.len() {
            (a.len(), b.len())
        } else {
            (b.len(), a.len())
        };
        assert_eq!(
            profile.select_kernel(short, long),
            select_kernel(short, long),
            "|a|={} |b|={}",
            a.len(),
            b.len()
        );
    }
}

#[test]
fn any_profile_changes_kernels_not_counts() {
    // Counting through a calibrated intersector must give the analytic
    // counts on every shape, for every adversarial profile — the model can
    // only pick *which* kernel runs.
    let evens: Vec<u32> = (0..2_000).map(|x| x * 2).collect();
    let mixed: Vec<u32> = (0..3_000).map(|x| x * 3 / 2).collect();
    let leaf = vec![5u32, 1_000, 2_999];
    let pairs: Vec<(&[u32], &[u32])> = vec![(&evens, &mixed), (&leaf, &mixed), (&evens, &evens)];
    for profile in adversarial_profiles() {
        let calibrated = Intersector::new(IntersectMethod::Hybrid)
            .with_cost_model(CostModel::Calibrated(profile));
        let analytic = Intersector::new(IntersectMethod::Hybrid);
        for (a, b) in &pairs {
            assert_eq!(
                calibrated.count(a, b),
                analytic.count(a, b),
                "profile {profile:?}"
            );
        }
    }
}

#[test]
fn local_lcc_is_invariant_under_the_cost_model() {
    let graphs = [
        RmatGenerator::paper(9, 8).generate_cleaned(11).into_csr(),
        WattsStrogatz::new(400, 8, 0.1)
            .generate_cleaned(5)
            .into_csr(),
    ];
    for g in &graphs {
        let baseline = LocalLcc::new(LocalConfig::sequential()).run(g);
        assert_eq!(baseline.triangle_count, reference::count_triangles(g));
        for profile in adversarial_profiles() {
            for cfg in [
                LocalConfig::sequential(),
                LocalConfig::vertex_parallel(4),
                LocalConfig::edge_parallel(4),
            ] {
                let run = LocalLcc::new(cfg.with_cost_model(CostModel::Calibrated(profile))).run(g);
                assert_eq!(
                    run.per_vertex_triangles, baseline.per_vertex_triangles,
                    "{:?} under {profile:?}",
                    cfg.parallelism
                );
                assert_eq!(run.lcc, baseline.lcc);
            }
        }
    }
}

#[test]
fn distributed_lcc_is_invariant_under_the_cost_model() {
    let g = RmatGenerator::paper(8, 8).generate_cleaned(3).into_csr();
    let expected = reference::lcc_scores(&g);
    for profile in adversarial_profiles() {
        for cached in [false, true] {
            let mut config = DistConfig::non_cached(4)
                .with_cost_model(CostModel::Calibrated(profile))
                .with_degree_scores();
            if cached {
                config.cache = Some(CacheSpec::paper(1 << 20));
            }
            let result = DistLcc::new(config).run(&g);
            assert_eq!(result.triangle_count, reference::count_triangles(&g));
            for (v, (a, b)) in result.lcc.iter().zip(expected.iter()).enumerate() {
                assert!(
                    (a - b).abs() < 1e-12,
                    "vertex {v}: {a} vs {b} cached={cached} profile={profile:?}"
                );
            }
        }
    }
}

fn finite_threshold() -> impl Strategy<Value = f64> {
    // Thresholds spanning ~20 decades (including zero and sub-1 values):
    // a uniform mantissa scaled by a random power of ten.
    (0.0f64..10.0, 0u32..20).prop_map(|(mantissa, exp)| mantissa * 10f64.powi(exp as i32 - 2))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn profile_round_trips_through_serde_unchanged(
        thresholds in prop::collection::vec(finite_threshold(), GRID_POINTS..GRID_POINTS + 1),
        exponent in 0.01f64..32.0,
    ) {
        let mut profile = CostProfile::analytic();
        for (slot, t) in profile.merge_ratio.iter_mut().zip(&thresholds) {
            *slot = *t;
        }
        profile.gallop_exponent = exponent;
        let text = profile.to_json();
        let back = CostProfile::from_json(&text).unwrap();
        prop_assert_eq!(back, profile);
        // Bit-exact, not just PartialEq-equal.
        for (a, b) in back.merge_ratio.iter().zip(profile.merge_ratio.iter()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(back.gallop_exponent.to_bits(), profile.gallop_exponent.to_bits());
        // And a second trip is a fixed point.
        prop_assert_eq!(back.to_json(), text);
    }

    #[test]
    fn analytic_equivalence_on_random_pairs(short in 0usize..3_000_000, skew in 1usize..5_000) {
        let long = short.saturating_mul(skew).min(1 << 26).max(short);
        let model = CostModel::Calibrated(CostProfile::analytic());
        prop_assert_eq!(
            model.select(short, long),
            CostModel::Analytic.select(short, long),
            "short={} long={}", short, long
        );
    }

    #[test]
    fn hybrid_counts_match_under_random_profiles(
        a in prop::collection::vec(0u32..4_000, 0..400),
        b in prop::collection::vec(0u32..4_000, 0..400),
        thresholds in prop::collection::vec(finite_threshold(), GRID_POINTS..GRID_POINTS + 1),
        exponent in 0.01f64..32.0,
    ) {
        let mut sorted_a = a; sorted_a.sort_unstable(); sorted_a.dedup();
        let mut sorted_b = b; sorted_b.sort_unstable(); sorted_b.dedup();
        let mut profile = CostProfile::analytic();
        for (slot, t) in profile.merge_ratio.iter_mut().zip(&thresholds) {
            *slot = *t;
        }
        profile.gallop_exponent = exponent;
        let expected = reference::sorted_intersection_count(&sorted_a, &sorted_b);
        let ix = Intersector::new(IntersectMethod::Hybrid)
            .with_cost_model(CostModel::Calibrated(profile));
        prop_assert_eq!(ix.count(&sorted_a, &sorted_b), expected);
        prop_assert_eq!(ix.count(&sorted_b, &sorted_a), expected);
    }
}
