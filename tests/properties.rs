//! Property-based tests (proptest) of the core invariants: CSR construction,
//! partitioning, intersection kernels, LCC bounds, and cache behaviour hold for
//! arbitrary random graphs and access patterns, not just the hand-picked fixtures.

use proptest::prelude::*;
use rmatc::prelude::*;
use rmatc_clampi::{Clampi, EntryKey};
use rmatc_graph::reference;
use rmatc_graph::types::Direction;
use rmatc_rma::WindowId;

/// Strategy: a random undirected graph as (vertex count, edge list).
fn arb_undirected_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (4usize..40).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..200);
        (Just(n), edges)
    })
}

fn build_csr(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
    let mut el = EdgeList::from_edges(n, edges.to_vec(), Direction::Undirected).unwrap();
    el.remove_self_loops();
    el.symmetrize();
    el.into_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_roundtrips_the_edge_set((n, edges) in arb_undirected_graph()) {
        let csr = build_csr(n, &edges);
        prop_assert!(csr.adjacency_lists_sorted());
        prop_assert!(csr.adjacency_in_range());
        prop_assert!(csr.is_symmetric());
        // Every original (non-loop) edge is present after symmetrization.
        for &(u, v) in &edges {
            if u != v {
                prop_assert!(csr.has_edge(u, v) && csr.has_edge(v, u));
            }
        }
    }

    #[test]
    fn lcc_scores_are_probabilities((n, edges) in arb_undirected_graph()) {
        let csr = build_csr(n, &edges);
        for (v, score) in reference::lcc_scores(&csr).iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(score), "vertex {} has LCC {}", v, score);
        }
    }

    #[test]
    fn partitioning_preserves_edges_and_reassembles((n, edges) in arb_undirected_graph(),
                                                    ranks in 1usize..6) {
        let csr = build_csr(n, &edges);
        let ranks = ranks.min(csr.vertex_count().max(1));
        for scheme in [PartitionScheme::Block1D, PartitionScheme::Cyclic] {
            let pg = PartitionedGraph::from_global(&csr, scheme, ranks).unwrap();
            prop_assert_eq!(pg.reassemble(), csr.clone());
            prop_assert_eq!(pg.global_edge_count(), csr.edge_count());
            let frac = pg.remote_edge_fraction();
            prop_assert!((0.0..=1.0).contains(&frac));
            if ranks == 1 {
                prop_assert_eq!(frac, 0.0);
            }
        }
    }

    #[test]
    fn all_intersection_kernels_agree(mut a in prop::collection::vec(0u32..500, 0..80),
                                      mut b in prop::collection::vec(0u32..500, 0..80),
                                      chunks in 1usize..5) {
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let expected = reference::sorted_intersection_count(&a, &b);
        for method in IntersectMethod::all() {
            let seq = rmatc_core::Intersector::new(method).count(&a, &b);
            prop_assert_eq!(seq, expected);
            let par = rmatc_core::intersect::ParallelIntersector::new(method, chunks, 4);
            prop_assert_eq!(par.count(&a, &b), expected);
        }
    }

    #[test]
    fn distributed_equals_reference_on_random_graphs((n, edges) in arb_undirected_graph(),
                                                     ranks in 1usize..5) {
        let csr = build_csr(n, &edges);
        if csr.vertex_count() == 0 {
            return Ok(());
        }
        let ranks = ranks.min(csr.vertex_count());
        let result = DistLcc::new(DistConfig::non_cached(ranks)).run(&csr);
        prop_assert_eq!(result.triangle_count, reference::count_triangles(&csr));
        let expected = reference::lcc_scores(&csr);
        for (a, b) in result.lcc.iter().zip(expected.iter()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn compressed_storage_is_bit_identical_on_random_graphs((n, edges) in arb_undirected_graph(),
                                                            ranks in 1usize..5,
                                                            cached in proptest::prelude::any::<bool>(),
                                                            depth in 1usize..6) {
        // The differential claim of the compressed storage mode: for an
        // arbitrary graph, every pipeline — local, distributed
        // cached/non-cached, and the overlapped worker at an arbitrary
        // depth — produces bit-identical scores to its plain-CSR twin.
        let csr = build_csr(n, &edges);
        if csr.vertex_count() == 0 {
            return Ok(());
        }
        let local_plain = LocalLcc::new(LocalConfig::sequential()).run(&csr);
        let local_compressed =
            LocalLcc::new(LocalConfig::sequential().with_storage(GraphStorage::Compressed))
                .run(&csr);
        prop_assert_eq!(local_plain.lcc, local_compressed.lcc);

        let ranks = ranks.min(csr.vertex_count());
        let mut cfg = DistConfig::non_cached(ranks).with_storage(GraphStorage::Plain);
        if cached {
            cfg.cache = Some(CacheSpec::paper(1 << 18));
            cfg = cfg.with_degree_scores();
        }
        let plain = DistLcc::new(cfg).run(&csr);
        let compressed = DistLcc::new(cfg.with_storage(GraphStorage::Compressed)).run(&csr);
        prop_assert_eq!(&plain.lcc, &compressed.lcc);
        prop_assert_eq!(plain.triangle_count, compressed.triangle_count);

        let overlapped = DistLcc::new(
            cfg.with_storage(GraphStorage::Compressed).with_pipeline_depth(depth),
        )
        .run(&csr);
        prop_assert_eq!(&plain.lcc, &overlapped.lcc);
    }

    #[test]
    fn tric_equals_reference_on_random_graphs((n, edges) in arb_undirected_graph(),
                                              ranks in 1usize..4,
                                              buffer in 1usize..64) {
        let csr = build_csr(n, &edges);
        if csr.vertex_count() == 0 {
            return Ok(());
        }
        let ranks = ranks.min(csr.vertex_count());
        let result = Tric::new(TricConfig::buffered_with(ranks, buffer)).run(&csr);
        prop_assert_eq!(result.triangle_count, reference::count_triangles(&csr));
    }

    #[test]
    fn triangle_count_is_invariant_under_relabeling((n, edges) in arb_undirected_graph(),
                                                    seed in 0u64..1000) {
        let csr = build_csr(n, &edges);
        let mut el = EdgeList::from_edges(
            csr.vertex_count(),
            csr.edges().collect(),
            Direction::Undirected,
        ).unwrap();
        let perm = rmatc_graph::relabel::random_permutation(csr.vertex_count(), seed);
        el.relabel(&perm);
        let relabeled = el.into_csr();
        prop_assert_eq!(
            reference::count_triangles(&csr),
            reference::count_triangles(&relabeled)
        );
    }

    #[test]
    fn cache_never_returns_wrong_data(ops in prop::collection::vec((0usize..32, 1usize..8), 1..200),
                                      capacity in 16usize..512,
                                      slots in 1usize..64) {
        // A model-based test: the cache answers must always equal what the "window"
        // (here a deterministic function of the key) would return.
        let mut cache: Clampi<u32> = Clampi::new(ClampiConfig::always_cache(capacity, slots));
        for (offset, len) in ops {
            let key = EntryKey::new(WindowId(7), 1, offset, len);
            let expected: Vec<u32> = (0..len as u32).map(|i| (offset as u32) * 1000 + i).collect();
            match cache.lookup(key) {
                Some(hit) => prop_assert_eq!(hit.as_ref(), &expected),
                None => {
                    cache.insert(key, expected.clone(), len as f64);
                }
            }
        }
        let stats = cache.stats().clone();
        prop_assert_eq!(stats.lookups(), stats.hits + stats.misses);
        prop_assert!(stats.compulsory_misses <= stats.misses);
        prop_assert!(cache.occupied_bytes() <= cache.config().capacity_bytes);
    }
}
