//! Stress tests of the persistent work-stealing pool behind the `rayon`
//! facade: many repeated small parallel invocations must reuse the same
//! worker threads (no spawn per call), return deterministic counts, and
//! survive concurrent submitters.

use rayon::prelude::*;
use rmatc::prelude::*;
use rmatc_graph::gen::{GraphGenerator, RmatGenerator, WattsStrogatz};

/// Current OS-thread count of this process, from /proc (Linux-only; the
/// portable `rayon::threads_spawned` counter is the primary assertion).
#[cfg(target_os = "linux")]
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn repeated_small_parallel_runs_reuse_the_pool_and_stay_deterministic() {
    let graphs: Vec<CsrGraph> = vec![
        RmatGenerator::paper(8, 8).generate_cleaned(1).into_csr(),
        WattsStrogatz::new(256, 6, 0.1)
            .generate_cleaned(2)
            .into_csr(),
    ];
    let configs = [
        LocalConfig::parallel(4),
        LocalConfig::vertex_parallel(4),
        LocalConfig::edge_parallel(4),
        LocalConfig::vertex_parallel(4).with_schedule(RangeSchedule::Static),
    ];

    // Warm the pool, then snapshot both thread counters.
    let baseline: Vec<u64> = graphs
        .iter()
        .map(|g| LocalLcc::new(configs[0]).run(g).triangle_count)
        .collect();
    let spawned_before = rayon::threads_spawned();
    assert!(
        spawned_before > 0 && spawned_before <= rayon::current_num_threads(),
        "pool must exist after the first parallel run"
    );
    #[cfg(target_os = "linux")]
    let os_threads_before = os_thread_count();

    // Hammer the pool with many small invocations across all strategies.
    for round in 0..50 {
        let config = configs[round % configs.len()];
        for (g, &expected) in graphs.iter().zip(&baseline) {
            let result = LocalLcc::new(config).run(g);
            assert_eq!(
                result.triangle_count, expected,
                "round {round} {:?} diverged",
                config.parallelism
            );
        }
    }

    assert_eq!(
        rayon::threads_spawned(),
        spawned_before,
        "parallel calls must not spawn OS threads once the pool exists"
    );
    #[cfg(target_os = "linux")]
    if let (Some(before), Some(after)) = (os_threads_before, os_thread_count()) {
        // Slack of 4: the sibling test in this binary may be running its
        // scoped rank threads concurrently. The hard no-spawn guarantee is
        // the `threads_spawned` assertion above.
        assert!(
            after <= before + 4,
            "process thread count grew from {before} to {after} — the pool leaked threads"
        );
    }
}

/// The nested-parallelism stress body, run in a child process so the pool
/// size (fixed per process) can be varied: a parallel map whose workers open
/// `scope`s that spawn tasks that themselves open parallel regions — nesting
/// depth 3 — repeated enough to exercise stealing, with thread counters
/// asserted flat throughout.
fn nested_stress_body() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let size = rayon::ensure_pool(0);
    let spawned = rayon::threads_spawned();
    assert_eq!(spawned, size, "pool spawns exactly its size");
    for round in 0..20 {
        let hits = AtomicUsize::new(0);
        let total: u64 = (0..32usize)
            .into_par_iter()
            .map(|i| {
                rayon::scope(|s| {
                    for _ in 0..4 {
                        s.spawn(|inner| {
                            hits.fetch_add(1, Ordering::Relaxed);
                            inner.spawn(|_| {
                                hits.fetch_add(1, Ordering::Relaxed);
                                // Depth 3: a parallel sum from inside a task
                                // spawned by a task spawned inside a worker.
                                let s: u64 = (0..16usize).into_par_iter().map(|x| x as u64).sum();
                                assert_eq!(s, 120);
                            });
                        });
                    }
                });
                i as u64
            })
            .sum();
        assert_eq!(total, (0..32).sum::<usize>() as u64, "round {round}");
        assert_eq!(hits.load(Ordering::Relaxed), 32 * 8, "round {round}");
    }
    assert_eq!(
        rayon::threads_spawned(),
        spawned,
        "nested parallelism must not spawn threads beyond the pool"
    );
}

/// Runs one test of this binary in a child process with a forced pool size,
/// killing it if it exceeds `timeout` (a deadlocked nested pool must fail the
/// suite, not hang it).
fn run_child(test_name: &str, child_var: &str, threads: &str, timeout: std::time::Duration) {
    let exe = std::env::current_exe().expect("test binary path");
    let mut child = std::process::Command::new(&exe)
        .args(["--exact", test_name, "--nocapture", "--test-threads=1"])
        .env(child_var, "1")
        .env("RMATC_THREADS", threads)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn child test process");
    let deadline = std::time::Instant::now() + timeout;
    let status = loop {
        match child.try_wait().expect("poll child") {
            Some(status) => break status,
            None if std::time::Instant::now() > deadline => {
                let _ = child.kill();
                panic!("RMATC_THREADS={threads}: child deadlocked (killed after {timeout:?})");
            }
            None => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    };
    let out = child.wait_with_output().expect("collect child output");
    assert!(
        status.success(),
        "RMATC_THREADS={threads}: child failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn nested_scope_inside_worker_survives_all_pool_sizes() {
    if std::env::var("RMATC_POOL_NESTED_CHILD").is_ok() {
        nested_stress_body();
        return;
    }
    // Pool size 1 (the deadlock-critical case: nothing to split to), 2 (one
    // thief), and N (whatever this host gives, stealing under contention).
    for threads in ["1", "2", "8"] {
        run_child(
            "nested_scope_inside_worker_survives_all_pool_sizes",
            "RMATC_POOL_NESTED_CHILD",
            threads,
            std::time::Duration::from_secs(120),
        );
    }
}

#[test]
fn nested_panics_propagate_and_pool_survives() {
    rayon::ensure_pool(4);
    let result = std::panic::catch_unwind(|| {
        let _: Vec<u64> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                rayon::scope(|s| {
                    s.spawn(move |_| {
                        if i == 3 {
                            panic!("nested boom");
                        }
                    });
                });
                i as u64
            })
            .collect();
    });
    assert!(
        result.is_err(),
        "a panic inside a task spawned from a worker must reach the submitter"
    );
    // The pool must absorb the unwound job and stay usable.
    let total: u64 = (0..100usize).into_par_iter().map(|x| x as u64).sum();
    assert_eq!(total, 4_950);
}

#[test]
fn concurrent_submitters_get_independent_correct_results() {
    let g = RmatGenerator::paper(8, 8).generate_cleaned(3).into_csr();
    let expected = LocalLcc::new(LocalConfig::sequential())
        .run(&g)
        .triangle_count;
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let g = &g;
            scope.spawn(move || {
                for _ in 0..10 {
                    let config = if worker % 2 == 0 {
                        LocalConfig::vertex_parallel(4)
                    } else {
                        LocalConfig::edge_parallel(4)
                    };
                    assert_eq!(LocalLcc::new(config).run(g).triangle_count, expected);
                }
            });
        }
    });
}
