//! Stress tests of the persistent work-stealing pool behind the `rayon`
//! facade: many repeated small parallel invocations must reuse the same
//! worker threads (no spawn per call), return deterministic counts, and
//! survive concurrent submitters.

use rmatc::prelude::*;
use rmatc_graph::gen::{GraphGenerator, RmatGenerator, WattsStrogatz};

/// Current OS-thread count of this process, from /proc (Linux-only; the
/// portable `rayon::threads_spawned` counter is the primary assertion).
#[cfg(target_os = "linux")]
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn repeated_small_parallel_runs_reuse_the_pool_and_stay_deterministic() {
    let graphs: Vec<CsrGraph> = vec![
        RmatGenerator::paper(8, 8).generate_cleaned(1).into_csr(),
        WattsStrogatz::new(256, 6, 0.1)
            .generate_cleaned(2)
            .into_csr(),
    ];
    let configs = [
        LocalConfig::parallel(4),
        LocalConfig::vertex_parallel(4),
        LocalConfig::edge_parallel(4),
        LocalConfig::vertex_parallel(4).with_schedule(RangeSchedule::Static),
    ];

    // Warm the pool, then snapshot both thread counters.
    let baseline: Vec<u64> = graphs
        .iter()
        .map(|g| LocalLcc::new(configs[0]).run(g).triangle_count)
        .collect();
    let spawned_before = rayon::threads_spawned();
    assert!(
        spawned_before > 0 && spawned_before <= rayon::current_num_threads(),
        "pool must exist after the first parallel run"
    );
    #[cfg(target_os = "linux")]
    let os_threads_before = os_thread_count();

    // Hammer the pool with many small invocations across all strategies.
    for round in 0..50 {
        let config = configs[round % configs.len()];
        for (g, &expected) in graphs.iter().zip(&baseline) {
            let result = LocalLcc::new(config).run(g);
            assert_eq!(
                result.triangle_count, expected,
                "round {round} {:?} diverged",
                config.parallelism
            );
        }
    }

    assert_eq!(
        rayon::threads_spawned(),
        spawned_before,
        "parallel calls must not spawn OS threads once the pool exists"
    );
    #[cfg(target_os = "linux")]
    if let (Some(before), Some(after)) = (os_threads_before, os_thread_count()) {
        // Slack of 4: the sibling test in this binary may be running its
        // scoped rank threads concurrently. The hard no-spawn guarantee is
        // the `threads_spawned` assertion above.
        assert!(
            after <= before + 4,
            "process thread count grew from {before} to {after} — the pool leaked threads"
        );
    }
}

#[test]
fn concurrent_submitters_get_independent_correct_results() {
    let g = RmatGenerator::paper(8, 8).generate_cleaned(3).into_csr();
    let expected = LocalLcc::new(LocalConfig::sequential())
        .run(&g)
        .triangle_count;
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let g = &g;
            scope.spawn(move || {
                for _ in 0..10 {
                    let config = if worker % 2 == 0 {
                        LocalConfig::vertex_parallel(4)
                    } else {
                        LocalConfig::edge_parallel(4)
                    };
                    assert_eq!(LocalLcc::new(config).run(g).triangle_count, expected);
                }
            });
        }
    });
}
