//! Eviction policies are a performance knob, never a correctness knob: the
//! distributed LCC must produce identical scores under every
//! [`EvictionPolicyKind`] — only hit rates may differ — and the policy
//! selection must actually reach both windows' caches.

use proptest::prelude::*;
use rmatc::prelude::*;

fn assert_scores_equal(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length mismatch");
    for (v, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() < 1e-12,
            "{context}: vertex {v} differs ({x} vs {y})"
        );
    }
}

#[test]
fn lcc_scores_are_invariant_under_every_policy() {
    let g = RmatGenerator::paper(10, 12).generate_cleaned(33).into_csr();
    // A cache far smaller than the graph, so every policy actually evicts.
    let capacity = (g.csr_size_bytes() as usize) / 8;
    let baseline = DistLcc::new(DistConfig::non_cached(4)).run(&g);
    for kind in EvictionPolicyKind::ALL {
        let cfg = DistConfig::cached(4, capacity).with_eviction_policy(kind);
        let result = DistLcc::new(cfg).run(&g);
        assert_scores_equal(&baseline.lcc, &result.lcc, kind.name());
        assert!(
            result.cache_hits() > 0,
            "{}: the cache should still hit under pressure",
            kind.name()
        );
    }
}

#[test]
fn degree_scores_still_apply_under_paper_score_only() {
    // ScoreMode::DegreeCentrality feeds degrees as user scores; only the
    // PaperScore policy reads them, but no policy may corrupt the values.
    let g = RmatGenerator::paper(9, 10).generate_cleaned(7).into_csr();
    let capacity = (g.csr_size_bytes() as usize) / 8;
    let baseline = DistLcc::new(DistConfig::non_cached(2)).run(&g);
    for kind in EvictionPolicyKind::ALL {
        let cfg = DistConfig::cached(2, capacity)
            .with_degree_scores()
            .with_eviction_policy(kind);
        let result = DistLcc::new(cfg).run(&g);
        assert_scores_equal(&baseline.lcc, &result.lcc, kind.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random small graphs, random budgets: score vectors match the
    /// non-cached baseline under every policy, with and without degree
    /// scores.
    #[test]
    fn random_graphs_are_policy_invariant(
        seed in 0u64..1000,
        scale in 7u32..9,
        budget_shift in 2usize..6,
        degree_scores in any::<bool>(),
    ) {
        let g = RmatGenerator::paper(scale, 8).generate_cleaned(seed).into_csr();
        let capacity = ((g.csr_size_bytes() as usize) >> budget_shift).max(256);
        let baseline = DistLcc::new(DistConfig::non_cached(3)).run(&g);
        for kind in EvictionPolicyKind::ALL {
            let mut cfg = DistConfig::cached(3, capacity).with_eviction_policy(kind);
            if degree_scores {
                cfg = cfg.with_degree_scores();
            }
            let result = DistLcc::new(cfg).run(&g);
            prop_assert_eq!(baseline.lcc.len(), result.lcc.len());
            for (v, (x, y)) in baseline.lcc.iter().zip(result.lcc.iter()).enumerate() {
                prop_assert!(
                    (x - y).abs() < 1e-12,
                    "{}: vertex {} differs ({} vs {})", kind.name(), v, x, y
                );
            }
        }
    }
}
