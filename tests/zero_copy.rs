//! Acceptance tests of the zero-copy remote-adjacency path: the fused
//! read+intersect worker is observationally identical to a materializing read
//! loop (same LCC values, same cache statistics, same endpoint counters),
//! cache hits and local-rank reads perform no heap allocations, and the single
//! miss allocation is handed to the cache without a second copy.

use proptest::prelude::*;
use rmatc::clampi::{CacheStats, RowRef};
use rmatc::core::distributed::reader::RemoteReader;
use rmatc::core::distributed::worker::run_worker;
use rmatc::core::distributed::{CacheSpec, DistConfig, GraphWindows, ScoreMode};
use rmatc::core::intersect::{CostModel, IntersectMethod, ParallelIntersector};
use rmatc::core::local::count_closing_at;
use rmatc::graph::gen::{GraphGenerator, RmatGenerator};
use rmatc::graph::partition::{PartitionScheme, PartitionedGraph};
use rmatc::graph::reference;
use rmatc::rma::{Endpoint, NetworkModel, RankStats};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Heap-allocation accounting: a counting wrapper around the system allocator
// with per-thread counters, so concurrently running tests cannot disturb the
// measurement. The counter cells are const-initialized and `Drop`-free, which
// keeps the allocator itself allocation-free.
// ---------------------------------------------------------------------------

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

// SAFETY: delegates every operation to `System`; the counter update performs
// no allocation (const-initialized, Drop-free thread-local).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations_on_this_thread() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// Shared fixtures.
// ---------------------------------------------------------------------------

fn base_config(ranks: usize) -> DistConfig {
    DistConfig {
        ranks,
        scheme: PartitionScheme::Block1D,
        method: IntersectMethod::Hybrid,
        cost_model: CostModel::Analytic,
        network: NetworkModel::aries(),
        // Off: overlap credit depends on wall-clock timing and would make the
        // modeled communication times non-deterministic across the two loops.
        double_buffering: false,
        cache: None,
        score_mode: ScoreMode::DegreeCentrality,
        retry: rmatc::rma::RetryPolicy::default(),
        faults: None,
        pipeline_depth: 1,
        intra_threads: 1,
        storage: rmatc::graph::GraphStorage::Plain,
    }
}

fn build_reader(
    pg: &PartitionedGraph,
    windows: &GraphWindows,
    config: &DistConfig,
) -> RemoteReader {
    match &config.cache {
        Some(spec) => {
            let caches = spec.resolve(pg.global_vertex_count(), windows.adjacency_bytes() as u64);
            RemoteReader::new(windows, &caches, config)
        }
        None => RemoteReader::non_cached(windows, config),
    }
}

/// The pre-zero-copy worker, reconstructed: reads every remote row into an
/// owned buffer first, then intersects — the two-pass shape the fused path
/// replaced. Protocol order, cache interception and endpoint charging are
/// identical, so every observable statistic must match the fused worker.
fn materializing_worker(
    rank: usize,
    pg: &PartitionedGraph,
    windows: &GraphWindows,
    config: &DistConfig,
) -> (Vec<u64>, Option<CacheStats>, Option<CacheStats>, RankStats) {
    let part = &pg.partitions[rank];
    let mut reader = build_reader(pg, windows, config);
    let mut ep = Endpoint::new(rank, config.ranks, config.network);
    let intersector = ParallelIntersector::new(config.method, 1, usize::MAX);
    let direction = pg.direction;
    let mut triangles = vec![0u64; part.local_vertex_count()];
    ep.lock_all();
    for (local_idx, slot) in triangles.iter_mut().enumerate() {
        let adj_u = part.neighbours_of_local(local_idx);
        for (k, &v) in adj_u.iter().enumerate() {
            let owner = pg.partitioner.owner(v);
            let v_local = pg.partitioner.local_index(v);
            *slot += if owner == rank {
                let adj_v = part.neighbours_of_local(v_local);
                count_closing_at(direction, adj_u, adj_v, v, k, &intersector)
            } else {
                let adj_v = reader
                    .read_adjacency(&mut ep, owner, v_local)
                    .expect("no faults injected")
                    .to_vec();
                count_closing_at(direction, adj_u, &adj_v, v, k, &intersector)
            };
        }
    }
    ep.unlock_all();
    (
        triangles,
        reader.offsets_cache_stats(),
        reader.adjacency_cache_stats(),
        ep.into_stats(),
    )
}

// ---------------------------------------------------------------------------
// Observational equivalence: fused worker == materializing loop == reference.
// ---------------------------------------------------------------------------

#[test]
fn fused_worker_is_observationally_identical_to_materializing_reads() {
    let g = RmatGenerator::paper(9, 8).generate_cleaned(13).into_csr();
    let expected = reference::per_vertex_triangles(&g);
    let ranks = 4;
    let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, ranks).unwrap();
    let windows = GraphWindows::build(&pg);
    // No cache, a generous (hit-heavy) cache, and a tight cache that forces
    // evictions and uncacheable entries.
    for cache in [
        None,
        Some(CacheSpec::paper(1 << 20)),
        Some(CacheSpec::paper(1 << 14)),
    ] {
        let mut config = base_config(ranks);
        config.cache = cache;
        for rank in 0..ranks {
            let fused = run_worker(rank, &pg, &windows, &config).expect("no faults injected");
            let (triangles, offsets_stats, adj_stats, rma) =
                materializing_worker(rank, &pg, &windows, &config);
            assert_eq!(
                fused.local_triangles, triangles,
                "triangle counts differ (rank {rank}, cache {cache:?})"
            );
            assert_eq!(
                fused.offsets_cache, offsets_stats,
                "offsets CacheStats differ (rank {rank}, cache {cache:?})"
            );
            assert_eq!(
                fused.adjacency_cache, adj_stats,
                "adjacency CacheStats differ (rank {rank}, cache {cache:?})"
            );
            assert_eq!(
                fused.rma, rma,
                "endpoint statistics differ (rank {rank}, cache {cache:?})"
            );
            for (local_idx, &gv) in pg.partitions[rank].global_ids.iter().enumerate() {
                assert_eq!(
                    fused.local_triangles[local_idx], expected[gv as usize],
                    "vertex {gv} disagrees with the reference"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Allocation behaviour.
// ---------------------------------------------------------------------------

#[test]
fn cache_hits_and_local_reads_allocate_nothing() {
    let g = RmatGenerator::paper(8, 8).generate_cleaned(9).into_csr();
    let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 2).unwrap();
    let windows = GraphWindows::build(&pg);
    let mut config = base_config(2);
    // Both caches far larger than the data they might hold, so the second
    // round is all hits.
    config.cache = Some(CacheSpec {
        total_bytes: 1 << 22,
        offsets_bytes: Some(1 << 20),
        cache_offsets: true,
        cache_adjacencies: true,
        adaptive: false,
        policy: Default::default(),
    });
    let mut reader = build_reader(&pg, &windows, &config);
    let mut ep = Endpoint::new(0, 2, config.network);
    ep.lock_all();
    let reads = pg.partitions[1].local_vertex_count().min(40);
    // Warm: fetch and cache every row (allocations expected here).
    for idx in 0..reads {
        let _ = reader.read_adjacency(&mut ep, 1, idx).unwrap();
    }
    // Measure: remote reads served from the cache.
    let before = allocations_on_this_thread();
    let mut checksum = 0u64;
    for idx in 0..reads {
        let row = reader.read_adjacency(&mut ep, 1, idx).unwrap();
        checksum += row.iter().map(|&v| v as u64).sum::<u64>();
    }
    assert_eq!(
        allocations_on_this_thread(),
        before,
        "cache-hit reads must perform zero heap allocations"
    );
    // Measure: local-rank reads borrow the window.
    let local_reads = pg.partitions[0].local_vertex_count().min(40);
    let before = allocations_on_this_thread();
    for idx in 0..local_reads {
        let row = reader.read_adjacency(&mut ep, 0, idx).unwrap();
        assert!(row.is_borrowed(), "local reads must borrow the window");
        checksum += row.len() as u64;
    }
    assert_eq!(
        allocations_on_this_thread(),
        before,
        "local-rank reads must perform zero heap allocations"
    );
    ep.unlock_all();
    assert!(checksum > 0, "the reads must have touched real data");
}

#[test]
fn fused_hit_path_allocates_nothing() {
    let g = RmatGenerator::paper(8, 8).generate_cleaned(9).into_csr();
    let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 2).unwrap();
    let windows = GraphWindows::build(&pg);
    let mut config = base_config(2);
    config.cache = Some(CacheSpec {
        total_bytes: 1 << 22,
        offsets_bytes: Some(1 << 20),
        cache_offsets: true,
        cache_adjacencies: true,
        adaptive: false,
        policy: Default::default(),
    });
    let mut reader = build_reader(&pg, &windows, &config);
    let mut ep = Endpoint::new(0, 2, config.network);
    let intersector = ParallelIntersector::new(config.method, 1, usize::MAX);
    let part = &pg.partitions[0];
    // Collect the first few remote edges of rank 0.
    let mut edges = Vec::new();
    'outer: for local_idx in 0..part.local_vertex_count() {
        let adj_u = part.neighbours_of_local(local_idx);
        for (k, &v) in adj_u.iter().enumerate() {
            if pg.partitioner.owner(v) == 1 {
                edges.push((local_idx, k, v, pg.partitioner.local_index(v)));
                if edges.len() >= 64 {
                    break 'outer;
                }
            }
        }
    }
    assert!(!edges.is_empty(), "the partition must have remote edges");
    ep.lock_all();
    let run = |reader: &mut RemoteReader, ep: &mut Endpoint| -> u64 {
        let mut total = 0;
        for &(local_idx, k, v, v_local) in &edges {
            let adj_u = part.neighbours_of_local(local_idx);
            total += reader
                .count_closing_remote(ep, 1, v_local, pg.direction, adj_u, v, k, &intersector)
                .unwrap();
        }
        total
    };
    let warm = run(&mut reader, &mut ep);
    let before = allocations_on_this_thread();
    let hot = run(&mut reader, &mut ep);
    assert_eq!(
        allocations_on_this_thread(),
        before,
        "the fused read+intersect hit path must perform zero heap allocations"
    );
    assert_eq!(warm, hot, "hit-path counts must match the miss-path counts");
    ep.unlock_all();
}

#[test]
fn compressed_fused_hit_path_allocates_nothing() {
    // Same guarantee under compressed storage: once a compressed row is
    // cached, the fused decompress+intersect kernel runs in place over the
    // stored words — block decode uses a stack buffer, so a hit performs
    // zero heap allocations.
    let g = RmatGenerator::paper(8, 8).generate_cleaned(9).into_csr();
    let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 2).unwrap();
    let windows = GraphWindows::build_with(&pg, rmatc::graph::GraphStorage::Compressed);
    let mut config = base_config(2);
    config.storage = rmatc::graph::GraphStorage::Compressed;
    config.cache = Some(CacheSpec {
        total_bytes: 1 << 22,
        offsets_bytes: Some(1 << 20),
        cache_offsets: true,
        cache_adjacencies: true,
        adaptive: false,
        policy: Default::default(),
    });
    let mut reader = build_reader(&pg, &windows, &config);
    let mut ep = Endpoint::new(0, 2, config.network);
    let intersector = ParallelIntersector::new(config.method, 1, usize::MAX);
    let part = &pg.partitions[0];
    let mut edges = Vec::new();
    'outer: for local_idx in 0..part.local_vertex_count() {
        let adj_u = part.neighbours_of_local(local_idx);
        for (k, &v) in adj_u.iter().enumerate() {
            if pg.partitioner.owner(v) == 1 {
                edges.push((local_idx, k, v, pg.partitioner.local_index(v)));
                if edges.len() >= 64 {
                    break 'outer;
                }
            }
        }
    }
    assert!(!edges.is_empty(), "the partition must have remote edges");
    ep.lock_all();
    let run = |reader: &mut RemoteReader, ep: &mut Endpoint| -> u64 {
        let mut total = 0;
        for &(local_idx, k, v, v_local) in &edges {
            let adj_u = part.neighbours_of_local(local_idx);
            total += reader
                .count_closing_remote(ep, 1, v_local, pg.direction, adj_u, v, k, &intersector)
                .unwrap();
        }
        total
    };
    let warm = run(&mut reader, &mut ep);
    let before = allocations_on_this_thread();
    let hot = run(&mut reader, &mut ep);
    assert_eq!(
        allocations_on_this_thread(),
        before,
        "the compressed fused hit path must perform zero heap allocations"
    );
    assert_eq!(warm, hot, "hit-path counts must match the miss-path counts");
    // The counts themselves must be the plain-storage counts.
    let plain_windows = GraphWindows::build(&pg);
    let mut plain_config = base_config(2);
    plain_config.cache = config.cache;
    let mut plain_reader = build_reader(&pg, &plain_windows, &plain_config);
    let mut plain_ep = Endpoint::new(0, 2, plain_config.network);
    plain_ep.lock_all();
    let expected = run(&mut plain_reader, &mut plain_ep);
    plain_ep.unlock_all();
    assert_eq!(hot, expected, "compressed counts must match plain counts");
    ep.unlock_all();
    let stats = reader.adjacency_cache_stats().unwrap();
    assert!(
        stats.logical_bytes > stats.stored_bytes && stats.stored_bytes > 0,
        "compressed misses must record logical vs stored bytes"
    );
}

#[test]
fn miss_buffer_is_shared_with_the_cache_not_copied() {
    let g = RmatGenerator::paper(8, 8).generate_cleaned(9).into_csr();
    let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 2).unwrap();
    let windows = GraphWindows::build(&pg);
    let mut config = base_config(2);
    config.cache = Some(CacheSpec::paper(1 << 22));
    let mut reader = build_reader(&pg, &windows, &config);
    let mut ep = Endpoint::new(0, 2, config.network);
    ep.lock_all();
    // Find a non-empty remote row.
    let idx = (0..pg.partitions[1].local_vertex_count())
        .find(|&i| !pg.partitions[1].neighbours_of_local(i).is_empty())
        .expect("some remote row is non-empty");
    let fetched: Arc<[u32]> = match reader.read_adjacency(&mut ep, 1, idx).unwrap() {
        RowRef::Fetched(arc) => arc,
        other => panic!("first read must miss, got {other:?}"),
    };
    let cached: Arc<[u32]> = match reader.read_adjacency(&mut ep, 1, idx).unwrap() {
        RowRef::Cached(arc) => arc,
        other => panic!("second read must hit, got {other:?}"),
    };
    assert!(
        Arc::ptr_eq(&fetched, &cached),
        "the cache must retain the transfer buffer itself — no second copy"
    );
    ep.unlock_all();
}

// ---------------------------------------------------------------------------
// Randomized interleavings of cached / non-cached / local-rank reads.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reader_interleavings_are_exact_and_consistent(
        accesses in prop::collection::vec((0usize..4, 0usize..64), 1..150),
        cache_bytes in 512usize..(1usize << 16),
        cached in any::<bool>(),
    ) {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(17).into_csr();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 4).unwrap();
        let windows = GraphWindows::build(&pg);
        let mut config = base_config(4);
        if cached {
            config.cache = Some(CacheSpec::paper(cache_bytes));
        }
        let mut reader = build_reader(&pg, &windows, &config);
        let mut ep = Endpoint::new(0, 4, config.network);
        ep.lock_all();
        let mut non_cached_gets_expected = 0u64;
        for (target, idx) in accesses {
            let part = &pg.partitions[target];
            let idx = idx % part.local_vertex_count();
            let row = reader
                .read_adjacency(&mut ep, target, idx)
                .expect("no faults injected");
            prop_assert_eq!(row.as_slice(), part.neighbours_of_local(idx),
                "target {} idx {}", target, idx);
            if target == 0 {
                prop_assert!(row.is_borrowed(), "own-rank reads must borrow the window");
            } else if !cached {
                non_cached_gets_expected += 1 + u64::from(!row.is_empty());
            }
        }
        ep.unlock_all();
        let stats = ep.into_stats();
        if cached {
            let offsets = reader.offsets_cache_stats().expect("offsets cache enabled");
            let adj = reader.adjacency_cache_stats().expect("adjacency cache enabled");
            for s in [&offsets, &adj] {
                prop_assert_eq!(s.lookups(), s.hits + s.misses);
                prop_assert!(s.compulsory_misses <= s.misses);
                // Every uncacheable insert was preceded by a lookup miss.
                prop_assert!(s.uncacheable <= s.misses);
            }
            // Every miss (and nothing else) goes to the network.
            prop_assert_eq!(stats.gets, offsets.misses + adj.misses);
        } else {
            prop_assert_eq!(stats.gets, non_cached_gets_expected);
        }
    }
}
