//! Integration tests of the caching behaviour the paper's evaluation depends on:
//! caching eliminates repeated remote reads, larger caches miss less, degree scores
//! help under pressure, and the compulsory-miss floor grows with the rank count.

use rmatc::prelude::*;

fn skewed_graph() -> CsrGraph {
    RmatGenerator::paper(11, 16).generate_cleaned(21).into_csr()
}

#[test]
fn caching_reduces_gets_and_communication_time() {
    let g = skewed_graph();
    let non_cached = DistLcc::new(DistConfig::non_cached(4)).run(&g);
    let cached =
        DistLcc::new(DistConfig::cached(4, g.csr_size_bytes() as usize).with_degree_scores())
            .run(&g);
    assert!(cached.total_gets() < non_cached.total_gets() / 2);
    assert!(cached.max_comm_time_ns() < non_cached.max_comm_time_ns());
    assert!(cached.cache_hits() > 0);
}

#[test]
fn miss_rate_decreases_monotonically_with_cache_size() {
    let g = skewed_graph();
    let adj_bytes = g.edge_count() as usize * 4;
    let mut previous_miss_rate = 1.0f64;
    for fraction in [0.05, 0.25, 1.0] {
        let mut cfg = DistConfig::non_cached(2);
        cfg.cache = Some(CacheSpec::adjacencies_only(
            (adj_bytes as f64 * fraction) as usize,
        ));
        let result = DistLcc::new(cfg).run(&g);
        let miss = result.adjacency_cache_totals().unwrap().miss_rate();
        assert!(
            miss <= previous_miss_rate + 0.02,
            "miss rate should not grow with a larger cache ({miss} after {previous_miss_rate})"
        );
        previous_miss_rate = miss;
    }
    // A cache as large as the adjacency data reaches (close to) the compulsory floor.
    let mut cfg = DistConfig::non_cached(2);
    cfg.cache = Some(CacheSpec::adjacencies_only(adj_bytes));
    let result = DistLcc::new(cfg).run(&g);
    let stats = result.adjacency_cache_totals().unwrap();
    assert!(stats.miss_rate() < stats.compulsory_miss_rate() + 0.05);
}

#[test]
fn degree_scores_do_not_hit_less_than_lru_under_pressure() {
    let g = skewed_graph();
    let adj_bytes = g.edge_count() as usize * 4;
    // 25% of the non-local partition, as in Figure 8: evictions are guaranteed.
    let capacity = adj_bytes / 4;
    let run = |mode| {
        let mut cfg = DistConfig::non_cached(4);
        cfg.cache = Some(CacheSpec::adjacencies_only(capacity));
        cfg.score_mode = mode;
        DistLcc::new(cfg).run(&g)
    };
    let lru = run(ScoreMode::Lru);
    let degree = run(ScoreMode::DegreeCentrality);
    let lru_stats = lru.adjacency_cache_totals().unwrap();
    let degree_stats = degree.adjacency_cache_totals().unwrap();
    assert!(
        lru_stats.evictions() > 0,
        "the configuration must create cache pressure"
    );
    assert!(
        degree_stats.hit_rate() >= lru_stats.hit_rate() - 0.01,
        "degree scores should not lose to LRU on a skewed graph ({} vs {})",
        degree_stats.hit_rate(),
        lru_stats.hit_rate()
    );
}

#[test]
fn compulsory_miss_floor_grows_with_rank_count() {
    let g = skewed_graph();
    let budget = g.csr_size_bytes() as usize;
    let rate = |ranks| {
        let result = DistLcc::new(DistConfig::cached(ranks, budget)).run(&g);
        result
            .adjacency_cache_totals()
            .unwrap()
            .compulsory_miss_rate()
    };
    let at_2 = rate(2);
    let at_16 = rate(16);
    assert!(
        at_16 > at_2,
        "partitioning over more ranks must increase compulsory misses ({at_2} -> {at_16})"
    );
}

#[test]
fn offsets_cache_alone_already_saves_communication() {
    let g = skewed_graph();
    let baseline = DistLcc::new(DistConfig::non_cached(2)).run(&g);
    let mut cfg = DistConfig::non_cached(2);
    cfg.cache = Some(CacheSpec::offsets_only((g.vertex_count() + 2) * 16));
    let cached = DistLcc::new(cfg).run(&g);
    assert!(cached.max_comm_time_ns() < baseline.max_comm_time_ns());
    assert!(cached.adjacency_cache_totals().is_none());
    assert!(cached.offsets_cache_totals().unwrap().hits > 0);
}

#[test]
fn double_buffering_never_increases_charged_communication() {
    let g = skewed_graph();
    let run = |db| {
        let mut cfg = DistConfig::non_cached(4);
        cfg.double_buffering = db;
        DistLcc::new(cfg).run(&g)
    };
    let with = run(true);
    let without = run(false);
    let with_comm: f64 = with.ranks.iter().map(|r| r.timing.comm_ns).sum();
    let without_comm: f64 = without.ranks.iter().map(|r| r.timing.comm_ns).sum();
    assert!(with_comm <= without_comm + 1e-3);
    let overlapped: f64 = with.ranks.iter().map(|r| r.timing.overlapped_ns).sum();
    assert!(overlapped > 0.0, "double buffering must hide some latency");
}

#[test]
fn cache_statistics_are_internally_consistent() {
    let g = skewed_graph();
    let result = DistLcc::new(DistConfig::cached(4, g.csr_size_bytes() as usize / 4)).run(&g);
    for report in &result.ranks {
        for stats in [&report.offsets_cache, &report.adjacency_cache]
            .into_iter()
            .flatten()
        {
            assert_eq!(stats.lookups(), stats.hits + stats.misses);
            assert!(stats.compulsory_misses <= stats.misses);
            assert!(
                (stats.hit_rate() + stats.miss_rate() - 1.0).abs() < 1e-9 || stats.lookups() == 0
            );
        }
    }
}
