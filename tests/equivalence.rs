//! Cross-implementation equivalence: every triangle-counting / LCC implementation in
//! the workspace (sequential reference, shared-memory kernel, asynchronous
//! distributed with and without caching, TriC baseline) must produce identical
//! counts and scores on the same graph.

use rmatc::prelude::*;
use rmatc_graph::reference;

fn assert_scores_equal(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length mismatch");
    for (v, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() < 1e-12,
            "{context}: vertex {v} differs ({x} vs {y})"
        );
    }
}

fn graphs_under_test() -> Vec<(String, CsrGraph)> {
    vec![
        (
            "rmat".to_string(),
            RmatGenerator::paper(9, 8).generate_cleaned(1).into_csr(),
        ),
        (
            "orkut-standin".to_string(),
            Dataset::Orkut.generate(DatasetScale::Tiny, 2),
        ),
        (
            "facebook-circles".to_string(),
            Dataset::FacebookCircles.generate(DatasetScale::Tiny, 3),
        ),
        (
            "directed-lj1".to_string(),
            Dataset::LiveJournal1.generate(DatasetScale::Tiny, 4),
        ),
        (
            "uniform".to_string(),
            Dataset::Uniform.generate(DatasetScale::Tiny, 5),
        ),
    ]
}

#[test]
fn local_kernel_matches_reference_on_all_graphs() {
    for (name, g) in graphs_under_test() {
        let expected = reference::lcc_scores(&g);
        for method in IntersectMethod::all() {
            let result = LocalLcc::new(LocalConfig::sequential().with_method(method)).run(&g);
            assert_eq!(
                result.triangle_count,
                reference::count_triangles(&g),
                "{name} with {method:?}"
            );
            assert_scores_equal(&result.lcc, &expected, &format!("{name} with {method:?}"));
        }
    }
}

#[test]
fn distributed_matches_reference_across_rank_counts_and_schemes() {
    for (name, g) in graphs_under_test() {
        let expected = reference::lcc_scores(&g);
        let expected_triangles = reference::count_triangles(&g);
        for ranks in [2usize, 3, 8] {
            for scheme in [PartitionScheme::Block1D, PartitionScheme::Cyclic] {
                let mut cfg = DistConfig::non_cached(ranks);
                cfg.scheme = scheme;
                let result = DistLcc::new(cfg).run(&g);
                let context = format!("{name}, {ranks} ranks, {scheme:?}");
                assert_eq!(result.triangle_count, expected_triangles, "{context}");
                assert_scores_equal(&result.lcc, &expected, &context);
            }
        }
    }
}

#[test]
fn cached_distributed_matches_reference_for_all_cache_sizes() {
    let g = Dataset::Orkut.generate(DatasetScale::Tiny, 7);
    let expected = reference::lcc_scores(&g);
    let expected_triangles = reference::count_triangles(&g);
    // From a cache too small to hold anything useful to one larger than the graph:
    // correctness must never depend on the cache configuration.
    for budget in [64usize, 4 << 10, 256 << 10, 64 << 20] {
        for mode in [ScoreMode::Lru, ScoreMode::DegreeCentrality] {
            let mut cfg = DistConfig::cached(4, budget);
            cfg.score_mode = mode;
            let result = DistLcc::new(cfg).run(&g);
            let context = format!("budget {budget}, {mode:?}");
            assert_eq!(result.triangle_count, expected_triangles, "{context}");
            assert_scores_equal(&result.lcc, &expected, &context);
        }
    }
}

#[test]
fn tric_and_async_agree_on_every_graph() {
    for (name, g) in graphs_under_test() {
        let asynchronous = DistLcc::new(DistConfig::non_cached(4)).run(&g);
        let tric = Tric::new(TricConfig::plain(4)).run(&g);
        let buffered = Tric::new(TricConfig::buffered_with(4, 128)).run(&g);
        assert_eq!(asynchronous.triangle_count, tric.triangle_count, "{name}");
        assert_eq!(tric.triangle_count, buffered.triangle_count, "{name}");
        assert_scores_equal(
            &asynchronous.lcc,
            &tric.lcc,
            &format!("{name} async vs tric"),
        );
        assert_scores_equal(
            &tric.lcc,
            &buffered.lcc,
            &format!("{name} plain vs buffered"),
        );
    }
}

#[test]
fn double_buffering_and_intersection_method_do_not_change_results() {
    let g = RmatGenerator::paper(9, 16).generate_cleaned(11).into_csr();
    let baseline = DistLcc::new(DistConfig::non_cached(4)).run(&g);
    for method in IntersectMethod::all() {
        for db in [false, true] {
            let mut cfg = DistConfig::non_cached(4);
            cfg.method = method;
            cfg.double_buffering = db;
            let result = DistLcc::new(cfg).run(&g);
            assert_eq!(result.per_vertex_triangles, baseline.per_vertex_triangles);
        }
    }
}

#[test]
fn relabeling_preserves_triangle_count_through_the_whole_pipeline() {
    let gen = RmatGenerator::paper(9, 8);
    let plain = GraphBuilder::from_generator(&gen, 5).build_csr();
    let relabeled = GraphBuilder::from_generator(&gen, 5)
        .relabel(rmatc_graph::builder::RelabelStrategy::Random { seed: 123 })
        .build_csr();
    let a = DistLcc::new(DistConfig::non_cached(4)).run(&plain);
    let b = DistLcc::new(DistConfig::non_cached(4)).run(&relabeled);
    assert_eq!(a.triangle_count, b.triangle_count);
    // The multiset of LCC scores is permutation-invariant.
    let mut sa = a.lcc.clone();
    let mut sb = b.lcc.clone();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap());
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap());
    for (x, y) in sa.iter().zip(sb.iter()) {
        assert!((x - y).abs() < 1e-12);
    }
}
