//! Cross-implementation equivalence: every triangle-counting / LCC implementation in
//! the workspace (sequential reference, shared-memory kernel, asynchronous
//! distributed with and without caching, TriC baseline) must produce identical
//! counts and scores on the same graph.

use rmatc::prelude::*;
use rmatc_graph::reference;

fn assert_scores_equal(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length mismatch");
    for (v, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() < 1e-12,
            "{context}: vertex {v} differs ({x} vs {y})"
        );
    }
}

fn graphs_under_test() -> Vec<(String, CsrGraph)> {
    vec![
        (
            "rmat".to_string(),
            RmatGenerator::paper(9, 8).generate_cleaned(1).into_csr(),
        ),
        (
            "orkut-standin".to_string(),
            Dataset::Orkut.generate(DatasetScale::Tiny, 2),
        ),
        (
            "facebook-circles".to_string(),
            Dataset::FacebookCircles.generate(DatasetScale::Tiny, 3),
        ),
        (
            "directed-lj1".to_string(),
            Dataset::LiveJournal1.generate(DatasetScale::Tiny, 4),
        ),
        (
            "uniform".to_string(),
            Dataset::Uniform.generate(DatasetScale::Tiny, 5),
        ),
    ]
}

#[test]
fn local_kernel_matches_reference_on_all_graphs() {
    for (name, g) in graphs_under_test() {
        let expected = reference::lcc_scores(&g);
        for method in IntersectMethod::all() {
            let result = LocalLcc::new(LocalConfig::sequential().with_method(method)).run(&g);
            assert_eq!(
                result.triangle_count,
                reference::count_triangles(&g),
                "{name} with {method:?}"
            );
            assert_scores_equal(&result.lcc, &expected, &format!("{name} with {method:?}"));
        }
    }
}

#[test]
fn distributed_matches_reference_across_rank_counts_and_schemes() {
    for (name, g) in graphs_under_test() {
        let expected = reference::lcc_scores(&g);
        let expected_triangles = reference::count_triangles(&g);
        for ranks in [2usize, 3, 8] {
            for scheme in [PartitionScheme::Block1D, PartitionScheme::Cyclic] {
                let mut cfg = DistConfig::non_cached(ranks);
                cfg.scheme = scheme;
                let result = DistLcc::new(cfg).run(&g);
                let context = format!("{name}, {ranks} ranks, {scheme:?}");
                assert_eq!(result.triangle_count, expected_triangles, "{context}");
                assert_scores_equal(&result.lcc, &expected, &context);
            }
        }
    }
}

#[test]
fn cached_distributed_matches_reference_for_all_cache_sizes() {
    let g = Dataset::Orkut.generate(DatasetScale::Tiny, 7);
    let expected = reference::lcc_scores(&g);
    let expected_triangles = reference::count_triangles(&g);
    // From a cache too small to hold anything useful to one larger than the graph:
    // correctness must never depend on the cache configuration.
    for budget in [64usize, 4 << 10, 256 << 10, 64 << 20] {
        for mode in [ScoreMode::Lru, ScoreMode::DegreeCentrality] {
            let mut cfg = DistConfig::cached(4, budget);
            cfg.score_mode = mode;
            let result = DistLcc::new(cfg).run(&g);
            let context = format!("budget {budget}, {mode:?}");
            assert_eq!(result.triangle_count, expected_triangles, "{context}");
            assert_scores_equal(&result.lcc, &expected, &context);
        }
    }
}

#[test]
fn tric_and_async_agree_on_every_graph() {
    for (name, g) in graphs_under_test() {
        let asynchronous = DistLcc::new(DistConfig::non_cached(4)).run(&g);
        let tric = Tric::new(TricConfig::plain(4)).run(&g);
        let buffered = Tric::new(TricConfig::buffered_with(4, 128)).run(&g);
        assert_eq!(asynchronous.triangle_count, tric.triangle_count, "{name}");
        assert_eq!(tric.triangle_count, buffered.triangle_count, "{name}");
        assert_scores_equal(
            &asynchronous.lcc,
            &tric.lcc,
            &format!("{name} async vs tric"),
        );
        assert_scores_equal(
            &tric.lcc,
            &buffered.lcc,
            &format!("{name} plain vs buffered"),
        );
    }
}

#[test]
fn double_buffering_and_intersection_method_do_not_change_results() {
    let g = RmatGenerator::paper(9, 16).generate_cleaned(11).into_csr();
    let baseline = DistLcc::new(DistConfig::non_cached(4)).run(&g);
    for method in IntersectMethod::all() {
        for db in [false, true] {
            let mut cfg = DistConfig::non_cached(4);
            cfg.method = method;
            cfg.double_buffering = db;
            let result = DistLcc::new(cfg).run(&g);
            assert_eq!(result.per_vertex_triangles, baseline.per_vertex_triangles);
        }
    }
}

// ---------------------------------------------------------------------------
// Differential layer: the overlapped worker (pipeline depth ≥ 2 and/or
// intra-rank threads ≥ 2) against the sequential worker, over random R-MAT
// graphs × pipeline depths × thread counts × cache policies.
//
// Equivalence tiers (see `crates/core/src/distributed/pipeline.rs`):
//
// * Always: scores (triangles, LCC, Jaccard) are bit-identical, and per-rank
//   cache lookup totals (hits + misses), edge counts and — for non-cached
//   configurations — get/byte counters match exactly, because each is
//   per-edge deterministic however the overlapped loop interleaves.
// * One thread, shared windows: the *full* cache statistics and every
//   integer RMA counter are bit-identical — cache operations happen at issue
//   time in exactly the sequential order. (Hit/miss splits of cached runs
//   are only comparable over the same windows: the slot hash keys on the
//   window id, which `GraphWindows::build` allocates afresh per run.)
// ---------------------------------------------------------------------------

mod differential {
    use super::*;
    use proptest::prelude::*;
    use rmatc::clampi::{CacheStats, EvictionPolicyKind};
    use rmatc::core::distributed::windows::GraphWindows;
    use rmatc::core::distributed::worker::run_worker;
    use rmatc::core::CacheSpec;

    /// `None` → non-cached; `Some` → the paper's cache under the given
    /// eviction-policy family and score mode.
    fn arb_cache() -> impl Strategy<Value = Option<(EvictionPolicyKind, ScoreMode)>> {
        (0usize..5, any::<bool>()).prop_map(|(policy, degree_scores)| {
            let mode = if degree_scores {
                ScoreMode::DegreeCentrality
            } else {
                ScoreMode::Lru
            };
            match policy {
                0 => None,
                1 => Some((EvictionPolicyKind::PaperScore, mode)),
                2 => Some((EvictionPolicyKind::Lru, mode)),
                3 => Some((EvictionPolicyKind::Lfu, mode)),
                _ => Some((EvictionPolicyKind::Gdsf, mode)),
            }
        })
    }

    fn config_for(
        ranks: usize,
        cache: Option<(EvictionPolicyKind, ScoreMode)>,
        budget: usize,
    ) -> DistConfig {
        let mut cfg = DistConfig::non_cached(ranks);
        if let Some((policy, mode)) = cache {
            cfg.cache = Some(CacheSpec::paper(budget).with_policy(policy));
            cfg.score_mode = mode;
        }
        cfg
    }

    fn lookups(stats: &Option<CacheStats>) -> u64 {
        stats.as_ref().map(|s| s.lookups()).unwrap_or(0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Public-API tier: any depth × thread count × cache policy produces
        /// bit-identical scores and per-edge-deterministic counters.
        #[test]
        fn overlapped_lcc_matches_sequential_on_random_graphs(
            (seed, scale, edge_factor) in (any::<u64>(), 5u32..8, 4u32..10),
            ranks in 2usize..4,
            (depth, threads) in (2usize..10, 1usize..5),
            cache in arb_cache(),
        ) {
            let g = RmatGenerator::paper(scale, edge_factor)
                .generate_cleaned(seed)
                .into_csr();
            let cfg = config_for(ranks, cache, 64 << 10);
            let sequential = DistLcc::new(cfg).run(&g);
            let overlapped = DistLcc::new(
                cfg.with_pipeline_depth(depth).with_intra_threads(threads),
            )
            .run(&g);
            prop_assert_eq!(overlapped.triangle_count, sequential.triangle_count);
            prop_assert_eq!(
                &overlapped.per_vertex_triangles,
                &sequential.per_vertex_triangles
            );
            // LCC divides identical integers — bit-identical f64.
            prop_assert_eq!(&overlapped.lcc, &sequential.lcc);
            for (a, b) in overlapped.ranks.iter().zip(sequential.ranks.iter()) {
                prop_assert_eq!(a.edges_processed, b.edges_processed);
                prop_assert_eq!(a.remote_edges, b.remote_edges);
                // Exactly one lookup per remote non-empty row read: the
                // hit + miss total is deterministic however gets overlap.
                prop_assert_eq!(
                    lookups(&a.adjacency_cache),
                    lookups(&b.adjacency_cache)
                );
                prop_assert_eq!(lookups(&a.offsets_cache), lookups(&b.offsets_cache));
                if cache.is_none() {
                    // Non-cached: every remote read goes to the wire, so the
                    // get/byte counters are per-edge deterministic too.
                    prop_assert_eq!(a.rma.gets, b.rma.gets);
                    prop_assert_eq!(a.rma.bytes, b.rma.bytes);
                    prop_assert_eq!(&a.rma.gets_per_target, &b.rma.gets_per_target);
                    prop_assert_eq!(&a.rma.bytes_per_target, &b.rma.bytes_per_target);
                }
            }
        }

        /// Strong tier: one thread over shared windows — full cache statistics
        /// and every integer RMA counter are bit-identical at any depth.
        #[test]
        fn single_thread_pipelining_is_bit_identical_per_rank(
            seed in any::<u64>(),
            depth in 2usize..12,
            cache in arb_cache(),
        ) {
            let g = RmatGenerator::paper(6, 8).generate_cleaned(seed).into_csr();
            let cfg = config_for(2, cache, 32 << 10);
            let pg = PartitionedGraph::from_global(&g, cfg.scheme, cfg.ranks).unwrap();
            let windows = GraphWindows::build(&pg);
            for rank in 0..cfg.ranks {
                let seq = run_worker(rank, &pg, &windows, &cfg).unwrap();
                let pip = run_worker(rank, &pg, &windows, &cfg.with_pipeline_depth(depth)).unwrap();
                prop_assert_eq!(&pip.local_triangles, &seq.local_triangles);
                prop_assert_eq!(&pip.offsets_cache, &seq.offsets_cache);
                prop_assert_eq!(&pip.adjacency_cache, &seq.adjacency_cache);
                prop_assert_eq!(pip.edges_processed, seq.edges_processed);
                prop_assert_eq!(pip.remote_edges, seq.remote_edges);
                prop_assert_eq!(pip.rma.gets, seq.rma.gets);
                prop_assert_eq!(pip.rma.bytes, seq.rma.bytes);
                prop_assert_eq!(pip.rma.flushes, seq.rma.flushes);
                prop_assert_eq!(pip.rma.local_reads, seq.rma.local_reads);
                prop_assert_eq!(&pip.rma.gets_per_target, &seq.rma.gets_per_target);
                prop_assert_eq!(&pip.rma.bytes_per_target, &seq.rma.bytes_per_target);
            }
        }

        /// The Jaccard worker shares the pipeline machinery: its per-edge
        /// similarities must be bit-identical under any overlap setting.
        #[test]
        fn overlapped_jaccard_matches_sequential_on_random_graphs(
            seed in any::<u64>(),
            depth in 2usize..10,
            threads in 1usize..5,
        ) {
            let g = RmatGenerator::paper(6, 8).generate_cleaned(seed).into_csr();
            let cfg = DistConfig::non_cached(3);
            let sequential = DistJaccard::new(cfg).run(&g);
            let overlapped = DistJaccard::new(
                cfg.with_pipeline_depth(depth).with_intra_threads(threads),
            )
            .run(&g);
            prop_assert_eq!(&overlapped.edges, &sequential.edges);
            let gets = |r: &JaccardResult| r.rank_stats.iter().map(|s| s.gets).sum::<u64>();
            prop_assert_eq!(gets(&overlapped), gets(&sequential));
        }
    }
}

#[test]
fn relabeling_preserves_triangle_count_through_the_whole_pipeline() {
    let gen = RmatGenerator::paper(9, 8);
    let plain = GraphBuilder::from_generator(&gen, 5).build_csr();
    let relabeled = GraphBuilder::from_generator(&gen, 5)
        .relabel(rmatc_graph::builder::RelabelStrategy::Random { seed: 123 })
        .build_csr();
    let a = DistLcc::new(DistConfig::non_cached(4)).run(&plain);
    let b = DistLcc::new(DistConfig::non_cached(4)).run(&relabeled);
    assert_eq!(a.triangle_count, b.triangle_count);
    // The multiset of LCC scores is permutation-invariant.
    let mut sa = a.lcc.clone();
    let mut sb = b.lcc.clone();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap());
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap());
    for (x, y) in sa.iter().zip(sb.iter()) {
        assert!((x - y).abs() < 1e-12);
    }
}
