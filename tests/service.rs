//! Differential + admission test layer of the resident query service
//! ([`rmatc_core::service`]).
//!
//! The contract under test: every service answer is **bit-identical** to the
//! batch pipelines ([`DistJaccard`] / [`DistLcc`]) that the equivalence and
//! chaos suites already hold to the reference — across storage modes,
//! eviction policies and batch sizes — and the admission counters obey the
//! conservation identities (`submitted = accepted + shed + rejected`,
//! `accepted = completed + failed + queued`): no query is ever silently
//! dropped, and a full queue rejects immediately instead of blocking.

use proptest::prelude::*;
use rmatc::prelude::*;
use rmatc_clampi::EvictionPolicyKind;
use rmatc_core::jaccard::{similarity_order, top_k_edges, EdgeSimilarity};
use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
use rmatc_graph::types::{Direction, VertexId};
use std::collections::HashMap;

// ---------------------------------------------------------------------------
// Baselines: the batch pipelines the service must agree with bit-for-bit.
// ---------------------------------------------------------------------------

type EdgeMap = HashMap<(VertexId, VertexId), EdgeSimilarity>;

/// Per-edge similarity records and per-vertex LCC scores from the (plain,
/// uncached) batch pipelines. Storage mode and caching provably do not change
/// batch answers, so one baseline serves every matrix cell.
fn baselines(g: &CsrGraph, ranks: usize) -> (EdgeMap, Vec<f64>) {
    let jr = DistJaccard::new(DistConfig::non_cached(ranks)).run(g);
    let map = jr
        .edges
        .iter()
        .map(|e| ((e.source, e.destination), *e))
        .collect();
    let lcc = DistLcc::new(DistConfig::non_cached(ranks)).run(g).lcc;
    (map, lcc)
}

/// The batch-pipeline answer to one service query.
fn expected_answer(query: Query, map: &EdgeMap, lcc: &[f64]) -> QueryAnswer {
    match query {
        Query::CommonNeighbors { u, v } => {
            QueryAnswer::CommonNeighbors(map[&(u, v)].common_neighbours)
        }
        Query::Jaccard { u, v } => QueryAnswer::Jaccard(map[&(u, v)]),
        Query::TopK { u, k } => {
            let mut edges: Vec<EdgeSimilarity> =
                map.values().filter(|e| e.source == u).copied().collect();
            edges.sort_by(similarity_order);
            QueryAnswer::TopK(top_k_edges(&edges, k))
        }
        Query::LccOf { v } => QueryAnswer::Lcc(lcc[v as usize]),
    }
}

/// Deterministic xorshift64* stream, the workspace's bench idiom.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// A deterministic mixed query stream over the graph's edges and vertices.
fn fixed_query_mix(g: &CsrGraph, count: usize) -> Vec<Query> {
    let n = g.vertex_count() as u64;
    let adj = g.adjacencies();
    let mut state = 0x1234_5678_9abc_def1u64;
    let mut queries = Vec::with_capacity(count);
    while queries.len() < count {
        // An adjacency position names a (source row, destination) edge, so
        // hubs are drawn in proportion to degree — the hot-row pattern the
        // batch planner's dedup exists for.
        let pos = xorshift(&mut state) % adj.len() as u64;
        let u = (g.offsets().partition_point(|&o| o <= pos) - 1) as VertexId;
        let v = adj[pos as usize];
        let q = match xorshift(&mut state) % 4 {
            0 => Query::CommonNeighbors { u, v },
            1 => Query::Jaccard { u, v },
            2 => Query::TopK {
                u,
                k: (xorshift(&mut state) % 8) as usize,
            },
            _ => Query::LccOf {
                v: (xorshift(&mut state) % n) as VertexId,
            },
        };
        queries.push(q);
    }
    queries
}

/// Runs one matrix cell: a resident engine answers `queries`, and every
/// answer must equal the batch baseline exactly. Also checks the counter
/// conservation identities and the cache-stats lookup identity.
fn run_matrix_cell(
    g: &CsrGraph,
    dist: DistConfig,
    batch_size: usize,
    queries: &[Query],
    map: &EdgeMap,
    lcc: &[f64],
    label: &str,
) {
    let cfg = ServiceConfig::new(dist)
        .with_batch_size(batch_size)
        .with_queue_capacity(queries.len().max(1));
    let mut engine = QueryEngine::new(g, cfg);
    let mut ids = Vec::with_capacity(queries.len());
    for &q in queries {
        ids.push(engine.submit(q).expect("capacity covers the stream"));
    }
    let responses = engine.drain();
    assert_eq!(responses.len(), queries.len(), "{label}");
    for ((resp, &q), id) in responses.iter().zip(queries).zip(ids) {
        assert_eq!(
            resp.id, id,
            "{label}: responses come back in admission order"
        );
        assert_eq!(resp.query, q, "{label}");
        let got = resp.result.as_ref().expect("fault-free queries succeed");
        assert_eq!(got, &expected_answer(q, map, lcc), "{label}: query {q:?}");
    }
    let stats = engine.stats();
    assert!(stats.reconciles(), "{label}: {stats:?}");
    assert_eq!(stats.completed, queries.len() as u64, "{label}");
    assert!(stats.dedup_ratio() >= 1.0, "{label}");
    assert!(stats.unique_row_reads <= stats.row_reads, "{label}");
    for cache in [&stats.offsets_cache, &stats.adjacency_cache]
        .into_iter()
        .flatten()
    {
        assert_eq!(cache.hits + cache.misses, cache.lookups(), "{label}");
    }
}

// ---------------------------------------------------------------------------
// Pinned differential matrix: storage × eviction policy × batch size.
// ---------------------------------------------------------------------------

#[test]
fn service_answers_match_batch_pipelines_across_matrix() {
    let g = RmatGenerator::paper(7, 8).generate_cleaned(77).into_csr();
    let ranks = 3;
    let (map, lcc) = baselines(&g, ranks);
    let queries = fixed_query_mix(&g, 160);
    // Half the CSR footprint, so eviction policies actually evict.
    let cache_bytes = (g.csr_size_bytes() as usize / 2).max(1024);
    for storage in [GraphStorage::Plain, GraphStorage::Compressed] {
        for policy in EvictionPolicyKind::ALL {
            for batch_size in [1usize, 3, 16] {
                let dist = DistConfig::cached(ranks, cache_bytes)
                    .with_degree_scores()
                    .with_eviction_policy(policy)
                    .with_storage(storage);
                let label = format!("{storage:?}/{policy:?}/batch{batch_size}");
                run_matrix_cell(&g, dist, batch_size, &queries, &map, &lcc, &label);
            }
        }
        // The uncached cell: dedup still holds within a batch window.
        let dist = DistConfig::non_cached(ranks).with_storage(storage);
        let label = format!("{storage:?}/uncached/batch8");
        run_matrix_cell(&g, dist, 8, &queries, &map, &lcc, &label);
    }
}

#[test]
fn warm_cache_serves_repeated_batches_from_hits() {
    let g = RmatGenerator::paper(7, 8).generate_cleaned(77).into_csr();
    let dist = DistConfig::cached(4, g.csr_size_bytes() as usize).with_degree_scores();
    let mut engine = QueryEngine::new(&g, ServiceConfig::new(dist).with_batch_size(32));
    let queries = fixed_query_mix(&g, 64);
    for &q in &queries {
        engine.submit(q).unwrap();
    }
    engine.drain();
    let cold = engine.stats();
    // Replay the same stream through the *same* resident engine: every remote
    // row is already cached, so no new network bytes move.
    for &q in &queries {
        engine.submit(q).unwrap();
    }
    engine.drain();
    let warm = engine.stats();
    let cold_cache = cold.adjacency_cache.as_ref().unwrap();
    let warm_cache = warm.adjacency_cache.as_ref().unwrap();
    assert!(warm_cache.hits > cold_cache.hits, "warm replay must hit");
    assert_eq!(
        warm_cache.bytes_from_network, cold_cache.bytes_from_network,
        "a fully warm replay fetches nothing"
    );
    assert!(warm.reconciles());
}

// ---------------------------------------------------------------------------
// Random differential mixes (proptest): arbitrary graphs, arbitrary streams.
// ---------------------------------------------------------------------------

/// Strategy: a random undirected graph as (vertex count, edge list) — the
/// same shape `tests/properties.rs` uses.
fn arb_undirected_graph() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (4usize..28).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..140);
        (Just(n), edges)
    })
}

fn build_csr(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
    let mut el = EdgeList::from_edges(n, edges.to_vec(), Direction::Undirected).unwrap();
    el.remove_self_loops();
    el.symmetrize();
    el.into_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn service_matches_batch_on_random_mixes(
        (n, edges) in arb_undirected_graph(),
        ranks in 1usize..5,
        compressed in any::<bool>(),
        cached in any::<bool>(),
        policy_idx in 0usize..4,
        batch_size in 1usize..=9,
        picks in prop::collection::vec((any::<prop::sample::Index>(), 0u8..4, 0usize..8), 1..40),
    ) {
        let g = build_csr(n, &edges);
        if g.vertex_count() == 0 {
            return Ok(());
        }
        let ranks = ranks.min(g.vertex_count());
        let (map, lcc) = baselines(&g, ranks);
        let mut directed_edges: Vec<(VertexId, VertexId)> = map.keys().copied().collect();
        directed_edges.sort_unstable();
        let queries: Vec<Query> = picks
            .iter()
            .map(|&(idx, kind, k)| match kind {
                0 | 1 if !directed_edges.is_empty() => {
                    let (u, v) = directed_edges[idx.index(directed_edges.len())];
                    if kind == 0 {
                        Query::CommonNeighbors { u, v }
                    } else {
                        Query::Jaccard { u, v }
                    }
                }
                2 => Query::TopK {
                    u: idx.index(g.vertex_count()) as VertexId,
                    k,
                },
                _ => Query::LccOf {
                    v: idx.index(g.vertex_count()) as VertexId,
                },
            })
            .collect();
        let storage = if compressed { GraphStorage::Compressed } else { GraphStorage::Plain };
        let dist = if cached {
            DistConfig::cached(ranks, (g.csr_size_bytes() as usize / 2).max(512))
                .with_degree_scores()
                .with_eviction_policy(EvictionPolicyKind::ALL[policy_idx])
                .with_storage(storage)
        } else {
            DistConfig::non_cached(ranks).with_storage(storage)
        };
        let cfg = ServiceConfig::new(dist)
            .with_batch_size(batch_size)
            .with_queue_capacity(queries.len());
        let mut engine = QueryEngine::new(&g, cfg);
        for &q in &queries {
            engine.submit(q).unwrap();
        }
        for (resp, &q) in engine.drain().iter().zip(&queries) {
            let got = resp.result.as_ref().expect("fault-free queries succeed");
            prop_assert_eq!(got, &expected_answer(q, &map, &lcc), "query {:?}", q);
        }
        let stats = engine.stats();
        prop_assert!(stats.reconciles(), "{:?}", stats);
        prop_assert_eq!(stats.completed, queries.len() as u64);
        for cache in [&stats.offsets_cache, &stats.adjacency_cache].into_iter().flatten() {
            prop_assert_eq!(cache.hits + cache.misses, cache.lookups());
        }
    }
}

// ---------------------------------------------------------------------------
// Top-k tie-breaking: deterministic across thread counts and storage modes.
// ---------------------------------------------------------------------------

#[test]
fn top_k_orders_equal_scores_by_vertex_ids() {
    let mk = |source, destination| EdgeSimilarity {
        source,
        destination,
        common_neighbours: 1,
        jaccard: 0.5,
    };
    // Shuffled input, all scores equal: the order must come from the ids.
    let edges = vec![mk(3, 1), mk(1, 2), mk(2, 0), mk(1, 0), mk(2, 5)];
    assert_eq!(top_k_edges(&edges, 3), vec![mk(1, 0), mk(1, 2), mk(2, 0)]);
    // A higher score still wins over any id.
    let mut with_winner = edges.clone();
    with_winner.push(EdgeSimilarity {
        source: 9,
        destination: 9,
        common_neighbours: 3,
        jaccard: 0.75,
    });
    assert_eq!(top_k_edges(&with_winner, 1)[0].source, 9);
    // k beyond the input returns everything, fully ordered.
    let all = top_k_edges(&edges, 10);
    assert_eq!(all.len(), edges.len());
    assert!(all
        .windows(2)
        .all(|w| similarity_order(&w[0], &w[1]) != std::cmp::Ordering::Greater));
}

#[test]
fn top_k_is_identical_across_thread_counts_and_storage() {
    // A clique: every edge has the same score, so top-k is pure tie-break.
    let n = 12u32;
    let edges: Vec<(u32, u32)> = (0..n)
        .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
        .collect();
    let g = build_csr(n as usize, &edges);
    let mut reference: Option<Vec<EdgeSimilarity>> = None;
    for threads in [1usize, 4] {
        for storage in [GraphStorage::Plain, GraphStorage::Compressed] {
            let cfg = DistConfig::non_cached(3)
                .with_intra_threads(threads)
                .with_storage(storage);
            let top = DistJaccard::new(cfg).run(&g).top_k(10);
            assert_eq!(top.len(), 10);
            // With all scores equal, the order is exactly ascending ids.
            let ids: Vec<(u32, u32)> = top.iter().map(|e| (e.source, e.destination)).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "threads={threads} storage={storage:?}");
            match &reference {
                None => reference = Some(top),
                Some(r) => assert_eq!(r, &top, "threads={threads} storage={storage:?}"),
            }
        }
    }
    // The service's TopK answer obeys the same order.
    let mut engine = QueryEngine::new(&g, ServiceConfig::new(DistConfig::non_cached(3)));
    let answer = engine.oneshot(Query::TopK { u: 0, k: 5 }).unwrap();
    let QueryAnswer::TopK(top) = answer else {
        panic!("TopK query answers TopK");
    };
    let ids: Vec<(u32, u32)> = top.iter().map(|e| (e.source, e.destination)).collect();
    assert_eq!(ids, vec![(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
}

// ---------------------------------------------------------------------------
// Backpressure and admission control.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random interleavings of submits (some naming unknown vertices) and
    /// batch executions: the conservation identities hold after every step,
    /// shed queries see the exact queue state, and draining leaves nothing
    /// unaccounted for.
    #[test]
    fn admission_counters_always_reconcile(
        ops in prop::collection::vec((any::<bool>(), any::<prop::sample::Index>()), 1..120),
        capacity in 1usize..8,
        batch_size in 1usize..4,
    ) {
        let g = RmatGenerator::paper(5, 8).generate_cleaned(9).into_csr();
        let cfg = ServiceConfig::new(DistConfig::non_cached(2))
            .with_queue_capacity(capacity)
            .with_batch_size(batch_size);
        let mut engine = QueryEngine::new(&g, cfg);
        let n = engine.partitioned_graph().global_vertex_count();
        for (do_submit, idx) in ops {
            if do_submit {
                // Over-range draws exercise the UnknownVertex rejection.
                let v = idx.index(n + n / 2 + 1) as VertexId;
                let depth_before = engine.queue_depth();
                match engine.submit(Query::LccOf { v }) {
                    Ok(_) => {
                        prop_assert!((v as usize) < n);
                        prop_assert_eq!(engine.queue_depth(), depth_before + 1);
                    }
                    Err(ServiceError::UnknownVertex { vertex, vertex_count }) => {
                        prop_assert_eq!(vertex, v);
                        prop_assert_eq!(vertex_count, n);
                        prop_assert_eq!(engine.queue_depth(), depth_before);
                    }
                    Err(ServiceError::Overloaded { queue_depth, capacity: cap }) => {
                        prop_assert_eq!(queue_depth, capacity);
                        prop_assert_eq!(cap, capacity);
                        prop_assert_eq!(engine.queue_depth(), capacity);
                    }
                    Err(e) => prop_assert!(false, "unexpected admission error {}", e),
                }
            } else {
                engine.run_batch();
            }
            let stats = engine.stats();
            prop_assert!(stats.reconciles(), "{:?}", stats);
        }
        engine.drain();
        let stats = engine.stats();
        prop_assert!(stats.reconciles(), "{:?}", stats);
        prop_assert_eq!(stats.queue_depth, 0);
        prop_assert_eq!(stats.accepted, stats.completed + stats.failed);
    }
}

#[test]
fn full_queue_rejects_immediately_and_deadlines_expire() {
    let g = RmatGenerator::paper(7, 8).generate_cleaned(77).into_csr();
    let cfg = ServiceConfig::new(DistConfig::non_cached(4))
        .with_queue_capacity(2)
        .with_batch_size(1);
    let mut engine = QueryEngine::new(&g, cfg);
    // A query whose home row has at least one remote neighbour, so executing
    // it must spend virtual communication time.
    let pg = engine.partitioned_graph();
    let remote_query = (0..pg.global_vertex_count() as VertexId)
        .find(|&v| {
            let owner = pg.partitioner.owner(v);
            pg.partitions[owner]
                .neighbours_of_local(pg.partitioner.local_index(v))
                .iter()
                .any(|&w| pg.partitioner.owner(w) != owner)
        })
        .map(|v| Query::LccOf { v })
        .expect("a 4-rank partition of this graph has remote edges");

    // Load shedding: the third submit against a 2-deep queue is rejected
    // synchronously with the exact queue state — it never blocks.
    engine.submit(remote_query).unwrap();
    engine.submit(remote_query).unwrap();
    let err = engine.submit(remote_query).unwrap_err();
    assert_eq!(
        err,
        ServiceError::Overloaded {
            queue_depth: 2,
            capacity: 2,
        }
    );
    engine.drain();
    assert!(
        engine.virtual_now_ns() > 0.0,
        "remote reads advance the virtual clock"
    );

    // Deadline expiry: a query with a zero deadline sitting behind another
    // query expires once the head's execution advances the virtual clock.
    engine.submit(remote_query).unwrap();
    let late = engine
        .submit_with_deadline(remote_query, Some(0.0))
        .unwrap();
    let first = engine.run_batch();
    assert_eq!(first.len(), 1);
    assert!(first[0].result.is_ok());
    let second = engine.run_batch();
    assert_eq!(second.len(), 1);
    assert_eq!(second[0].id, late);
    match &second[0].result {
        Err(ServiceError::DeadlineExceeded {
            waited_ns,
            deadline_ns,
        }) => {
            assert!(*waited_ns > 0.0);
            assert_eq!(*deadline_ns, 0.0);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let stats = engine.stats();
    assert!(stats.reconciles(), "{stats:?}");
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.shed_overload, 1);
}

// ---------------------------------------------------------------------------
// Soak: one resident engine under a long deterministic stream (the CI leg).
// ---------------------------------------------------------------------------

#[test]
fn resident_engine_soak() {
    let total: usize = std::env::var("RMATC_SOAK_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1200);
    let g = RmatGenerator::paper(8, 8).generate_cleaned(5).into_csr();
    let ranks = 4;
    let (map, lcc) = baselines(&g, ranks);
    let dist =
        DistConfig::cached(ranks, (g.csr_size_bytes() as usize / 2).max(1024)).with_degree_scores();
    let cfg = ServiceConfig::new(dist)
        .with_batch_size(32)
        .with_queue_capacity(64);
    let mut engine = QueryEngine::new(&g, cfg);
    let queries = fixed_query_mix(&g, total);
    let mut answered = 0usize;
    let mut mid_hits = 0u64;
    for chunk in queries.chunks(32) {
        for &q in chunk {
            engine.submit(q).expect("chunks stay within capacity");
        }
        for resp in engine.drain() {
            let got = resp.result.as_ref().expect("fault-free queries succeed");
            assert_eq!(got, &expected_answer(resp.query, &map, &lcc));
            answered += 1;
        }
        if answered >= total / 2 && mid_hits == 0 {
            mid_hits = engine.stats().adjacency_cache.as_ref().unwrap().hits;
        }
    }
    assert_eq!(answered, total);
    let stats = engine.stats();
    assert!(stats.reconciles(), "{stats:?}");
    assert_eq!(stats.completed, total as u64);
    assert_eq!(stats.queue_depth, 0);
    assert!(stats.dedup_ratio() >= 1.0);
    let cache = stats.adjacency_cache.as_ref().unwrap();
    assert_eq!(cache.hits + cache.misses, cache.lookups());
    assert!(
        cache.hits > mid_hits,
        "the resident cache keeps accruing hits through the stream"
    );
    // Percentile sanity in both timebases.
    for lat in [&stats.wall_latency, &stats.virtual_latency] {
        assert!(lat.p50_ns <= lat.p90_ns);
        assert!(lat.p90_ns <= lat.p99_ns);
        assert!(lat.p99_ns <= lat.max_ns);
    }
    assert!(stats.virtual_latency.max_ns > 0.0);
}
