//! Reproduction of **TriC** (Ghosh & Halappanavar, HPEC'20) — the 2020 Graph
//! Challenge champion the paper compares against — plus the *TriC Buffered* variant
//! the authors had to use when TriC ran out of memory on scale-free graphs.
//!
//! TriC counts triangles per vertex with a *query–response* scheme: for every owned
//! vertex `i` and every pair of its neighbours `(j, k)`, the edge `(j, k)` either can
//! be checked locally (if `j` is owned) or must be asked of `j`'s owner. Queries are
//! exchanged with blocking all-to-all collectives, which synchronizes all ranks every
//! round — the synchronization overhead the paper identifies as TriC's main
//! scalability limit. The buffered variant caps the per-destination buffer (the paper
//! uses 16 MiB) and loops over multiple exchange rounds, trading memory for even more
//! synchronization.
//!
//! The reproduction runs every rank as a thread over the same
//! [`rmatc_rma::NetworkModel`] used by the asynchronous algorithm, so the comparison
//! in Figures 9 and 10 charges both systems identically: per-destination message
//! costs `α + β·s`, a logarithmic barrier cost per round, and real barrier waiting
//! time caused by load imbalance.

//! # Paper map
//!
//! | Module | Paper location | What it reproduces |
//! |---|---|---|
//! | [`runner`] | §II-D, Figs. 9–10 | The query–response rounds of TriC and TriC Buffered |
//! | [`exchange`] | §II-D | Blocking all-to-all exchanges with modeled message + barrier costs |
//! | [`config`] | §IV-B | Rank count, buffered-mode cap (the paper's 16 MiB), network model |
//! | [`report`] | Figs. 9–10 | Per-rank timing/communication totals compared against the async runner |

pub mod config;
pub mod exchange;
pub mod report;
pub mod runner;

pub use config::TricConfig;
pub use report::{TricRankReport, TricResult};
pub use runner::Tric;
