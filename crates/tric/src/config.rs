//! TriC configuration.

use rmatc_graph::partition::PartitionScheme;
use rmatc_rma::{FaultPlan, NetworkModel};

/// Configuration of a TriC run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TricConfig {
    /// Number of ranks.
    pub ranks: usize,
    /// Vertex partitioning scheme. The paper runs TriC with its `-b` balancing flag;
    /// the cyclic scheme is the closest equivalent in this workspace and is used for
    /// the Figure 9/10 comparisons.
    pub scheme: PartitionScheme,
    /// Network cost model (shared with the asynchronous implementation).
    pub network: NetworkModel,
    /// Maximum number of queries buffered per destination per exchange round;
    /// `None` reproduces plain TriC (unbounded buffers, single exchange round),
    /// `Some(b)` reproduces TriC Buffered.
    pub buffer_entries: Option<usize>,
    /// Deterministic fault injection. TriC's collectives are reliable-completion
    /// (a blocking all-to-all either finishes or the job aborts), so only
    /// straggler delays apply: a delayed exchange multiplies that rank's modeled
    /// collective cost — and, through the bulk-synchronous barrier, stretches
    /// everyone's wait. `None` (the default) runs fault-free.
    pub faults: Option<FaultPlan>,
}

impl TricConfig {
    /// Plain TriC over `ranks` ranks.
    pub fn plain(ranks: usize) -> Self {
        Self {
            ranks,
            scheme: PartitionScheme::Cyclic,
            network: NetworkModel::aries(),
            buffer_entries: None,
            faults: None,
        }
    }

    /// TriC Buffered with the paper's 16 MiB per-destination cap. A query is a
    /// `(j, k, origin)` triple of 12 bytes, so 16 MiB holds ~1.4 M queries.
    pub fn buffered(ranks: usize) -> Self {
        Self {
            buffer_entries: Some((16 << 20) / 12),
            ..Self::plain(ranks)
        }
    }

    /// Buffered with an explicit per-destination entry cap (used by tests).
    pub fn buffered_with(ranks: usize, buffer_entries: usize) -> Self {
        Self {
            buffer_entries: Some(buffer_entries.max(1)),
            ..Self::plain(ranks)
        }
    }

    /// Enables deterministic straggler injection per `plan` (chaos testing).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_has_unbounded_buffers() {
        assert_eq!(TricConfig::plain(8).buffer_entries, None);
    }

    #[test]
    fn buffered_uses_the_16_mib_cap() {
        let c = TricConfig::buffered(4);
        assert_eq!(c.buffer_entries, Some((16 << 20) / 12));
    }

    #[test]
    fn explicit_buffer_is_clamped_to_at_least_one() {
        assert_eq!(TricConfig::buffered_with(2, 0).buffer_entries, Some(1));
    }

    #[test]
    fn faults_are_opt_in() {
        assert_eq!(TricConfig::plain(4).faults, None);
        let c = TricConfig::plain(4).with_faults(FaultPlan::light(3));
        assert_eq!(c.faults, Some(FaultPlan::light(3)));
    }
}
