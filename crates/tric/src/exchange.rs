//! Bulk-synchronous all-to-all exchange substrate used by TriC.
//!
//! Each rank posts per-destination vectors into a shared mailbox matrix and then
//! waits at a barrier, which is exactly the synchronization pattern of a blocking
//! `MPI_Alltoallv`. The modeled cost charged to a rank for one exchange is
//! `Σ_dest (α + β·bytes_sent_to_dest)` plus the barrier cost; the real time spent
//! waiting at the barrier (load imbalance) is measured separately by the caller.

use parking_lot::Mutex;
use rmatc_rma::{NetworkModel, SimBarrier};

/// A mailbox matrix: `boxes[dest][src]` holds what `src` sent to `dest` in the
/// current exchange round.
#[derive(Debug)]
pub struct Mailboxes<T> {
    boxes: Vec<Vec<Mutex<Vec<T>>>>,
    barrier: SimBarrier,
    network: NetworkModel,
}

impl<T: Send> Mailboxes<T> {
    /// Creates mailboxes for `ranks` ranks.
    pub fn new(ranks: usize, network: NetworkModel) -> Self {
        let boxes = (0..ranks)
            .map(|_| (0..ranks).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        Self {
            boxes,
            barrier: SimBarrier::new(ranks, network),
            network,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.boxes.len()
    }

    /// One all-to-all exchange round from the perspective of rank `src`:
    /// `outgoing[dest]` is delivered to `dest`'s mailbox, the call blocks until every
    /// rank has posted (the collective's implicit synchronization), and the messages
    /// addressed to `src` are returned together with the modeled communication cost
    /// in nanoseconds (message costs + barrier cost).
    pub fn alltoall(&self, src: usize, outgoing: Vec<Vec<T>>) -> (Vec<Vec<T>>, f64) {
        assert_eq!(
            outgoing.len(),
            self.ranks(),
            "one outgoing vector per destination"
        );
        let mut cost = 0.0;
        for (dest, payload) in outgoing.into_iter().enumerate() {
            if payload.is_empty() {
                continue;
            }
            if dest != src {
                // Self-messages are free in alltoallv; remote ones pay α + β·s.
                let bytes = payload.len() * std::mem::size_of::<T>();
                cost += self.network.remote_cost_ns(bytes);
            }
            *self.boxes[dest][src].lock() = payload;
        }
        // The blocking collective: no rank proceeds before every rank has posted.
        cost += self.barrier.wait();
        // Drain this rank's inbox.
        let mut incoming = Vec::with_capacity(self.ranks());
        for s in 0..self.ranks() {
            incoming.push(std::mem::take(&mut *self.boxes[src][s].lock()));
        }
        // A second barrier guarantees that nobody starts the next round's posting
        // while a slower rank is still draining this round's inbox.
        cost += self.barrier.wait();
        (incoming, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmatc_rma::run_ranks;

    #[test]
    fn alltoall_delivers_every_message_to_its_destination() {
        let ranks = 4;
        let mail: Mailboxes<u64> = Mailboxes::new(ranks, NetworkModel::zero());
        let results = run_ranks(ranks, |r| {
            // Rank r sends the value 100*r + dest to every destination.
            let outgoing: Vec<Vec<u64>> = (0..ranks).map(|d| vec![(100 * r + d) as u64]).collect();
            let (incoming, _) = mail.alltoall(r, outgoing);
            incoming
        });
        for (dest, inbox) in results.iter().enumerate() {
            for (src, msgs) in inbox.iter().enumerate() {
                assert_eq!(
                    msgs,
                    &vec![(100 * src + dest) as u64],
                    "src {src} -> dest {dest}"
                );
            }
        }
    }

    #[test]
    fn empty_messages_cost_nothing_but_barrier() {
        let ranks = 2;
        let net = NetworkModel::aries();
        let mail: Mailboxes<u8> = Mailboxes::new(ranks, net);
        let costs = run_ranks(ranks, |r| {
            let outgoing = vec![Vec::new(), Vec::new()];
            let (_, cost) = mail.alltoall(r, outgoing);
            cost
        });
        let barrier_only = 2.0 * net.barrier_cost_ns(ranks);
        for c in costs {
            assert!((c - barrier_only).abs() < 1e-9);
        }
    }

    #[test]
    fn repeated_rounds_do_not_leak_messages_between_rounds() {
        let ranks = 2;
        let mail: Mailboxes<u32> = Mailboxes::new(ranks, NetworkModel::zero());
        let results = run_ranks(ranks, |r| {
            let mut seen = Vec::new();
            for round in 0..3u32 {
                let outgoing: Vec<Vec<u32>> = (0..ranks)
                    .map(|d| {
                        if d != r {
                            vec![round * 10 + r as u32]
                        } else {
                            Vec::new()
                        }
                    })
                    .collect();
                let (incoming, _) = mail.alltoall(r, outgoing);
                seen.push(incoming.into_iter().flatten().collect::<Vec<_>>());
            }
            seen
        });
        for (r, rounds) in results.iter().enumerate() {
            let other = 1 - r;
            for (round, msgs) in rounds.iter().enumerate() {
                assert_eq!(msgs, &vec![round as u32 * 10 + other as u32]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "one outgoing vector per destination")]
    fn wrong_destination_count_panics() {
        let mail: Mailboxes<u8> = Mailboxes::new(2, NetworkModel::zero());
        mail.alltoall(0, vec![Vec::new()]);
    }

    #[test]
    fn message_costs_follow_the_network_model() {
        let ranks = 2;
        let net = NetworkModel::aries();
        let mail: Mailboxes<u64> = Mailboxes::new(ranks, net);
        let costs = run_ranks(ranks, |r| {
            let outgoing: Vec<Vec<u64>> = (0..ranks)
                .map(|d| if d != r { vec![0u64; 100] } else { Vec::new() })
                .collect();
            let (_, cost) = mail.alltoall(r, outgoing);
            cost
        });
        let expected = net.remote_cost_ns(800) + 2.0 * net.barrier_cost_ns(ranks);
        for c in costs {
            assert!((c - expected).abs() < 1e-6);
        }
    }
}
