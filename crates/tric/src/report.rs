//! Per-rank and aggregate results of a TriC run, mirroring the shape of
//! [`rmatc_core::DistResult`] so Figure 9/10 harnesses can treat both uniformly.

/// Report of one TriC rank.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TricRankReport {
    /// Rank id.
    pub rank: usize,
    /// Number of locally owned vertices.
    pub local_vertices: usize,
    /// Neighbour-pair queries this rank sent to other ranks.
    pub queries_sent: u64,
    /// Queries this rank answered for other ranks.
    pub queries_answered: u64,
    /// Positive responses received (each contributes one closed triplet).
    pub responses_received: u64,
    /// Bytes sent (queries + responses).
    pub bytes_sent: u64,
    /// Number of bulk-synchronous exchange rounds this rank participated in.
    pub rounds: u64,
    /// Largest number of queries buffered at once (the memory footprint TriC
    /// Buffered caps).
    pub peak_buffered_queries: u64,
    /// CPU time of query generation, local checks and answering, ns.
    pub compute_ns: f64,
    /// Modeled communication time of the all-to-all exchanges, ns.
    pub comm_ns: f64,
    /// Exchanges whose completion was slowed by an injected straggler delay
    /// (zero on fault-free runs).
    pub delayed_exchanges: u64,
    /// Time spent waiting at the blocking collectives, modeled as this rank's
    /// compute-time gap to the slowest rank (bulk-synchronous load imbalance), ns.
    pub sync_ns: f64,
}

impl TricRankReport {
    /// Total modeled running time of the rank.
    pub fn total_ns(&self) -> f64 {
        self.compute_ns + self.comm_ns + self.sync_ns
    }

    /// Fraction of the total spent in communication plus synchronization.
    pub fn comm_sync_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0.0 {
            0.0
        } else {
            (self.comm_ns + self.sync_ns) / total
        }
    }
}

/// Result of a TriC run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TricResult {
    /// LCC score per global vertex.
    pub lcc: Vec<f64>,
    /// Closed-triplet count per global vertex.
    pub per_vertex_triangles: Vec<u64>,
    /// Global triangle count (undirected) or closed-triplet total (directed).
    pub triangle_count: u64,
    /// Per-rank reports.
    pub ranks: Vec<TricRankReport>,
    /// Number of ranks used.
    pub rank_count: usize,
}

impl TricResult {
    /// Running time of the longest-running rank, in nanoseconds.
    pub fn max_rank_time_ns(&self) -> f64 {
        self.ranks.iter().map(|r| r.total_ns()).fold(0.0, f64::max)
    }

    /// Total queries exchanged across ranks.
    pub fn total_queries(&self) -> u64 {
        self.ranks.iter().map(|r| r.queries_sent).sum()
    }

    /// Total bytes sent across ranks.
    pub fn total_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_sent).sum()
    }

    /// Largest per-rank buffered-query peak — the memory pressure the buffered
    /// variant exists to bound.
    pub fn max_peak_buffered_queries(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.peak_buffered_queries)
            .max()
            .unwrap_or(0)
    }

    /// Maximum number of exchange rounds over ranks.
    pub fn rounds(&self) -> u64 {
        self.ranks.iter().map(|r| r.rounds).max().unwrap_or(0)
    }

    /// Total straggler-delayed exchanges across ranks — zero exactly when no
    /// faults were injected.
    pub fn total_delayed_exchanges(&self) -> u64 {
        self.ranks.iter().map(|r| r.delayed_exchanges).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(compute: f64, comm: f64, sync: f64) -> TricRankReport {
        TricRankReport {
            rank: 0,
            local_vertices: 1,
            queries_sent: 10,
            queries_answered: 5,
            responses_received: 3,
            bytes_sent: 120,
            rounds: 2,
            peak_buffered_queries: 10,
            compute_ns: compute,
            comm_ns: comm,
            delayed_exchanges: 0,
            sync_ns: sync,
        }
    }

    #[test]
    fn totals_and_fractions() {
        let r = report(100.0, 200.0, 100.0);
        assert_eq!(r.total_ns(), 400.0);
        assert!((r.comm_sync_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn aggregate_helpers() {
        let result = TricResult {
            lcc: vec![0.0],
            per_vertex_triangles: vec![0],
            triangle_count: 0,
            ranks: vec![report(1.0, 1.0, 1.0), report(5.0, 5.0, 5.0)],
            rank_count: 2,
        };
        assert_eq!(result.max_rank_time_ns(), 15.0);
        assert_eq!(result.total_queries(), 20);
        assert_eq!(result.total_bytes(), 240);
        assert_eq!(result.rounds(), 2);
        assert_eq!(result.max_peak_buffered_queries(), 10);
    }
}
