//! The TriC algorithm: per-vertex neighbour-pair queries answered through
//! bulk-synchronous all-to-all rounds.

use crate::config::TricConfig;
use crate::exchange::Mailboxes;
use crate::report::{TricRankReport, TricResult};
use rmatc_core::lcc;
use rmatc_graph::partition::{PartitionedGraph, RankPartition};
use rmatc_graph::types::{Direction, VertexId};
use rmatc_graph::CsrGraph;
use rmatc_rma::{run_ranks, ThreadTimer};
use std::sync::atomic::{AtomicU64, Ordering};

/// An edge-existence query: "does the edge `(j, k)` exist?", tagged with the local
/// index of the origin vertex whose LCC numerator the answer contributes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Query {
    j: VertexId,
    k: VertexId,
    origin_local: u32,
}

/// TriC runner.
#[derive(Debug, Clone)]
pub struct Tric {
    config: TricConfig,
}

impl Tric {
    /// Creates a runner with the given configuration.
    pub fn new(config: TricConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TricConfig {
        &self.config
    }

    /// Partitions `g` and runs TriC.
    pub fn run(&self, g: &CsrGraph) -> TricResult {
        let pg = PartitionedGraph::from_global(g, self.config.scheme, self.config.ranks)
            .expect("invalid rank count for this graph");
        self.run_partitioned(&pg)
    }

    /// Runs TriC on an already partitioned graph.
    pub fn run_partitioned(&self, pg: &PartitionedGraph) -> TricResult {
        let cfg = &self.config;
        let query_mail: Mailboxes<[u32; 3]> = Mailboxes::new(cfg.ranks, cfg.network);
        let response_mail: Mailboxes<u32> = Mailboxes::new(cfg.ranks, cfg.network);
        let global_rounds = AtomicU64::new(0);
        let outputs = run_ranks(cfg.ranks, |rank| {
            run_rank(rank, pg, cfg, &query_mail, &response_mail, &global_rounds)
        });
        assemble(pg, outputs)
    }
}

struct RankOutput {
    rank: usize,
    local_triangles: Vec<u64>,
    report: TricRankReport,
}

fn run_rank(
    rank: usize,
    pg: &PartitionedGraph,
    cfg: &TricConfig,
    query_mail: &Mailboxes<[u32; 3]>,
    response_mail: &Mailboxes<u32>,
    global_rounds: &AtomicU64,
) -> RankOutput {
    let part = &pg.partitions[rank];
    let ranks = cfg.ranks;
    let direction = pg.direction;
    let mut local_triangles = vec![0u64; part.local_vertex_count()];
    let mut comm_ns = 0.0;
    let mut queries_answered = 0u64;
    let mut responses_received = 0u64;
    let mut bytes_sent = 0u64;
    let mut rounds = 0u64;
    let mut delayed_exchanges = 0u64;
    // TriC's blocking collectives are reliable-completion, so of the fault
    // classes only straggler delays apply: a delayed exchange multiplies this
    // rank's modeled collective cost. Decisions are drawn per rank from the
    // plan's seed, so they are reproducible across thread interleavings.
    let mut injector = cfg.faults.map(|plan| plan.injector(rank));
    let mut charge_exchange = |cost: f64, comm_ns: &mut f64, delayed: &mut u64| match injector
        .as_mut()
        .and_then(|inj| inj.completion_delay())
    {
        Some(factor) if cost > 0.0 => {
            *comm_ns += cost * factor;
            *delayed += 1;
        }
        _ => *comm_ns += cost,
    };

    // --- Phase 1: local counting and query generation -------------------------
    // Per-thread CPU time: rank threads share the simulator host's cores, so wall
    // clock would measure scheduling rather than work.
    let timer = ThreadTimer::start();
    let mut pending: Vec<Vec<Query>> = vec![Vec::new(); ranks];
    for (local_idx, triangles_slot) in local_triangles.iter_mut().enumerate() {
        let adj = part.neighbours_of_local(local_idx);
        for (a_pos, &j) in adj.iter().enumerate() {
            let partners: &[VertexId] = match direction {
                // Undirected: each unordered neighbour pair {j, k} once (k > j).
                Direction::Undirected => &adj[a_pos + 1..],
                // Directed: ordered pairs (j, k), j ≠ k (Eq. 1 numerator).
                Direction::Directed => adj,
            };
            let owner_j = pg.partitioner.owner(j);
            for &k in partners {
                if direction == Direction::Directed && k == j {
                    continue;
                }
                if owner_j == rank {
                    // The edge (j, k) can be checked locally.
                    let j_local = pg.partitioner.local_index(j);
                    if part.neighbours_of_local(j_local).binary_search(&k).is_ok() {
                        *triangles_slot += 1;
                    }
                } else {
                    pending[owner_j].push(Query {
                        j,
                        k,
                        origin_local: local_idx as u32,
                    });
                }
            }
        }
    }
    let mut compute_ns = timer.elapsed_ns() as f64;
    let mut compute_marker = timer.elapsed_ns();
    let total_pending: u64 = pending.iter().map(|q| q.len() as u64).sum();
    let peak_buffered_queries = total_pending;
    let queries_sent = total_pending;
    // Every rank must participate in the same number of collective rounds, so the
    // round count is agreed on collectively: each rank publishes how many rounds its
    // own buffers require, and after an (empty) alignment exchange all ranks adopt
    // the maximum — exactly the extra synchronization a bulk-synchronous design pays.
    let my_rounds = match cfg.buffer_entries {
        None => u64::from(total_pending > 0),
        Some(cap) => pending
            .iter()
            .map(|q| q.len().div_ceil(cap) as u64)
            .max()
            .unwrap_or(0),
    };
    global_rounds.fetch_max(my_rounds, Ordering::SeqCst);
    let (_, align_cost) = query_mail.alltoall(rank, vec![Vec::new(); ranks]);
    charge_exchange(align_cost, &mut comm_ns, &mut delayed_exchanges);
    let agreed_rounds = global_rounds.load(Ordering::SeqCst);

    // --- Phase 2..n: bulk-synchronous query/response rounds -------------------
    let mut cursors = vec![0usize; ranks];
    for _ in 0..agreed_rounds {
        rounds += 1;
        // Assemble this round's (possibly capped) per-destination buffers.
        let mut outgoing: Vec<Vec<[u32; 3]>> = Vec::with_capacity(ranks);
        for dest in 0..ranks {
            let queue = &pending[dest];
            let start = cursors[dest];
            let end = match cfg.buffer_entries {
                Some(cap) => (start + cap).min(queue.len()),
                None => queue.len(),
            };
            cursors[dest] = end;
            let msgs: Vec<[u32; 3]> = queue[start..end]
                .iter()
                .map(|q| [q.j, q.k, q.origin_local])
                .collect();
            bytes_sent += (msgs.len() * 12) as u64;
            outgoing.push(msgs);
        }
        compute_ns += (timer.elapsed_ns() - compute_marker) as f64;

        // Exchange queries (blocking all-to-all).
        let (incoming_queries, cost_q) = query_mail.alltoall(rank, outgoing);
        charge_exchange(cost_q, &mut comm_ns, &mut delayed_exchanges);

        // Answer the queries addressed to this rank.
        compute_marker = timer.elapsed_ns();
        let mut responses: Vec<Vec<u32>> = vec![Vec::new(); ranks];
        for (src, queries) in incoming_queries.iter().enumerate() {
            for q in queries {
                queries_answered += 1;
                let [j, k, origin_local] = *q;
                debug_assert_eq!(pg.partitioner.owner(j), rank);
                let j_local = pg.partitioner.local_index(j);
                if part.neighbours_of_local(j_local).binary_search(&k).is_ok() {
                    responses[src].push(origin_local);
                }
            }
        }
        for resp in &responses {
            bytes_sent += (resp.len() * 4) as u64;
        }
        compute_ns += (timer.elapsed_ns() - compute_marker) as f64;

        // Exchange responses (second blocking all-to-all of the round).
        let (incoming_responses, cost_r) = response_mail.alltoall(rank, responses);
        charge_exchange(cost_r, &mut comm_ns, &mut delayed_exchanges);

        // Accumulate positive answers into the per-vertex counts.
        compute_marker = timer.elapsed_ns();
        for resp in incoming_responses {
            for origin_local in resp {
                responses_received += 1;
                local_triangles[origin_local as usize] += 1;
            }
        }
        compute_ns += (timer.elapsed_ns() - compute_marker) as f64;
    }

    RankOutput {
        rank,
        local_triangles,
        report: TricRankReport {
            rank,
            local_vertices: part.local_vertex_count(),
            queries_sent,
            queries_answered,
            responses_received,
            bytes_sent,
            rounds,
            peak_buffered_queries,
            compute_ns,
            comm_ns,
            delayed_exchanges,
            // Filled in by `assemble`: the time this rank waits for the slowest rank
            // at the blocking collectives is modeled as the compute imbalance.
            sync_ns: 0.0,
        },
    }
}

fn assemble(pg: &PartitionedGraph, outputs: Vec<RankOutput>) -> TricResult {
    let n = pg.global_vertex_count();
    let mut per_vertex_triangles = vec![0u64; n];
    let mut degrees = vec![0u32; n];
    let mut ranks = Vec::with_capacity(outputs.len());
    let max_compute = outputs
        .iter()
        .map(|o| o.report.compute_ns)
        .fold(0.0, f64::max);
    for out in outputs {
        let part: &RankPartition = &pg.partitions[out.rank];
        for (local_idx, &gv) in part.global_ids.iter().enumerate() {
            per_vertex_triangles[gv as usize] = out.local_triangles[local_idx];
            degrees[gv as usize] = part.csr.degree(local_idx as u32);
        }
        let mut report = out.report;
        // Bulk-synchronous execution: every rank leaves each collective only when the
        // slowest rank arrives, so the waiting time of a rank over the whole run is
        // the compute-time gap to the slowest rank.
        report.sync_ns = max_compute - report.compute_ns;
        ranks.push(report);
    }
    ranks.sort_by_key(|r| r.rank);
    let lcc = lcc::scores_from_counts(pg.direction, &degrees, &per_vertex_triangles);
    let total: u64 = per_vertex_triangles.iter().sum();
    let triangle_count = match pg.direction {
        Direction::Undirected => total / 3,
        Direction::Directed => total,
    };
    TricResult {
        lcc,
        per_vertex_triangles,
        triangle_count,
        rank_count: pg.ranks(),
        ranks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmatc_graph::datasets::{Dataset, DatasetScale};
    use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
    use rmatc_graph::partition::PartitionScheme;
    use rmatc_graph::reference;

    fn small_graph() -> CsrGraph {
        RmatGenerator::paper(8, 8).generate_cleaned(9).into_csr()
    }

    #[test]
    fn tric_matches_reference_counts() {
        let g = small_graph();
        let expected = reference::lcc_scores(&g);
        for ranks in [1, 2, 4] {
            let result = Tric::new(TricConfig::plain(ranks)).run(&g);
            assert_eq!(
                result.triangle_count,
                reference::count_triangles(&g),
                "p = {ranks}"
            );
            for (v, (a, b)) in result.lcc.iter().zip(expected.iter()).enumerate() {
                assert!((a - b).abs() < 1e-12, "vertex {v} at p = {ranks}");
            }
        }
    }

    #[test]
    fn buffered_variant_matches_plain_and_uses_more_rounds() {
        let g = small_graph();
        let plain = Tric::new(TricConfig::plain(4)).run(&g);
        let buffered = Tric::new(TricConfig::buffered_with(4, 64)).run(&g);
        assert_eq!(plain.triangle_count, buffered.triangle_count);
        assert_eq!(plain.lcc, buffered.lcc);
        assert!(
            buffered.rounds() > plain.rounds(),
            "a small buffer must force multiple exchange rounds ({} vs {})",
            buffered.rounds(),
            plain.rounds()
        );
    }

    #[test]
    fn block_partitioning_also_works() {
        let g = small_graph();
        let mut cfg = TricConfig::plain(4);
        cfg.scheme = PartitionScheme::Block1D;
        let result = Tric::new(cfg).run(&g);
        assert_eq!(result.triangle_count, reference::count_triangles(&g));
    }

    #[test]
    fn directed_graphs_match_reference() {
        let g = Dataset::LiveJournal1.generate(DatasetScale::Tiny, 5);
        let expected = reference::lcc_scores(&g);
        let result = Tric::new(TricConfig::plain(2)).run(&g);
        for (a, b) in result.lcc.iter().zip(expected.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn reports_reflect_query_traffic() {
        let g = small_graph();
        let result = Tric::new(TricConfig::plain(4)).run(&g);
        assert!(result.total_queries() > 0);
        assert!(result.total_bytes() > 0);
        assert!(result.max_rank_time_ns() > 0.0);
        let answered: u64 = result.ranks.iter().map(|r| r.queries_answered).sum();
        assert_eq!(
            answered,
            result.total_queries(),
            "every query must be answered"
        );
    }

    #[test]
    fn single_rank_sends_no_queries() {
        let g = small_graph();
        let result = Tric::new(TricConfig::plain(1)).run(&g);
        assert_eq!(result.total_queries(), 0);
        assert_eq!(result.triangle_count, reference::count_triangles(&g));
    }

    #[test]
    fn straggler_faults_stretch_time_but_never_change_counts() {
        let g = small_graph();
        let clean = Tric::new(TricConfig::plain(4)).run(&g);
        let plan = rmatc_rma::FaultPlan::heavy(31);
        let faulted = Tric::new(TricConfig::plain(4).with_faults(plan)).run(&g);
        assert_eq!(clean.triangle_count, faulted.triangle_count);
        assert_eq!(clean.lcc, faulted.lcc);
        assert!(
            faulted.total_delayed_exchanges() > 0,
            "the heavy plan must delay some exchanges"
        );
        assert_eq!(clean.total_delayed_exchanges(), 0);
        let comm = |r: &TricResult| r.ranks.iter().map(|x| x.comm_ns).sum::<f64>();
        assert!(
            comm(&faulted) > comm(&clean),
            "delays must show up in the modeled communication time"
        );
    }

    #[test]
    fn query_volume_exceeds_async_get_volume_on_skewed_graphs() {
        // The reason TriC struggles on scale-free graphs: it enumerates neighbour
        // pairs (quadratic in hub degree), while the asynchronous algorithm reads
        // each remote adjacency list linearly.
        let g = Dataset::Orkut.generate(DatasetScale::Tiny, 2);
        let tric = Tric::new(TricConfig::plain(4)).run(&g);
        let asynchronous = rmatc_core::DistLcc::new(rmatc_core::DistConfig::non_cached(4)).run(&g);
        assert!(
            tric.total_queries() > asynchronous.total_gets(),
            "TriC queries ({}) should exceed async gets ({})",
            tric.total_queries(),
            asynchronous.total_gets()
        );
    }
}
