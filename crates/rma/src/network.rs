//! Linear network cost model for remote reads.
//!
//! Section IV-D1 of the paper models the time of a remote read of `s` bytes as
//! `t(s) = α + s·β`: a fixed per-operation setup overhead plus a per-byte transfer
//! cost. The analysis of both CLaMPI caches rests on this model — saving a get on
//! the small `offsets` entries saves mostly `α`, while saving a get on a long
//! adjacency list saves `α` plus a large `s·β` term.

/// Parameters of the `t(s) = α + β·s` remote-read model, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NetworkModel {
    /// Per-operation setup overhead α, in nanoseconds.
    pub alpha_ns: f64,
    /// Per-byte transfer cost β, in nanoseconds per byte.
    pub beta_ns_per_byte: f64,
    /// Cost charged for a *local* read of one cache line, in nanoseconds. The paper
    /// contrasts the microseconds of a remote get with the hundreds of nanoseconds
    /// of a DRAM access; cache hits are charged this cost.
    pub local_read_ns: f64,
    /// When non-zero, every charged cost is also spun for in real time, scaled by
    /// this factor (1.0 = realistic, 0.001 = fast simulation). Zero disables
    /// injection and keeps accounting purely virtual.
    pub injection_scale: f64,
}

impl NetworkModel {
    /// Cray Aries defaults: the paper quotes 2–3 µs per RMA get on Aries and the
    /// link bandwidth is on the order of 10 GB/s, i.e. ≈0.1 ns/byte.
    pub fn aries() -> Self {
        Self {
            alpha_ns: 2_500.0,
            beta_ns_per_byte: 0.1,
            local_read_ns: 100.0,
            injection_scale: 0.0,
        }
    }

    /// A slower commodity-cluster model (useful for sensitivity studies):
    /// ~10 µs setup, ~1 ns/byte (≈1 GB/s effective).
    pub fn commodity() -> Self {
        Self {
            alpha_ns: 10_000.0,
            beta_ns_per_byte: 1.0,
            local_read_ns: 100.0,
            injection_scale: 0.0,
        }
    }

    /// A zero-cost model; useful in unit tests that only check data movement.
    pub fn zero() -> Self {
        Self {
            alpha_ns: 0.0,
            beta_ns_per_byte: 0.0,
            local_read_ns: 0.0,
            injection_scale: 0.0,
        }
    }

    /// Enables latency injection (real spinning) scaled by `scale`.
    pub fn with_injection(mut self, scale: f64) -> Self {
        self.injection_scale = scale;
        self
    }

    /// Modeled cost of a remote read of `bytes` bytes, in nanoseconds.
    pub fn remote_cost_ns(&self, bytes: usize) -> f64 {
        self.alpha_ns + self.beta_ns_per_byte * bytes as f64
    }

    /// Modeled cost of serving the same `bytes` from the local CLaMPI cache.
    pub fn local_cost_ns(&self, bytes: usize) -> f64 {
        // One access latency plus streaming the bytes at DRAM bandwidth
        // (~0.01 ns/byte); the dominant term is the fixed access cost.
        self.local_read_ns + 0.01 * bytes as f64
    }

    /// Modeled cost of a barrier / collective synchronization over `ranks` ranks,
    /// used by the bulk-synchronous TriC baseline: a logarithmic-depth dissemination
    /// barrier costs `⌈log2(p)⌉` message latencies.
    pub fn barrier_cost_ns(&self, ranks: usize) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let rounds = (ranks as f64).log2().ceil();
        rounds * self.alpha_ns
    }

    /// Spins until `cost_ns * injection_scale` of wall time has passed since
    /// `issued` (since now, when `None`). A get whose modeled latency already
    /// elapsed while the caller computed — the NIC moved the bytes in the
    /// background, as real one-sided hardware does — costs no spin at all.
    /// This is what makes the pipelined worker's communication/compute
    /// overlap a *wall-clock* win under injection, not only a virtual-time
    /// accounting win.
    pub(crate) fn maybe_inject_since(&self, cost_ns: f64, issued: Option<std::time::Instant>) {
        if self.injection_scale <= 0.0 {
            return;
        }
        let target = std::time::Duration::from_nanos((cost_ns * self.injection_scale) as u64);
        let start = issued.unwrap_or_else(std::time::Instant::now);
        while start.elapsed() < target {
            std::hint::spin_loop();
        }
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::aries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aries_cost_is_microseconds_per_get() {
        let m = NetworkModel::aries();
        // An 8-byte offsets read costs roughly the setup latency.
        let small = m.remote_cost_ns(8);
        assert!((2_500.0..3_000.0).contains(&small));
        // A 4 KiB adjacency read costs noticeably more than the setup alone.
        assert!(m.remote_cost_ns(4096) > small);
    }

    #[test]
    fn local_reads_are_orders_of_magnitude_cheaper() {
        let m = NetworkModel::aries();
        assert!(m.remote_cost_ns(64) / m.local_cost_ns(64) > 10.0);
    }

    #[test]
    fn cost_is_linear_in_size() {
        let m = NetworkModel::aries();
        let c1 = m.remote_cost_ns(1_000);
        let c2 = m.remote_cost_ns(2_000);
        let c3 = m.remote_cost_ns(3_000);
        assert!((c3 - c2 - (c2 - c1)).abs() < 1e-9);
    }

    #[test]
    fn barrier_cost_grows_logarithmically() {
        let m = NetworkModel::aries();
        assert_eq!(m.barrier_cost_ns(1), 0.0);
        assert!((m.barrier_cost_ns(2) - m.alpha_ns).abs() < 1e-9);
        assert!((m.barrier_cost_ns(64) - 6.0 * m.alpha_ns).abs() < 1e-9);
        assert!(m.barrier_cost_ns(64) < m.barrier_cost_ns(128) + 1e-9);
    }

    #[test]
    fn zero_model_charges_nothing() {
        let m = NetworkModel::zero();
        assert_eq!(m.remote_cost_ns(1 << 20), 0.0);
        assert_eq!(m.local_cost_ns(0), 0.0);
        assert_eq!(m.barrier_cost_ns(128), 0.0);
    }

    #[test]
    fn injection_spins_for_roughly_the_requested_time() {
        let m = NetworkModel::aries().with_injection(1.0);
        let start = std::time::Instant::now();
        m.maybe_inject_since(2_000_000.0, None); // 2 ms
        assert!(start.elapsed() >= std::time::Duration::from_millis(1));
    }

    #[test]
    fn injection_disabled_returns_immediately() {
        let m = NetworkModel::aries();
        let start = std::time::Instant::now();
        m.maybe_inject_since(1e12, None);
        assert!(start.elapsed() < std::time::Duration::from_millis(100));
    }
}
