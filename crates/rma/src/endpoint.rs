//! Per-rank RMA access endpoint: epochs, one-sided gets, flush semantics and the
//! overlap (double-buffering) credit used by the asynchronous algorithm.
//!
//! Since the robustness layer landed, remote reads are *fallible*: under an
//! attached [`FaultInjector`] a get can fail at issue time, land a corrupted
//! buffer (detected by the [`crate::fault::checksum`] stamped at the source
//! window), or straggle past the [`RetryPolicy`] timeout. [`Endpoint::get`] /
//! [`Endpoint::get_map`] therefore return `Result`, and the
//! [`Endpoint::get_with_retry`] / [`Endpoint::get_map_with_retry`] wrappers
//! implement the self-healing path: exponential backoff between attempts,
//! every retry and backoff nanosecond charged through the same α+βs cost
//! accounting as ordinary traffic. Epoch misuse remains a panic — that is a
//! programming error, the moral equivalent of an `MPI_ERR_RMA_SYNC` abort.
//! Without an injector the fault machinery is entirely skipped (no checksum
//! is computed), so the fault-off hot path is unchanged.

use crate::fault::{self, FaultInjector, RetryPolicy, RmaError};
use crate::network::NetworkModel;
use crate::stats::RankStats;
use crate::window::Window;
use std::sync::Arc;

/// A one-sided get that has been issued but not yet completed by a flush.
///
/// As in MPI-3 RMA, the target buffer must not be read before the operation is
/// completed; [`PendingGet::wait`] performs the per-operation flush and hands the
/// data out, and [`Endpoint::flush_all`] completes every outstanding operation.
///
/// The transferred data lives in a shared `Arc<[T]>` buffer — the single
/// allocation of the transfer — so downstream layers (the CLaMPI cache) can
/// retain it with a refcount bump instead of copying the payload again.
#[derive(Debug)]
pub struct PendingGet<T> {
    data: Arc<[T]>,
    cost_ns: f64,
    epoch: u64,
    target: usize,
    /// Checksum of the clean source region, stamped at issue time when fault
    /// injection is enabled; verified against the landed buffer on completion.
    expected_checksum: Option<u64>,
    /// Injected straggler multiplier on the completion cost (≥ 1), if any.
    delay_factor: Option<f64>,
    /// Wall-clock issue stamp, taken only when latency injection is enabled:
    /// the completion spin covers the *remaining* modeled latency, so time
    /// the caller spent computing since issue overlaps the transfer for real.
    issued_at: Option<std::time::Instant>,
}

impl<T: Copy> PendingGet<T> {
    /// Completes this get (an `MPI_Win_flush` scoped to the operation), charging its
    /// modeled cost to the endpoint, and returns the transferred data.
    ///
    /// # Errors
    ///
    /// [`RmaError::Timeout`] if an injected straggler delay pushes the modeled
    /// completion past the endpoint's [`RetryPolicy::timeout_ns`] (the full
    /// timeout is charged as waited time), and [`RmaError::ChecksumMismatch`]
    /// if the landed buffer fails verification against the source stamp (the
    /// transfer cost is still charged — the bytes did cross the wire).
    #[inline]
    pub fn wait(self, ep: &mut Endpoint) -> Result<Arc<[T]>, RmaError> {
        assert_eq!(
            self.epoch, ep.epoch_counter,
            "PendingGet completed in a different access epoch than it was issued in"
        );
        // The base cost was added to `outstanding_ns` at issue time; completing
        // the get individually removes it from the outstanding pool.
        ep.outstanding_ns = (ep.outstanding_ns - self.cost_ns).max(0.0);
        ep.stats.flushes += 1;
        let factor = self.delay_factor.unwrap_or(1.0);
        let total_ns = self.cost_ns * factor;
        if self.cost_ns > 0.0 && factor > 1.0 {
            if let Some(timeout_ns) = ep.retry.timeout_ns {
                if total_ns > timeout_ns {
                    // The caller waited out the whole timeout before giving up.
                    ep.charge_raw(timeout_ns);
                    ep.stats.timeouts += 1;
                    return Err(RmaError::Timeout {
                        target: self.target,
                        waited_ns: total_ns,
                        timeout_ns,
                    });
                }
            }
            ep.stats.delayed_gets += 1;
        }
        ep.charge_raw(total_ns);
        ep.network.maybe_inject_since(total_ns, self.issued_at);
        if let Some(expected) = self.expected_checksum {
            if fault::checksum(&self.data) != expected {
                ep.stats.checksum_failures += 1;
                return Err(RmaError::ChecksumMismatch {
                    target: self.target,
                });
            }
        }
        Ok(self.data)
    }
}

impl<T> PendingGet<T> {
    /// The modeled cost of this get, in nanoseconds (available before completion so
    /// callers can reason about prefetch depth).
    pub fn cost_ns(&self) -> f64 {
        self.cost_ns
    }

    /// The rank this get targets.
    pub fn target(&self) -> usize {
        self.target
    }

    /// Number of elements transferred.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the transfer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Per-rank access object for issuing one-sided operations.
///
/// The endpoint owns the rank's communication statistics and the overlap credit used
/// to model the paper's double-buffering optimization: computation time reported via
/// [`Endpoint::note_compute_ns`] can hide the latency of gets completed afterwards.
#[derive(Debug)]
pub struct Endpoint {
    rank: usize,
    ranks: usize,
    network: NetworkModel,
    stats: RankStats,
    epoch_open: bool,
    epoch_counter: u64,
    overlap_credit_ns: f64,
    outstanding_ns: f64,
    retry: RetryPolicy,
    faults: Option<FaultInjector>,
}

impl Endpoint {
    /// Creates the endpoint of `rank` out of `ranks` total, using the given network
    /// model. No faults are injected and the default [`RetryPolicy`] applies.
    pub fn new(rank: usize, ranks: usize, network: NetworkModel) -> Self {
        Self {
            rank,
            ranks,
            network,
            stats: RankStats::new(ranks),
            epoch_open: false,
            epoch_counter: 0,
            overlap_credit_ns: 0.0,
            outstanding_ns: 0.0,
            retry: RetryPolicy::default(),
            faults: None,
        }
    }

    /// Sets the retry policy governing backoff and completion timeouts.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches a fault injector: remote gets become fallible and transfers are
    /// checksummed. The injector should come from
    /// [`crate::fault::FaultPlan::injector`] for this endpoint's rank.
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = Some(faults);
        self
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The network model in use.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// The retry policy in use.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Whether a fault injector is attached (and transfers are checksummed).
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// Starts a passive-target access epoch (`MPI_Win_lock_all`). Not a lock and not
    /// a synchronization — it only marks the begin of the epoch, exactly as the
    /// paper points out.
    pub fn lock_all(&mut self) {
        assert!(!self.epoch_open, "access epoch already open");
        self.epoch_open = true;
        self.epoch_counter += 1;
    }

    /// Ends the access epoch (`MPI_Win_unlock_all`); a local operation.
    pub fn unlock_all(&mut self) {
        assert!(self.epoch_open, "no access epoch open");
        // Completing gets out of issue order (the pipelined worker keeps
        // several in flight) leaves a sub-nanosecond floating-point residue in
        // the outstanding pool; a genuinely un-flushed get costs at least the
        // per-message latency α, orders of magnitude above this threshold.
        assert!(
            self.outstanding_ns < 1e-3,
            "access epoch closed with un-flushed gets outstanding ({} ns)",
            self.outstanding_ns
        );
        self.outstanding_ns = 0.0;
        self.epoch_open = false;
    }

    /// Whether an access epoch is currently open.
    pub fn epoch_open(&self) -> bool {
        self.epoch_open
    }

    /// Issues a one-sided get of `len` elements at `offset` in the region exposed by
    /// `target` in `window`. Must be called inside an access epoch. The returned
    /// handle must be completed with [`PendingGet::wait`] before the data is used.
    ///
    /// A get targeting the caller's own rank is still legal in MPI; it is counted as
    /// a local read and charged the local access cost, not the network cost. Local
    /// gets never fault — only the network is unreliable.
    ///
    /// # Errors
    ///
    /// [`RmaError::Transient`] if the attached fault injector drops the message
    /// at issue time; the failed attempt still pays the per-message setup
    /// latency α. Infallible without an injector.
    #[inline]
    pub fn get<T: Copy + Send + Sync>(
        &mut self,
        window: &Window<T>,
        target: usize,
        offset: usize,
        len: usize,
    ) -> Result<PendingGet<T>, RmaError> {
        Ok(self
            .get_map(window, target, offset, len, |src| (Arc::from(src), ()))?
            .0)
    }

    /// Issues a one-sided get whose data transfer is performed by `transfer`:
    /// the closure receives the exposed source region (the simulator's wire)
    /// and must return the landed buffer plus an auxiliary result computed
    /// during the transfer. This is the hook for *fused* transfers — e.g. the
    /// copy+intersect kernel that counts an intersection against a local row
    /// in the same pass that lands the remote row in the cache buffer —
    /// without giving callers unmetered access to remote memory. Cost
    /// accounting, epochs and statistics are identical to [`Endpoint::get`].
    ///
    /// Under fault injection a corrupted transfer runs `transfer` over the
    /// corrupted bytes — the auxiliary result is poisoned along with the
    /// buffer, exactly as a fused kernel reading a corrupted wire would be —
    /// and the corruption is caught by [`PendingGet::wait`]'s checksum.
    ///
    /// # Errors
    ///
    /// [`RmaError::Transient`] as for [`Endpoint::get`].
    #[inline]
    pub fn get_map<T: Copy + Send + Sync, R>(
        &mut self,
        window: &Window<T>,
        target: usize,
        offset: usize,
        len: usize,
        transfer: impl FnOnce(&[T]) -> (Arc<[T]>, R),
    ) -> Result<(PendingGet<T>, R), RmaError> {
        assert!(self.epoch_open, "RMA get issued outside an access epoch");
        let src = window.exposed(target, offset, len);
        let remote = target != self.rank;
        let mut expected_checksum = None;
        let mut delay_factor = None;
        let mut corruption = None;
        if remote {
            if let Some(inj) = self.faults.as_mut() {
                if inj.get_failed() {
                    // The message was dropped: the setup latency α was spent,
                    // no bytes moved.
                    self.stats.transient_failures += 1;
                    self.stats.record_completion(self.network.alpha_ns, 0.0);
                    return Err(RmaError::Transient { target });
                }
                expected_checksum = Some(fault::checksum(src));
                corruption = inj.transfer_corruption();
                delay_factor = inj.completion_delay();
            }
        }
        let (data, result) = match corruption {
            Some(salt) => {
                let corrupted = fault::corrupt_copy(src, salt);
                transfer(&corrupted)
            }
            None => transfer(src),
        };
        // A hard check, not a debug assertion: a short or long landed buffer
        // would be cached under this get's key and served as wrong-length
        // "hits" forever after — silent corruption in release builds.
        assert_eq!(data.len(), len, "transfer must land the full region");
        let bytes = len * window.element_size();
        let cost_ns = if remote {
            self.stats.record_get(target, bytes);
            self.network.remote_cost_ns(bytes)
        } else {
            self.stats.record_local(self.network.local_cost_ns(bytes));
            0.0
        };
        self.outstanding_ns += cost_ns;
        Ok((
            PendingGet {
                data,
                cost_ns,
                epoch: self.epoch_counter,
                target,
                expected_checksum,
                delay_factor,
                issued_at: (self.network.injection_scale > 0.0).then(std::time::Instant::now),
            },
            result,
        ))
    }

    /// A self-healing [`Endpoint::get`]: retries transient failures, timeouts
    /// and checksum mismatches with exponential backoff per the endpoint's
    /// [`RetryPolicy`], charging every attempt and every backoff through the
    /// cost accounting.
    ///
    /// # Errors
    ///
    /// [`RmaError::RetriesExhausted`] when every allowed attempt failed.
    pub fn get_with_retry<T: Copy + Send + Sync>(
        &mut self,
        window: &Window<T>,
        target: usize,
        offset: usize,
        len: usize,
    ) -> Result<Arc<[T]>, RmaError> {
        self.get_map_with_retry(window, target, offset, len, |src| (Arc::from(src), ()))
            .map(|(data, ())| data)
    }

    /// A self-healing [`Endpoint::get_map`] (see [`Endpoint::get_with_retry`]).
    /// `transfer` is `FnMut` because a corrupted or failed attempt discards its
    /// auxiliary result and re-runs the transfer on retry — the returned value
    /// is always computed from a verified-clean buffer.
    ///
    /// # Errors
    ///
    /// [`RmaError::RetriesExhausted`] when every allowed attempt failed.
    #[inline]
    pub fn get_map_with_retry<T: Copy + Send + Sync, R>(
        &mut self,
        window: &Window<T>,
        target: usize,
        offset: usize,
        len: usize,
        mut transfer: impl FnMut(&[T]) -> (Arc<[T]>, R),
    ) -> Result<(Arc<[T]>, R), RmaError> {
        let attempts = self.retry.max_attempts.max(1);
        let mut last: Option<RmaError> = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                // Exponential backoff before each retry: an idle stall, charged
                // as communication time without consuming overlap credit.
                let backoff = self.retry.backoff_ns(attempt - 1);
                self.stats.retries += 1;
                self.stats.backoff_ns += backoff;
                self.stats.record_completion(backoff, 0.0);
            }
            match self
                .get_map(window, target, offset, len, &mut transfer)
                .and_then(|(pending, aux)| Ok((pending.wait(self)?, aux)))
            {
                Ok(out) => return Ok(out),
                Err(e) => last = Some(e),
            }
        }
        Err(RmaError::RetriesExhausted {
            target,
            attempts,
            last: Box::new(last.expect("at least one attempt always runs")),
        })
    }

    /// Completes a get that was issued nonblockingly some time ago — the
    /// software-pipelined worker's deferred-wait path — healing failures by
    /// *reissuing* the get, so a pipeline slot has the same self-healing
    /// guarantee as [`Endpoint::get_with_retry`].
    ///
    /// The original issue counts as attempt 1; a failed wait retries up to the
    /// [`RetryPolicy`]'s budget with the same exponential backoff and cost
    /// accounting as the synchronous retry loop. `(window, target, offset,
    /// len)` must be the coordinates `pending` was issued with.
    ///
    /// # Errors
    ///
    /// [`RmaError::RetriesExhausted`] when the wait and every reissue failed.
    pub fn wait_with_reissue<T: Copy + Send + Sync>(
        &mut self,
        pending: PendingGet<T>,
        window: &Window<T>,
        target: usize,
        offset: usize,
        len: usize,
    ) -> Result<Arc<[T]>, RmaError> {
        debug_assert_eq!(pending.target, target, "reissue coordinates must match");
        let first = match pending.wait(self) {
            Ok(data) => return Ok(data),
            Err(e) => e,
        };
        let attempts = self.retry.max_attempts.max(1);
        let mut last = first;
        for attempt in 2..=attempts {
            let backoff = self.retry.backoff_ns(attempt - 1);
            self.stats.retries += 1;
            self.stats.backoff_ns += backoff;
            self.stats.record_completion(backoff, 0.0);
            match self
                .get(window, target, offset, len)
                .and_then(|p| p.wait(self))
            {
                Ok(data) => return Ok(data),
                Err(e) => last = e,
            }
        }
        Err(RmaError::RetriesExhausted {
            target,
            attempts,
            last: Box::new(last),
        })
    }

    /// Issues a get, healing *issue-time* transient failures with the same
    /// backoff and accounting as [`Endpoint::get_with_retry`], but returns the
    /// nonblocking handle instead of waiting — the software-pipelined worker's
    /// issue path. Completion-side failures (stragglers, corrupted transfers)
    /// are the deferred wait's problem: pair with
    /// [`Endpoint::wait_with_reissue`].
    ///
    /// # Errors
    ///
    /// [`RmaError::RetriesExhausted`] when every allowed issue attempt was
    /// dropped at the source.
    pub fn issue_with_retry<T: Copy + Send + Sync>(
        &mut self,
        window: &Window<T>,
        target: usize,
        offset: usize,
        len: usize,
    ) -> Result<PendingGet<T>, RmaError> {
        let attempts = self.retry.max_attempts.max(1);
        let mut last: Option<RmaError> = None;
        for attempt in 1..=attempts {
            if attempt > 1 {
                let backoff = self.retry.backoff_ns(attempt - 1);
                self.stats.retries += 1;
                self.stats.backoff_ns += backoff;
                self.stats.record_completion(backoff, 0.0);
            }
            match self.get(window, target, offset, len) {
                Ok(pending) => return Ok(pending),
                Err(e) => last = Some(e),
            }
        }
        Err(RmaError::RetriesExhausted {
            target,
            attempts,
            last: Box::new(last.expect("at least one attempt always runs")),
        })
    }

    /// Abandons every outstanding (issued, never waited) get: their modeled
    /// cost is charged as a final flush and the epoch becomes closeable. This
    /// is the pipelined worker's error path — when one slot fails
    /// unrecoverably, the in-flight rest must not leave `unlock_all` asserting
    /// on un-flushed cost (the bytes were on the wire either way). Equivalent
    /// to [`Endpoint::flush_all`]; the name documents intent at the call site.
    pub fn abandon_outstanding(&mut self) -> f64 {
        self.flush_all()
    }

    /// Reads the caller's own exposed region directly (no get, no charge beyond the
    /// local access cost). This is the "locally owned partition" fast path.
    pub fn local_read<'w, T: Copy + Send + Sync>(
        &mut self,
        window: &'w Window<T>,
        offset: usize,
        len: usize,
    ) -> &'w [T] {
        let bytes = len * window.element_size();
        self.stats.record_local(self.network.local_cost_ns(bytes));
        &window.local_part(self.rank)[offset..offset + len]
    }

    /// Records `ns` nanoseconds of computation that future get completions may be
    /// overlapped with (the double-buffering credit). Calling this is the worker's
    /// way of saying "while that get was in flight, I was busy computing".
    pub fn note_compute_ns(&mut self, ns: f64) {
        self.overlap_credit_ns += ns;
    }

    /// Completes all outstanding operations (`MPI_Win_flush_all`) and charges their
    /// cost. Returns the charged (non-overlapped) nanoseconds.
    pub fn flush_all(&mut self) -> f64 {
        assert!(self.epoch_open, "flush outside an access epoch");
        let cost = std::mem::replace(&mut self.outstanding_ns, 0.0);
        self.stats.flushes += 1;
        self.charge_raw(cost)
    }

    /// Records a read that was served from a local cache instead of the network
    /// (used by the CLaMPI layer for hits).
    pub fn record_cache_hit(&mut self, bytes: usize) {
        self.stats.record_local(self.network.local_cost_ns(bytes));
    }

    /// Injector decision: does the cache refuse the next insert? Always `false`
    /// without an attached injector.
    pub fn fault_roll_cache_reject(&mut self) -> bool {
        self.faults
            .as_mut()
            .is_some_and(FaultInjector::cache_reject)
    }

    /// Injector decision: does the entry served by the next cache lookup rot?
    /// Returns the corruption salt if so; always `None` without an injector.
    pub fn fault_roll_cache_corrupt(&mut self) -> Option<u64> {
        self.faults
            .as_mut()
            .and_then(FaultInjector::cache_corruption)
    }

    /// Records a cache entry invalidated after failing checksum verification.
    pub fn record_cache_invalidation(&mut self) {
        self.stats.cache_invalidations += 1;
    }

    /// Records a cache insert refused by an injected rejection.
    pub fn record_cache_rejection(&mut self) {
        self.stats.cache_rejections += 1;
    }

    /// Records a read served by the plain two-get path because the cache was
    /// quarantined.
    pub fn record_cache_bypass_read(&mut self) {
        self.stats.cache_bypass_reads += 1;
    }

    fn charge_raw(&mut self, cost_ns: f64) -> f64 {
        let overlapped = cost_ns.min(self.overlap_credit_ns);
        let charged = cost_ns - overlapped;
        self.overlap_credit_ns -= overlapped;
        self.stats.record_completion(charged, overlapped);
        charged
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &RankStats {
        &self.stats
    }

    /// Consumes the endpoint and returns its statistics (typically at the end of the
    /// rank's computation).
    pub fn into_stats(self) -> RankStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn window2() -> Window<u32> {
        Window::from_parts(vec![vec![1, 2, 3, 4], vec![10, 20, 30, 40, 50]])
    }

    #[test]
    fn get_and_wait_transfers_data_and_charges_cost() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        ep.lock_all();
        let pending = ep.get(&w, 1, 1, 3).unwrap();
        assert_eq!(pending.len(), 3);
        let data = pending.wait(&mut ep).unwrap();
        assert_eq!(&*data, &[20, 30, 40]);
        assert_eq!(ep.stats().gets, 1);
        assert_eq!(ep.stats().bytes, 12);
        assert!(ep.stats().comm_time_ns > 0.0);
        ep.unlock_all();
    }

    #[test]
    #[should_panic(expected = "outside an access epoch")]
    fn get_outside_epoch_panics() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        let _ = ep.get(&w, 1, 0, 1);
    }

    #[test]
    #[should_panic(expected = "un-flushed gets outstanding")]
    fn closing_epoch_with_outstanding_gets_panics() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        ep.lock_all();
        let _pending = ep.get(&w, 1, 0, 1).unwrap();
        ep.unlock_all();
    }

    #[test]
    fn self_targeted_get_is_a_local_read() {
        let w = window2();
        let mut ep = Endpoint::new(1, 2, NetworkModel::aries());
        ep.lock_all();
        let data = ep.get(&w, 1, 0, 2).unwrap().wait(&mut ep).unwrap();
        assert_eq!(&*data, &[10, 20]);
        assert_eq!(ep.stats().gets, 0);
        assert_eq!(ep.stats().local_reads, 1);
        assert_eq!(ep.stats().comm_time_ns, 0.0);
        ep.unlock_all();
    }

    #[test]
    fn local_read_returns_borrowed_slice() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        assert_eq!(ep.local_read(&w, 1, 2), &[2, 3]);
        assert_eq!(ep.stats().local_reads, 1);
    }

    #[test]
    fn get_map_runs_the_transfer_on_the_exposed_region() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        ep.lock_all();
        // A fused transfer: land the region and compute a sum in the same pass.
        let (pending, sum) = ep
            .get_map(&w, 1, 1, 3, |src| {
                (Arc::from(src), src.iter().copied().sum::<u32>())
            })
            .unwrap();
        assert_eq!(sum, 20 + 30 + 40);
        let data = pending.wait(&mut ep).unwrap();
        assert_eq!(&*data, &[20, 30, 40]);
        // Identical accounting to a plain get.
        assert_eq!(ep.stats().gets, 1);
        assert_eq!(ep.stats().bytes, 12);
        ep.unlock_all();
    }

    #[test]
    fn overlap_credit_hides_communication() {
        let w = window2();
        let net = NetworkModel::aries();
        let cost = net.remote_cost_ns(4 * 4);
        let mut ep = Endpoint::new(0, 2, net);
        ep.lock_all();
        let pending = ep.get(&w, 1, 0, 4).unwrap();
        // Pretend we computed longer than the get takes.
        ep.note_compute_ns(cost * 2.0);
        let _ = pending.wait(&mut ep).unwrap();
        assert_eq!(ep.stats().comm_time_ns, 0.0);
        assert!((ep.stats().overlapped_ns - cost).abs() < 1e-9);
        ep.unlock_all();

        // Without credit the same get is charged in full.
        let mut ep2 = Endpoint::new(0, 2, NetworkModel::aries());
        ep2.lock_all();
        let _ = ep2.get(&w, 1, 0, 4).unwrap().wait(&mut ep2).unwrap();
        assert!((ep2.stats().comm_time_ns - cost).abs() < 1e-9);
        ep2.unlock_all();
    }

    #[test]
    fn partial_overlap_charges_the_remainder() {
        let w = window2();
        let net = NetworkModel::aries();
        let cost = net.remote_cost_ns(4 * 4);
        let mut ep = Endpoint::new(0, 2, net);
        ep.lock_all();
        let pending = ep.get(&w, 1, 0, 4).unwrap();
        ep.note_compute_ns(cost / 2.0);
        let _ = pending.wait(&mut ep).unwrap();
        assert!((ep.stats().comm_time_ns - cost / 2.0).abs() < 1e-6);
        ep.unlock_all();
    }

    #[test]
    fn flush_all_completes_everything() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        ep.lock_all();
        let a = ep.get(&w, 1, 0, 1).unwrap();
        let b = ep.get(&w, 1, 1, 1).unwrap();
        let charged = ep.flush_all();
        assert!(charged > 0.0);
        // The handles were issued in this epoch; waiting after flush_all charges
        // nothing extra because their cost was already drained from outstanding.
        let before = ep.stats().comm_time_ns;
        let _ = a.wait(&mut ep).unwrap();
        let _ = b.wait(&mut ep).unwrap();
        // Each wait re-charges its own cost — callers should use one style or the
        // other; here we only assert monotonicity.
        assert!(ep.stats().comm_time_ns >= before);
        ep.unlock_all();
    }

    #[test]
    #[should_panic(expected = "different access epoch")]
    fn waiting_across_epochs_panics() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::zero());
        ep.lock_all();
        let pending = ep.get(&w, 1, 0, 1).unwrap();
        ep.flush_all();
        ep.unlock_all();
        ep.lock_all();
        let _ = pending.wait(&mut ep);
    }

    #[test]
    fn stats_per_target_are_tracked() {
        let w = Window::from_parts(vec![vec![0u32; 8], vec![0u32; 8], vec![0u32; 8]]);
        let mut ep = Endpoint::new(0, 3, NetworkModel::zero());
        ep.lock_all();
        let _ = ep.get(&w, 1, 0, 4).unwrap().wait(&mut ep).unwrap();
        let _ = ep.get(&w, 2, 0, 2).unwrap().wait(&mut ep).unwrap();
        let _ = ep.get(&w, 2, 2, 2).unwrap().wait(&mut ep).unwrap();
        ep.unlock_all();
        assert_eq!(ep.stats().gets_per_target, vec![0, 1, 2]);
        assert_eq!(ep.stats().bytes_per_target, vec![0, 16, 16]);
    }

    #[test]
    fn without_faults_no_checksum_is_stamped() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        ep.lock_all();
        let pending = ep.get(&w, 1, 0, 2).unwrap();
        assert!(pending.expected_checksum.is_none());
        let _ = pending.wait(&mut ep).unwrap();
        ep.unlock_all();
        assert_eq!(ep.stats().fault_events(), 0);
    }

    #[test]
    fn transient_failure_charges_alpha_and_errors() {
        let w = window2();
        let net = NetworkModel::aries();
        let mut ep = Endpoint::new(0, 2, net).with_faults(FaultPlan::unrecoverable(1).injector(0));
        ep.lock_all();
        let err = ep.get(&w, 1, 0, 2).unwrap_err();
        assert_eq!(err, RmaError::Transient { target: 1 });
        assert_eq!(ep.stats().transient_failures, 1);
        assert_eq!(ep.stats().gets, 0, "a dropped message moves no bytes");
        assert!((ep.stats().comm_time_ns - net.alpha_ns).abs() < 1e-9);
        ep.unlock_all();
    }

    #[test]
    fn local_gets_never_fault() {
        let w = window2();
        let mut ep = Endpoint::new(1, 2, NetworkModel::aries())
            .with_faults(FaultPlan::unrecoverable(1).injector(1));
        ep.lock_all();
        for _ in 0..50 {
            let data = ep.get(&w, 1, 0, 2).unwrap().wait(&mut ep).unwrap();
            assert_eq!(&*data, &[10, 20]);
        }
        ep.unlock_all();
        assert_eq!(ep.stats().fault_events(), 0);
    }

    #[test]
    fn corrupted_transfer_is_detected_and_charged() {
        let w = window2();
        let plan = FaultPlan {
            corrupt_p: 1.0,
            ..FaultPlan::reliable(3)
        };
        let net = NetworkModel::aries();
        let cost = net.remote_cost_ns(2 * 4);
        let mut ep = Endpoint::new(0, 2, net).with_faults(plan.injector(0));
        ep.lock_all();
        let err = ep.get(&w, 1, 0, 2).unwrap().wait(&mut ep).unwrap_err();
        assert_eq!(err, RmaError::ChecksumMismatch { target: 1 });
        assert_eq!(ep.stats().checksum_failures, 1);
        // The corrupted bytes did cross the wire: full cost charged.
        assert!((ep.stats().comm_time_ns - cost).abs() < 1e-9);
        ep.unlock_all();
    }

    #[test]
    fn corrupted_get_map_poisons_the_fused_result_too() {
        let w = window2();
        let plan = FaultPlan {
            corrupt_p: 1.0,
            ..FaultPlan::reliable(3)
        };
        let mut ep = Endpoint::new(0, 2, NetworkModel::zero()).with_faults(plan.injector(0));
        ep.lock_all();
        let (pending, sum) = ep
            .get_map(&w, 1, 1, 3, |src| {
                (Arc::from(src), src.iter().copied().sum::<u32>())
            })
            .unwrap();
        // The fused computation saw the corrupted wire, not the clean source.
        assert_ne!(sum, 20 + 30 + 40);
        assert!(pending.wait(&mut ep).is_err());
        ep.unlock_all();
    }

    #[test]
    fn straggler_delay_multiplies_the_charge() {
        let w = window2();
        let plan = FaultPlan {
            delay_p: 1.0,
            delay_factor: 10.0,
            ..FaultPlan::reliable(4)
        };
        let net = NetworkModel::aries();
        let cost = net.remote_cost_ns(2 * 4);
        let mut ep = Endpoint::new(0, 2, net).with_faults(plan.injector(0));
        ep.lock_all();
        let data = ep.get(&w, 1, 0, 2).unwrap().wait(&mut ep).unwrap();
        assert_eq!(&*data, &[10, 20]);
        assert_eq!(ep.stats().delayed_gets, 1);
        assert!((ep.stats().comm_time_ns - cost * 10.0).abs() < 1e-6);
        ep.unlock_all();
    }

    #[test]
    fn straggler_past_the_timeout_errors_and_charges_the_wait() {
        let w = window2();
        let plan = FaultPlan {
            delay_p: 1.0,
            delay_factor: 100.0,
            ..FaultPlan::reliable(4)
        };
        let net = NetworkModel::aries();
        let cost = net.remote_cost_ns(2 * 4);
        let retry = RetryPolicy {
            timeout_ns: Some(cost * 2.0),
            ..RetryPolicy::default()
        };
        let mut ep = Endpoint::new(0, 2, net)
            .with_retry(retry)
            .with_faults(plan.injector(0));
        ep.lock_all();
        let err = ep.get(&w, 1, 0, 2).unwrap().wait(&mut ep).unwrap_err();
        assert!(matches!(err, RmaError::Timeout { target: 1, .. }));
        assert_eq!(ep.stats().timeouts, 1);
        // The caller waited out the full timeout, no more.
        assert!((ep.stats().comm_time_ns - cost * 2.0).abs() < 1e-6);
        ep.unlock_all();
    }

    #[test]
    fn retry_heals_transient_failures_and_charges_backoff() {
        let w = window2();
        // Fails often but recoverably; a generous attempt budget always heals.
        let plan = FaultPlan {
            get_failure_p: 0.5,
            ..FaultPlan::reliable(5)
        };
        let retry = RetryPolicy {
            max_attempts: 64,
            base_backoff_ns: 100.0,
            backoff_multiplier: 2.0,
            timeout_ns: None,
        };
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries())
            .with_retry(retry)
            .with_faults(plan.injector(0));
        ep.lock_all();
        let mut saw_retry = false;
        for _ in 0..50 {
            let data = ep.get_with_retry(&w, 1, 0, 3).unwrap();
            assert_eq!(&*data, &[10, 20, 30]);
            saw_retry |= ep.stats().retries > 0;
        }
        ep.unlock_all();
        assert!(saw_retry, "p=0.5 over 50 reads must retry at least once");
        assert_eq!(ep.stats().retries, ep.stats().transient_failures);
        assert!(ep.stats().backoff_ns > 0.0);
    }

    #[test]
    fn retry_recomputes_the_fused_result_on_clean_data() {
        let w = window2();
        let plan = FaultPlan {
            corrupt_p: 0.5,
            ..FaultPlan::reliable(6)
        };
        let retry = RetryPolicy {
            max_attempts: 64,
            ..RetryPolicy::default()
        };
        let mut ep = Endpoint::new(0, 2, NetworkModel::zero())
            .with_retry(retry)
            .with_faults(plan.injector(0));
        ep.lock_all();
        for _ in 0..30 {
            let (data, sum) = ep
                .get_map_with_retry(&w, 1, 1, 3, |src| {
                    (Arc::from(src), src.iter().copied().sum::<u32>())
                })
                .unwrap();
            // However many corrupted attempts preceded it, the returned pair
            // always comes from a verified-clean transfer.
            assert_eq!(&*data, &[20, 30, 40]);
            assert_eq!(sum, 20 + 30 + 40);
        }
        ep.unlock_all();
        assert!(ep.stats().checksum_failures > 0, "p=0.5 must corrupt some");
    }

    #[test]
    fn exhausted_retries_surface_a_chained_error() {
        let w = window2();
        let retry = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries())
            .with_retry(retry)
            .with_faults(FaultPlan::unrecoverable(7).injector(0));
        ep.lock_all();
        let err = ep.get_with_retry(&w, 1, 0, 2).unwrap_err();
        match err {
            RmaError::RetriesExhausted {
                target: 1,
                attempts: 3,
                last,
            } => assert_eq!(*last, RmaError::Transient { target: 1 }),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        assert_eq!(ep.stats().transient_failures, 3);
        assert_eq!(ep.stats().retries, 2);
        // Epoch hygiene: failed attempts leave nothing outstanding.
        ep.unlock_all();
    }

    #[test]
    fn issue_with_retry_survives_issue_time_drops() {
        let w = window2();
        let plan = FaultPlan {
            get_failure_p: 0.5,
            ..FaultPlan::reliable(15)
        };
        let retry = RetryPolicy {
            max_attempts: 64,
            base_backoff_ns: 100.0,
            backoff_multiplier: 2.0,
            timeout_ns: None,
        };
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries())
            .with_retry(retry)
            .with_faults(plan.injector(0));
        ep.lock_all();
        for _ in 0..30 {
            // Every issue eventually succeeds, handing back a pending get the
            // pipelined worker can defer.
            let pending = ep.issue_with_retry(&w, 1, 0, 3).unwrap();
            let data = ep.wait_with_reissue(pending, &w, 1, 0, 3).unwrap();
            assert_eq!(&*data, &[10, 20, 30]);
        }
        ep.unlock_all();
        assert!(
            ep.stats().transient_failures > 0,
            "p=0.5 over 30 issues must drop at least once"
        );
        assert!(ep.stats().retries > 0);
    }

    #[test]
    fn wait_with_reissue_heals_corrupted_pipelined_gets() {
        let w = window2();
        let plan = FaultPlan {
            corrupt_p: 0.5,
            ..FaultPlan::reliable(11)
        };
        let retry = RetryPolicy {
            max_attempts: 64,
            base_backoff_ns: 100.0,
            backoff_multiplier: 2.0,
            timeout_ns: None,
        };
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries())
            .with_retry(retry)
            .with_faults(plan.injector(0));
        ep.lock_all();
        let mut healed = false;
        for _ in 0..30 {
            // Issue nonblockingly, then complete much later — the pipelined
            // shape — and the data must still always come out clean.
            let pending = match ep.get(&w, 1, 0, 3) {
                Ok(p) => p,
                Err(_) => continue, // transient at issue; not this test's path
            };
            let before = ep.stats().checksum_failures;
            let data = ep.wait_with_reissue(pending, &w, 1, 0, 3).unwrap();
            assert_eq!(&*data, &[10, 20, 30]);
            healed |= ep.stats().checksum_failures > before;
        }
        ep.unlock_all();
        assert!(
            healed,
            "p=0.5 over 30 pipelined reads must heal at least once"
        );
        assert!(ep.stats().backoff_ns > 0.0, "healing pays the same backoff");
    }

    #[test]
    fn wait_with_reissue_exhausts_cleanly_on_unrecoverable_faults() {
        let w = window2();
        let plan = FaultPlan {
            corrupt_p: 1.0,
            ..FaultPlan::reliable(12)
        };
        let retry = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries())
            .with_retry(retry)
            .with_faults(plan.injector(0));
        ep.lock_all();
        let pending = ep.get(&w, 1, 0, 2).unwrap();
        let err = ep.wait_with_reissue(pending, &w, 1, 0, 2).unwrap_err();
        match err {
            RmaError::RetriesExhausted {
                target: 1,
                attempts: 3,
                last,
            } => assert_eq!(*last, RmaError::ChecksumMismatch { target: 1 }),
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        // Every failed attempt completed its get: nothing outstanding.
        ep.unlock_all();
    }

    #[test]
    fn abandon_outstanding_lets_the_epoch_close_with_gets_in_flight() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        ep.lock_all();
        let _a = ep.get(&w, 1, 0, 2).unwrap();
        let _b = ep.get(&w, 1, 2, 2).unwrap();
        let charged = ep.abandon_outstanding();
        assert!(charged > 0.0, "abandoned gets still pay their wire cost");
        ep.unlock_all();
    }

    #[test]
    fn reliable_injector_changes_nothing_but_stamps_checksums() {
        let w = window2();
        let mut plain = Endpoint::new(0, 2, NetworkModel::aries());
        let mut faulted = Endpoint::new(0, 2, NetworkModel::aries())
            .with_faults(FaultPlan::reliable(8).injector(0));
        plain.lock_all();
        faulted.lock_all();
        for _ in 0..10 {
            let a = plain.get_with_retry(&w, 1, 0, 4).unwrap();
            let b = faulted.get_with_retry(&w, 1, 0, 4).unwrap();
            assert_eq!(&*a, &*b);
        }
        plain.unlock_all();
        faulted.unlock_all();
        assert_eq!(plain.stats(), faulted.stats());
        assert_eq!(faulted.stats().fault_events(), 0);
    }
}
