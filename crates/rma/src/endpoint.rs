//! Per-rank RMA access endpoint: epochs, one-sided gets, flush semantics and the
//! overlap (double-buffering) credit used by the asynchronous algorithm.

use crate::network::NetworkModel;
use crate::stats::RankStats;
use crate::window::Window;
use std::sync::Arc;

/// A one-sided get that has been issued but not yet completed by a flush.
///
/// As in MPI-3 RMA, the target buffer must not be read before the operation is
/// completed; [`PendingGet::wait`] performs the per-operation flush and hands the
/// data out, and [`Endpoint::flush_all`] completes every outstanding operation.
///
/// The transferred data lives in a shared `Arc<[T]>` buffer — the single
/// allocation of the transfer — so downstream layers (the CLaMPI cache) can
/// retain it with a refcount bump instead of copying the payload again.
#[derive(Debug)]
pub struct PendingGet<T> {
    data: Arc<[T]>,
    cost_ns: f64,
    epoch: u64,
}

impl<T> PendingGet<T> {
    /// Completes this get (an `MPI_Win_flush` scoped to the operation), charging its
    /// modeled cost to the endpoint, and returns the transferred data.
    pub fn wait(self, ep: &mut Endpoint) -> Arc<[T]> {
        assert_eq!(
            self.epoch, ep.epoch_counter,
            "PendingGet completed in a different access epoch than it was issued in"
        );
        ep.charge(self.cost_ns);
        ep.stats.flushes += 1;
        ep.network.maybe_inject(self.cost_ns);
        self.data
    }

    /// The modeled cost of this get, in nanoseconds (available before completion so
    /// callers can reason about prefetch depth).
    pub fn cost_ns(&self) -> f64 {
        self.cost_ns
    }

    /// Number of elements transferred.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the transfer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Per-rank access object for issuing one-sided operations.
///
/// The endpoint owns the rank's communication statistics and the overlap credit used
/// to model the paper's double-buffering optimization: computation time reported via
/// [`Endpoint::note_compute_ns`] can hide the latency of gets completed afterwards.
#[derive(Debug)]
pub struct Endpoint {
    rank: usize,
    ranks: usize,
    network: NetworkModel,
    stats: RankStats,
    epoch_open: bool,
    epoch_counter: u64,
    overlap_credit_ns: f64,
    outstanding_ns: f64,
}

impl Endpoint {
    /// Creates the endpoint of `rank` out of `ranks` total, using the given network
    /// model.
    pub fn new(rank: usize, ranks: usize, network: NetworkModel) -> Self {
        Self {
            rank,
            ranks,
            network,
            stats: RankStats::new(ranks),
            epoch_open: false,
            epoch_counter: 0,
            overlap_credit_ns: 0.0,
            outstanding_ns: 0.0,
        }
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The network model in use.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Starts a passive-target access epoch (`MPI_Win_lock_all`). Not a lock and not
    /// a synchronization — it only marks the begin of the epoch, exactly as the
    /// paper points out.
    pub fn lock_all(&mut self) {
        assert!(!self.epoch_open, "access epoch already open");
        self.epoch_open = true;
        self.epoch_counter += 1;
    }

    /// Ends the access epoch (`MPI_Win_unlock_all`); a local operation.
    pub fn unlock_all(&mut self) {
        assert!(self.epoch_open, "no access epoch open");
        assert_eq!(
            self.outstanding_ns, 0.0,
            "access epoch closed with un-flushed gets outstanding"
        );
        self.epoch_open = false;
    }

    /// Whether an access epoch is currently open.
    pub fn epoch_open(&self) -> bool {
        self.epoch_open
    }

    /// Issues a one-sided get of `len` elements at `offset` in the region exposed by
    /// `target` in `window`. Must be called inside an access epoch. The returned
    /// handle must be completed with [`PendingGet::wait`] before the data is used.
    ///
    /// A get targeting the caller's own rank is still legal in MPI; it is counted as
    /// a local read and charged the local access cost, not the network cost.
    pub fn get<T: Copy + Send + Sync>(
        &mut self,
        window: &Window<T>,
        target: usize,
        offset: usize,
        len: usize,
    ) -> PendingGet<T> {
        self.get_map(window, target, offset, len, |src| (Arc::from(src), ()))
            .0
    }

    /// Issues a one-sided get whose data transfer is performed by `transfer`:
    /// the closure receives the exposed source region (the simulator's wire)
    /// and must return the landed buffer plus an auxiliary result computed
    /// during the transfer. This is the hook for *fused* transfers — e.g. the
    /// copy+intersect kernel that counts an intersection against a local row
    /// in the same pass that lands the remote row in the cache buffer —
    /// without giving callers unmetered access to remote memory. Cost
    /// accounting, epochs and statistics are identical to [`Endpoint::get`].
    pub fn get_map<T: Copy + Send + Sync, R>(
        &mut self,
        window: &Window<T>,
        target: usize,
        offset: usize,
        len: usize,
        transfer: impl FnOnce(&[T]) -> (Arc<[T]>, R),
    ) -> (PendingGet<T>, R) {
        assert!(self.epoch_open, "RMA get issued outside an access epoch");
        let (data, result) = transfer(window.exposed(target, offset, len));
        // A hard check, not a debug assertion: a short or long landed buffer
        // would be cached under this get's key and served as wrong-length
        // "hits" forever after — silent corruption in release builds.
        assert_eq!(data.len(), len, "transfer must land the full region");
        let bytes = len * window.element_size();
        let cost_ns = if target == self.rank {
            self.stats.record_local(self.network.local_cost_ns(bytes));
            0.0
        } else {
            self.stats.record_get(target, bytes);
            self.network.remote_cost_ns(bytes)
        };
        self.outstanding_ns += cost_ns;
        (
            PendingGet {
                data,
                cost_ns,
                epoch: self.epoch_counter,
            },
            result,
        )
    }

    /// Reads the caller's own exposed region directly (no get, no charge beyond the
    /// local access cost). This is the "locally owned partition" fast path.
    pub fn local_read<'w, T: Copy + Send + Sync>(
        &mut self,
        window: &'w Window<T>,
        offset: usize,
        len: usize,
    ) -> &'w [T] {
        let bytes = len * window.element_size();
        self.stats.record_local(self.network.local_cost_ns(bytes));
        &window.local_part(self.rank)[offset..offset + len]
    }

    /// Records `ns` nanoseconds of computation that future get completions may be
    /// overlapped with (the double-buffering credit). Calling this is the worker's
    /// way of saying "while that get was in flight, I was busy computing".
    pub fn note_compute_ns(&mut self, ns: f64) {
        self.overlap_credit_ns += ns;
    }

    /// Completes all outstanding operations (`MPI_Win_flush_all`) and charges their
    /// cost. Returns the charged (non-overlapped) nanoseconds.
    pub fn flush_all(&mut self) -> f64 {
        assert!(self.epoch_open, "flush outside an access epoch");
        let cost = std::mem::replace(&mut self.outstanding_ns, 0.0);
        self.stats.flushes += 1;
        self.charge_raw(cost)
    }

    /// Records a read that was served from a local cache instead of the network
    /// (used by the CLaMPI layer for hits).
    pub fn record_cache_hit(&mut self, bytes: usize) {
        self.stats.record_local(self.network.local_cost_ns(bytes));
    }

    /// Charges the cost of one completed get, consuming overlap credit first.
    fn charge(&mut self, cost_ns: f64) {
        // The cost was added to `outstanding_ns` when the get was issued; completing
        // it individually removes it from the outstanding pool.
        self.outstanding_ns = (self.outstanding_ns - cost_ns).max(0.0);
        self.charge_raw(cost_ns);
    }

    fn charge_raw(&mut self, cost_ns: f64) -> f64 {
        let overlapped = cost_ns.min(self.overlap_credit_ns);
        let charged = cost_ns - overlapped;
        self.overlap_credit_ns -= overlapped;
        self.stats.record_completion(charged, overlapped);
        charged
    }

    /// The statistics accumulated so far.
    pub fn stats(&self) -> &RankStats {
        &self.stats
    }

    /// Consumes the endpoint and returns its statistics (typically at the end of the
    /// rank's computation).
    pub fn into_stats(self) -> RankStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window2() -> Window<u32> {
        Window::from_parts(vec![vec![1, 2, 3, 4], vec![10, 20, 30, 40, 50]])
    }

    #[test]
    fn get_and_wait_transfers_data_and_charges_cost() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        ep.lock_all();
        let pending = ep.get(&w, 1, 1, 3);
        assert_eq!(pending.len(), 3);
        let data = pending.wait(&mut ep);
        assert_eq!(&*data, &[20, 30, 40]);
        assert_eq!(ep.stats().gets, 1);
        assert_eq!(ep.stats().bytes, 12);
        assert!(ep.stats().comm_time_ns > 0.0);
        ep.unlock_all();
    }

    #[test]
    #[should_panic(expected = "outside an access epoch")]
    fn get_outside_epoch_panics() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        let _ = ep.get(&w, 1, 0, 1);
    }

    #[test]
    #[should_panic(expected = "un-flushed gets outstanding")]
    fn closing_epoch_with_outstanding_gets_panics() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        ep.lock_all();
        let _pending = ep.get(&w, 1, 0, 1);
        ep.unlock_all();
    }

    #[test]
    fn self_targeted_get_is_a_local_read() {
        let w = window2();
        let mut ep = Endpoint::new(1, 2, NetworkModel::aries());
        ep.lock_all();
        let data = ep.get(&w, 1, 0, 2).wait(&mut ep);
        assert_eq!(&*data, &[10, 20]);
        assert_eq!(ep.stats().gets, 0);
        assert_eq!(ep.stats().local_reads, 1);
        assert_eq!(ep.stats().comm_time_ns, 0.0);
        ep.unlock_all();
    }

    #[test]
    fn local_read_returns_borrowed_slice() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        assert_eq!(ep.local_read(&w, 1, 2), &[2, 3]);
        assert_eq!(ep.stats().local_reads, 1);
    }

    #[test]
    fn get_map_runs_the_transfer_on_the_exposed_region() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        ep.lock_all();
        // A fused transfer: land the region and compute a sum in the same pass.
        let (pending, sum) = ep.get_map(&w, 1, 1, 3, |src| {
            (Arc::from(src), src.iter().copied().sum::<u32>())
        });
        assert_eq!(sum, 20 + 30 + 40);
        let data = pending.wait(&mut ep);
        assert_eq!(&*data, &[20, 30, 40]);
        // Identical accounting to a plain get.
        assert_eq!(ep.stats().gets, 1);
        assert_eq!(ep.stats().bytes, 12);
        ep.unlock_all();
    }

    #[test]
    fn overlap_credit_hides_communication() {
        let w = window2();
        let net = NetworkModel::aries();
        let cost = net.remote_cost_ns(4 * 4);
        let mut ep = Endpoint::new(0, 2, net);
        ep.lock_all();
        let pending = ep.get(&w, 1, 0, 4);
        // Pretend we computed longer than the get takes.
        ep.note_compute_ns(cost * 2.0);
        let _ = pending.wait(&mut ep);
        assert_eq!(ep.stats().comm_time_ns, 0.0);
        assert!((ep.stats().overlapped_ns - cost).abs() < 1e-9);
        ep.unlock_all();

        // Without credit the same get is charged in full.
        let mut ep2 = Endpoint::new(0, 2, NetworkModel::aries());
        ep2.lock_all();
        let _ = ep2.get(&w, 1, 0, 4).wait(&mut ep2);
        assert!((ep2.stats().comm_time_ns - cost).abs() < 1e-9);
        ep2.unlock_all();
    }

    #[test]
    fn partial_overlap_charges_the_remainder() {
        let w = window2();
        let net = NetworkModel::aries();
        let cost = net.remote_cost_ns(4 * 4);
        let mut ep = Endpoint::new(0, 2, net);
        ep.lock_all();
        let pending = ep.get(&w, 1, 0, 4);
        ep.note_compute_ns(cost / 2.0);
        let _ = pending.wait(&mut ep);
        assert!((ep.stats().comm_time_ns - cost / 2.0).abs() < 1e-6);
        ep.unlock_all();
    }

    #[test]
    fn flush_all_completes_everything() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        ep.lock_all();
        let a = ep.get(&w, 1, 0, 1);
        let b = ep.get(&w, 1, 1, 1);
        let charged = ep.flush_all();
        assert!(charged > 0.0);
        // The handles were issued in this epoch; waiting after flush_all charges
        // nothing extra because their cost was already drained from outstanding.
        let before = ep.stats().comm_time_ns;
        let _ = a.wait(&mut ep);
        let _ = b.wait(&mut ep);
        // Each wait re-charges its own cost — callers should use one style or the
        // other; here we only assert monotonicity.
        assert!(ep.stats().comm_time_ns >= before);
        ep.unlock_all();
    }

    #[test]
    #[should_panic(expected = "different access epoch")]
    fn waiting_across_epochs_panics() {
        let w = window2();
        let mut ep = Endpoint::new(0, 2, NetworkModel::zero());
        ep.lock_all();
        let pending = ep.get(&w, 1, 0, 1);
        ep.flush_all();
        ep.unlock_all();
        ep.lock_all();
        let _ = pending.wait(&mut ep);
    }

    #[test]
    fn stats_per_target_are_tracked() {
        let w = Window::from_parts(vec![vec![0u32; 8], vec![0u32; 8], vec![0u32; 8]]);
        let mut ep = Endpoint::new(0, 3, NetworkModel::zero());
        ep.lock_all();
        let _ = ep.get(&w, 1, 0, 4).wait(&mut ep);
        let _ = ep.get(&w, 2, 0, 2).wait(&mut ep);
        let _ = ep.get(&w, 2, 2, 2).wait(&mut ep);
        ep.unlock_all();
        assert_eq!(ep.stats().gets_per_target, vec![0, 1, 2]);
        assert_eq!(ep.stats().bytes_per_target, vec![0, 16, 16]);
    }
}
