//! Deterministic fault injection and the error/retry vocabulary of the
//! self-healing remote-read path.
//!
//! The simulated network of [`crate::network`] is perfectly reliable; real RMA
//! fabrics are not. This module adds a *seedable* fault model so every layer
//! above the endpoint can be exercised against transient get failures,
//! stragglers, corrupted transfer buffers and cache misbehaviour — without a
//! single nondeterministic bit: every fault decision is a pure hash of
//! `(seed, rank, per-rank event index)`, so a failing schedule is reproduced
//! exactly by re-running with the same [`FaultPlan`], regardless of OS thread
//! interleaving.
//!
//! The pieces:
//!
//! * [`FaultPlan`] — the serializable description of a fault schedule: a seed
//!   plus one probability per fault class. CI's randomized chaos job uploads
//!   the failing plan's JSON so the schedule can be replayed locally.
//! * [`FaultInjector`] — the per-rank decision stream derived from a plan.
//! * [`RmaError`] — what a remote read can report instead of panicking.
//! * [`RetryPolicy`] — attempts, exponential backoff and completion timeout;
//!   carried by the endpoint so backoff is charged through the α+βs cost
//!   accounting like any other communication time.
//! * [`checksum`] / [`corrupt_copy`] — the transfer-integrity primitives: a
//!   cheap FNV-1a stamp computed over the source window region, and the
//!   byte-flipping corruption the injector applies to in-flight buffers and
//!   cache entries. Corruption is *real* — the landed bytes are wrong, so a
//!   read path that skipped verification would produce wrong counts, and the
//!   chaos suite genuinely proves detection and healing.
//!
//! # Paper map
//!
//! The paper assumes a reliable Cray Aries fabric; this module is the
//! robustness layer the ROADMAP's long-lived-service direction needs on top of
//! it. The one paper-anchored behaviour is the degraded mode: a cache that
//! keeps corrupting entries is quarantined and every read falls back to the
//! plain two-get protocol — i.e. a sick cache degrades to the paper's
//! *non-cached* baseline (Figure 9's comparison point) instead of wrong
//! answers.

use std::sync::Arc;

/// Runtime failure of a remote read. Programming errors (epoch misuse, out of
/// bounds offsets) remain panics, exactly like an `MPI_ERR_RMA_SYNC` abort;
/// `RmaError` covers the failures a production run must survive.
#[derive(Debug, Clone, PartialEq)]
pub enum RmaError {
    /// The get failed at issue time (a dropped or NACKed message). The failed
    /// attempt still pays the per-message setup latency α.
    Transient {
        /// Target rank of the failed get.
        target: usize,
    },
    /// The get's completion exceeded [`RetryPolicy::timeout_ns`] (a straggler
    /// target). The caller is charged the full timeout it waited.
    Timeout {
        /// Target rank of the timed-out get.
        target: usize,
        /// Modeled nanoseconds the completion would have taken.
        waited_ns: f64,
        /// The timeout that cut it off.
        timeout_ns: f64,
    },
    /// The landed buffer does not match the checksum stamped at the source
    /// window (a corrupted transfer). The transfer cost was already charged.
    ChecksumMismatch {
        /// Target rank of the corrupted transfer.
        target: usize,
    },
    /// Every attempt allowed by the [`RetryPolicy`] failed; `last` is the
    /// final attempt's error.
    RetriesExhausted {
        /// Target rank of the abandoned read.
        target: usize,
        /// Number of attempts made.
        attempts: u32,
        /// The error of the last attempt.
        last: Box<RmaError>,
    },
}

impl std::fmt::Display for RmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmaError::Transient { target } => {
                write!(f, "transient RMA get failure towards rank {target}")
            }
            RmaError::Timeout {
                target,
                waited_ns,
                timeout_ns,
            } => write!(
                f,
                "RMA get towards rank {target} timed out ({waited_ns:.0} ns > {timeout_ns:.0} ns)"
            ),
            RmaError::ChecksumMismatch { target } => {
                write!(f, "checksum mismatch on transfer from rank {target}")
            }
            RmaError::RetriesExhausted {
                target,
                attempts,
                last,
            } => write!(
                f,
                "remote read towards rank {target} failed after {attempts} attempts: {last}"
            ),
        }
    }
}

impl std::error::Error for RmaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RmaError::RetriesExhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

/// Retry behaviour of the self-healing read path, carried by the
/// [`crate::Endpoint`] and configured per run.
///
/// A failed attempt is retried after an exponential backoff of
/// `base_backoff_ns · backoff_multiplier^(retry − 1)` nanoseconds; the backoff
/// and the retried message's α+βs cost are both charged to the rank's
/// communication time, so fault recovery shows up honestly in the simulated
/// timings.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per read (first try included). Clamped to at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, in nanoseconds.
    pub base_backoff_ns: f64,
    /// Multiplier applied to the backoff after each further failure.
    pub backoff_multiplier: f64,
    /// Completion timeout in nanoseconds; a get whose modeled completion
    /// (including straggler delay) exceeds it fails with [`RmaError::Timeout`]
    /// and is reissued. `None` waits forever (stragglers stretch the timing
    /// but never fail the read).
    pub timeout_ns: Option<f64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_ns: 1_000.0,
            backoff_multiplier: 2.0,
            timeout_ns: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the pre-fault-injection behaviour: the
    /// first error surfaces immediately).
    pub fn no_retries() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Backoff charged before retry number `retry` (1-based), in nanoseconds.
    pub fn backoff_ns(&self, retry: u32) -> f64 {
        self.base_backoff_ns * self.backoff_multiplier.powi(retry.saturating_sub(1) as i32)
    }
}

/// A complete, serializable description of a fault schedule: a seed plus one
/// probability per fault class. Two runs with the same plan, rank count and
/// input observe the *identical* fault sequence.
///
/// Probabilities are per decision point: per get attempt for
/// `get_failure_p` / `corrupt_p`, per completion for `delay_p`, per cache
/// insert for `cache_reject_p`, and per cache lookup for `cache_corrupt_p`.
/// A probability of `1.0` makes the class unrecoverable (every retry fails
/// too), which is how the chaos suite proves clean [`RmaError`] surfacing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic decision stream.
    pub seed: u64,
    /// P(transient failure) per get attempt.
    pub get_failure_p: f64,
    /// P(straggler delay) per get completion.
    pub delay_p: f64,
    /// Completion-cost multiplier of a delayed get (≥ 1).
    pub delay_factor: f64,
    /// P(corrupted transfer buffer) per get attempt.
    pub corrupt_p: f64,
    /// P(the cache refuses an insert) per insert.
    pub cache_reject_p: f64,
    /// P(an existing cache entry has rotted) per cached-window lookup.
    pub cache_corrupt_p: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful to exercise the checksummed read
    /// path itself without faults).
    pub fn reliable(seed: u64) -> Self {
        Self {
            seed,
            get_failure_p: 0.0,
            delay_p: 0.0,
            delay_factor: 1.0,
            corrupt_p: 0.0,
            cache_reject_p: 0.0,
            cache_corrupt_p: 0.0,
        }
    }

    /// Occasional faults of every class — the "weather" a long-lived service
    /// sees.
    pub fn light(seed: u64) -> Self {
        Self {
            get_failure_p: 0.02,
            delay_p: 0.02,
            delay_factor: 8.0,
            corrupt_p: 0.01,
            cache_reject_p: 0.05,
            cache_corrupt_p: 0.01,
            ..Self::reliable(seed)
        }
    }

    /// Frequent faults of every class — the chaos suite's stress plan.
    pub fn heavy(seed: u64) -> Self {
        Self {
            get_failure_p: 0.25,
            delay_p: 0.15,
            delay_factor: 50.0,
            corrupt_p: 0.15,
            cache_reject_p: 0.30,
            cache_corrupt_p: 0.20,
            ..Self::reliable(seed)
        }
    }

    /// Every get attempt fails: no retry budget can recover, so reads surface
    /// [`RmaError::RetriesExhausted`].
    pub fn unrecoverable(seed: u64) -> Self {
        Self {
            get_failure_p: 1.0,
            ..Self::reliable(seed)
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn is_reliable(&self) -> bool {
        self.get_failure_p == 0.0
            && self.delay_p == 0.0
            && self.corrupt_p == 0.0
            && self.cache_reject_p == 0.0
            && self.cache_corrupt_p == 0.0
    }

    /// Whether some class fails deterministically on every attempt, i.e. no
    /// retry budget can recover a read that hits it.
    pub fn is_recoverable(&self) -> bool {
        self.get_failure_p < 1.0 && self.corrupt_p < 1.0
    }

    /// Validates probabilities and the delay factor.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("get_failure_p", self.get_failure_p),
            ("delay_p", self.delay_p),
            ("corrupt_p", self.corrupt_p),
            ("cache_reject_p", self.cache_reject_p),
            ("cache_corrupt_p", self.cache_corrupt_p),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} is not a probability"));
            }
        }
        if !self.delay_factor.is_finite() || self.delay_factor < 1.0 {
            return Err(format!(
                "delay_factor = {} must be a finite multiplier ≥ 1",
                self.delay_factor
            ));
        }
        Ok(())
    }

    /// The decision stream of `rank` under this plan.
    pub fn injector(&self, rank: usize) -> FaultInjector {
        FaultInjector {
            plan: *self,
            rank: rank as u64,
            events: 0,
        }
    }
}

// The seed is serialized as a decimal *string*: the stub's JSON numbers are
// f64, which would silently round seeds above 2^53 and break reproduction.
impl serde::Serialize for FaultPlan {
    fn to_value(&self) -> serde::Value {
        serde::Value::object([
            ("seed", serde::Value::String(self.seed.to_string())),
            ("get_failure_p", self.get_failure_p.to_value()),
            ("delay_p", self.delay_p.to_value()),
            ("delay_factor", self.delay_factor.to_value()),
            ("corrupt_p", self.corrupt_p.to_value()),
            ("cache_reject_p", self.cache_reject_p.to_value()),
            ("cache_corrupt_p", self.cache_corrupt_p.to_value()),
        ])
    }
}

impl serde::Deserialize for FaultPlan {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::field(name, "a value"))
        };
        let seed = field("seed")?
            .as_str()
            .ok_or_else(|| serde::Error::field("seed", "a decimal string"))?
            .parse::<u64>()
            .map_err(|e| serde::Error::new(format!("seed: {e}")))?;
        let num = |name: &str| -> Result<f64, serde::Error> { f64::from_value(field(name)?) };
        let plan = FaultPlan {
            seed,
            get_failure_p: num("get_failure_p")?,
            delay_p: num("delay_p")?,
            delay_factor: num("delay_factor")?,
            corrupt_p: num("corrupt_p")?,
            cache_reject_p: num("cache_reject_p")?,
            cache_corrupt_p: num("cache_corrupt_p")?,
        };
        plan.validate().map_err(serde::Error::new)?;
        Ok(plan)
    }
}

/// Per-rank deterministic fault decision stream.
///
/// Each decision consumes one event index and hashes
/// `(seed, rank, event index)` through splitmix64, so the sequence depends
/// only on the plan and the order of this rank's own operations — never on
/// thread scheduling. Retries consume fresh events, so a transient fault
/// clears on a later attempt unless its probability is 1.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rank: u64,
    events: u64,
}

impl FaultInjector {
    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Next raw hash of the decision stream.
    fn next_hash(&mut self) -> u64 {
        self.events += 1;
        splitmix64(
            self.plan
                .seed
                .wrapping_add(splitmix64(self.rank))
                .wrapping_add(splitmix64(self.events.wrapping_mul(0xA24B_AED4_963E_E407))),
        )
    }

    /// Next uniform draw in `[0, 1)`.
    fn next_unit(&mut self) -> f64 {
        (self.next_hash() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether the next get attempt fails at issue time.
    pub fn get_failed(&mut self) -> bool {
        self.next_unit() < self.plan.get_failure_p
    }

    /// Corruption decision for the next transfer: `Some(salt)` flips a byte of
    /// the in-flight buffer.
    pub fn transfer_corruption(&mut self) -> Option<u64> {
        if self.next_unit() < self.plan.corrupt_p {
            Some(self.next_hash())
        } else {
            None
        }
    }

    /// Straggler decision for the next completion: `Some(factor)` multiplies
    /// the modeled completion cost.
    pub fn completion_delay(&mut self) -> Option<f64> {
        if self.next_unit() < self.plan.delay_p {
            Some(self.plan.delay_factor)
        } else {
            None
        }
    }

    /// Whether the cache refuses the next insert.
    pub fn cache_reject(&mut self) -> bool {
        self.next_unit() < self.plan.cache_reject_p
    }

    /// Rot decision for the next cache lookup: `Some(salt)` corrupts the
    /// resident entry (if any) before it is served.
    pub fn cache_corruption(&mut self) -> Option<u64> {
        if self.next_unit() < self.plan.cache_corrupt_p {
            Some(self.next_hash())
        } else {
            None
        }
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The raw bytes of a slice of plain scalars.
///
/// # Invariant
///
/// `T` must be a padding-free primitive (the RMA windows of this workspace
/// only ever hold `u32` vertex ids and `u64` offsets); reading padding bytes
/// would be undefined behaviour.
fn as_bytes<T: Copy>(data: &[T]) -> &[u8] {
    // SAFETY: `T: Copy` scalars per the invariant above; the length in bytes
    // is exactly the slice's size, and the lifetime is tied to the borrow.
    unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data)) }
}

/// FNV-1a checksum of a transfer buffer, stamped at the source window and
/// verified on completion and on cache hits. Cheap (one pass, no allocation)
/// and only computed when fault injection is enabled, so the fault-off hot
/// path is unchanged.
pub fn checksum<T: Copy>(data: &[T]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in as_bytes(data) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A corrupted copy of `data`: one byte (chosen by `salt`) is XOR-flipped, so
/// the copy is guaranteed to differ while keeping the same length. Empty
/// buffers are returned unchanged (there is nothing to corrupt).
pub fn corrupt_copy<T: Copy>(data: &[T], salt: u64) -> Arc<[T]> {
    let mut copy: Vec<T> = data.to_vec();
    let nbytes = std::mem::size_of_val(&copy[..]);
    if nbytes > 0 {
        let idx = (salt % nbytes as u64) as usize;
        // SAFETY: same padding-free-scalar invariant as `as_bytes`; `idx` is
        // in bounds and the Vec is uniquely owned.
        unsafe {
            *copy.as_mut_ptr().cast::<u8>().add(idx) ^= 0xA5;
        }
    }
    Arc::from(copy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_is_deterministic_per_rank() {
        let plan = FaultPlan::heavy(42);
        let mut a = plan.injector(3);
        let mut b = plan.injector(3);
        for _ in 0..200 {
            assert_eq!(a.get_failed(), b.get_failed());
            assert_eq!(a.transfer_corruption(), b.transfer_corruption());
            assert_eq!(a.completion_delay(), b.completion_delay());
            assert_eq!(a.cache_reject(), b.cache_reject());
            assert_eq!(a.cache_corruption(), b.cache_corruption());
        }
    }

    #[test]
    fn ranks_and_seeds_draw_different_streams() {
        let plan = FaultPlan::heavy(42);
        let seq =
            |mut inj: FaultInjector| -> Vec<bool> { (0..64).map(|_| inj.get_failed()).collect() };
        assert_ne!(seq(plan.injector(0)), seq(plan.injector(1)));
        assert_ne!(
            seq(FaultPlan::heavy(1).injector(0)),
            seq(FaultPlan::heavy(2).injector(0))
        );
    }

    #[test]
    fn reliable_plan_injects_nothing() {
        let mut inj = FaultPlan::reliable(7).injector(0);
        for _ in 0..100 {
            assert!(!inj.get_failed());
            assert!(inj.transfer_corruption().is_none());
            assert!(inj.completion_delay().is_none());
            assert!(!inj.cache_reject());
            assert!(inj.cache_corruption().is_none());
        }
        assert!(FaultPlan::reliable(7).is_reliable());
        assert!(!FaultPlan::light(7).is_reliable());
    }

    #[test]
    fn unrecoverable_plan_fails_every_attempt() {
        let mut inj = FaultPlan::unrecoverable(9).injector(2);
        assert!((0..100).all(|_| inj.get_failed()));
        assert!(!FaultPlan::unrecoverable(9).is_recoverable());
        assert!(FaultPlan::heavy(9).is_recoverable());
    }

    #[test]
    fn checksum_detects_byte_flips() {
        let data: Vec<u32> = (0..100).collect();
        let stamp = checksum(&data);
        for salt in [0u64, 1, 17, 399, u64::MAX] {
            let bad = corrupt_copy(&data, salt);
            assert_eq!(bad.len(), data.len(), "corruption preserves length");
            assert_ne!(&*bad, &data[..], "salt {salt} must change the data");
            assert_ne!(checksum(&bad), stamp, "salt {salt} must change the sum");
        }
        assert_eq!(checksum(&data), stamp, "source is untouched");
    }

    #[test]
    fn empty_buffers_are_uncorruptible() {
        let data: Vec<u64> = Vec::new();
        let copy = corrupt_copy(&data, 5);
        assert!(copy.is_empty());
        assert_eq!(checksum(&data), checksum(&copy));
    }

    #[test]
    fn plan_json_roundtrips_including_large_seeds() {
        // A seed above 2^53 would be rounded by the f64 JSON number model;
        // the string encoding must preserve it bit-exactly.
        let plan = FaultPlan::heavy(u64::MAX - 12345);
        let text = serde::json::to_string(&plan).expect("finite fields");
        let back: FaultPlan = serde::json::from_str(&text).expect("roundtrip");
        assert_eq!(back, plan);
    }

    #[test]
    fn plan_validation_rejects_bad_fields() {
        let mut plan = FaultPlan::light(1);
        plan.get_failure_p = 1.5;
        assert!(plan.validate().is_err());
        let mut plan = FaultPlan::light(1);
        plan.delay_factor = 0.5;
        assert!(plan.validate().is_err());
        assert!(FaultPlan::heavy(1).validate().is_ok());
    }

    #[test]
    fn backoff_grows_exponentially() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff_ns: 100.0,
            backoff_multiplier: 2.0,
            timeout_ns: None,
        };
        assert_eq!(policy.backoff_ns(1), 100.0);
        assert_eq!(policy.backoff_ns(2), 200.0);
        assert_eq!(policy.backoff_ns(3), 400.0);
        assert_eq!(RetryPolicy::no_retries().max_attempts, 1);
    }

    #[test]
    fn errors_display_and_chain() {
        let last = RmaError::ChecksumMismatch { target: 1 };
        let err = RmaError::RetriesExhausted {
            target: 1,
            attempts: 4,
            last: Box::new(last.clone()),
        };
        assert!(err.to_string().contains("after 4 attempts"));
        assert!(err.to_string().contains("checksum mismatch"));
        let source = std::error::Error::source(&err).expect("chained");
        assert_eq!(source.to_string(), last.to_string());
    }
}
