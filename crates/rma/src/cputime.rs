//! Per-thread CPU time measurement.
//!
//! The simulator runs every MPI rank as a thread of one process. When the host has
//! fewer cores than ranks, the threads are time-sliced and *wall-clock* time no
//! longer measures the work a rank performs — it mostly measures waiting for the
//! scheduler. Per-rank computation is therefore measured with the thread's CPU time
//! (`CLOCK_THREAD_CPUTIME_ID`), which is what the rank would have spent on a
//! dedicated node, and combined with the modeled communication time by the
//! algorithm crates.

/// A monotone per-thread CPU-time stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct ThreadTimer {
    start_ns: u64,
    /// Wall-clock fallback used if the OS clock is unavailable.
    wall_start: std::time::Instant,
    cpu_clock_ok: bool,
}

impl ThreadTimer {
    /// Starts a stopwatch on the calling thread.
    pub fn start() -> Self {
        let (start_ns, cpu_clock_ok) = match thread_cpu_time_ns() {
            Some(ns) => (ns, true),
            None => (0, false),
        };
        Self {
            start_ns,
            wall_start: std::time::Instant::now(),
            cpu_clock_ok,
        }
    }

    /// Nanoseconds of CPU time the calling thread has consumed since
    /// [`ThreadTimer::start`] (falls back to wall-clock time if the per-thread CPU
    /// clock is unavailable on this platform).
    pub fn elapsed_ns(&self) -> u64 {
        if self.cpu_clock_ok {
            if let Some(now) = thread_cpu_time_ns() {
                return now.saturating_sub(self.start_ns);
            }
        }
        self.wall_start.elapsed().as_nanos() as u64
    }
}

/// Reads the calling thread's cumulative CPU time in nanoseconds, if the platform
/// exposes it.
#[cfg(unix)]
pub fn thread_cpu_time_ns() -> Option<u64> {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `ts` is a valid, writable timespec and the clock id is a constant the
    // platform defines; the call writes the timestamp and returns 0 on success.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc == 0 {
        Some(ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64)
    } else {
        None
    }
}

/// Non-Unix fallback: the per-thread CPU clock is not available.
#[cfg(not(unix))]
pub fn thread_cpu_time_ns() -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_clock_is_available_on_linux() {
        assert!(thread_cpu_time_ns().is_some());
    }

    #[test]
    fn timer_advances_with_work() {
        let timer = ThreadTimer::start();
        // Burn a little CPU.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(i * i);
        }
        std::hint::black_box(acc);
        assert!(timer.elapsed_ns() > 0);
    }

    #[test]
    fn sleeping_does_not_count_as_cpu_time() {
        let timer = ThreadTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(50));
        // CPU time during sleep must be far below the 50 ms wall time.
        assert!(
            timer.elapsed_ns() < 40_000_000,
            "got {} ns",
            timer.elapsed_ns()
        );
    }

    #[test]
    fn other_threads_do_not_contribute() {
        let timer = ThreadTimer::start();
        let handle = std::thread::spawn(|| {
            let mut acc = 0u64;
            for i in 0..5_000_000u64 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        let busy = handle.join().expect("busy-loop helper thread panicked");
        std::hint::black_box(busy);
        // The spawned thread's work must not appear in this thread's CPU time; allow
        // a generous margin for the join bookkeeping itself.
        assert!(
            timer.elapsed_ns() < 20_000_000,
            "got {} ns",
            timer.elapsed_ns()
        );
    }
}
