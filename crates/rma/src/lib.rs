//! Simulated MPI-3 RMA (Remote Memory Access) substrate.
//!
//! The paper's implementation runs on a Cray XC50 with cray-mpich and uses MPI-3
//! passive-target one-sided operations: every process exposes its CSR arrays in two
//! windows (`w_offsets`, `w_adj`), opens an access epoch with `MPI_Win_lock_all`,
//! issues `MPI_Get`s at will, and completes them with `MPI_Win_flush` — no
//! synchronization with the target is ever required. That hardware and MPI stack is
//! not available here, so this crate reproduces the *programming model* and the
//! *cost model* in-process:
//!
//! * Each MPI rank becomes a worker thread (spawned by [`runner::run_ranks`]).
//! * [`Window`] is a logically distributed, read-only memory region: one exposed
//!   slice per rank, accessible from any rank without involving the target —
//!   exactly the passive-target exposure epoch of MPI-3.
//! * [`Endpoint`] is the per-rank access object. [`Endpoint::get`] copies the
//!   requested region (the data transfer of `MPI_Get`) and records its modeled
//!   network cost; the data may only be used after [`PendingGet::wait`] or
//!   [`Endpoint::flush_all`], mirroring `MPI_Win_flush` semantics. Issuing a get
//!   outside an access epoch is a programming error and panics, like an MPI
//!   `MPI_ERR_RMA_SYNC` abort would.
//! * [`NetworkModel`] is the linear cost model `t(s) = α + β·s` the paper uses to
//!   reason about remote reads (Section IV-D1), with defaults calibrated to the
//!   Cray Aries numbers quoted in the paper (≈2–3 µs per get).
//! * Communication time is accumulated per rank in *virtual time* ([`RankStats`]),
//!   while computation is measured in real time by the caller; the two are combined
//!   by the algorithm crates when reporting per-rank running times. An optional
//!   injection mode spins for the modeled latency instead, for end-to-end wall-clock
//!   realism at small scales.
//!
//! What is deliberately preserved from the paper: the two-window exposure, the
//! get/flush discipline, per-get setup cost (which makes caching worthwhile even for
//! small entries), per-byte cost (which makes caching adjacency lists of high-degree
//! vertices especially worthwhile), and the complete absence of target-side
//! synchronization during computation.
//!
//! Transfers land in a shared `Arc<[T]>` buffer — the get's single
//! allocation, which the CLaMPI layer retains by refcount — and
//! [`Endpoint::get_map`] additionally exposes the transfer itself as a hook,
//! so a fused kernel can compute over the data in the same pass that copies
//! it off the (simulated) wire.
//!
//! # Paper map
//!
//! | Module | Paper location | What it reproduces |
//! |---|---|---|
//! | [`window`] | Fig. 3 (`w_offsets`, `w_adj`); §III-A | `MPI_Win_create` exposure: one read-only slice per rank |
//! | [`endpoint`] | Fig. 3 steps 4–5; §II-E | `MPI_Win_lock_all` epochs, `MPI_Get`, `MPI_Win_flush`, overlap credit |
//! | [`network`] | §IV-D1 | The linear cost model `t(s) = α + β·s`, calibrated to Cray Aries |
//! | [`runner`] | §IV-A | One thread per MPI rank, plus the barrier used only by the TriC baseline |
//! | [`stats`] | §IV-D | Per-rank gets/bytes/virtual-time counters the figures aggregate |
//! | [`cputime`] | §IV-C | Per-thread CPU time so oversubscribed hosts do not inflate compute |
//! | [`fault`] | — (robustness layer) | Seeded fault injection, retries with backoff, checksummed transfers; a sick cache degrades to the paper's non-cached baseline |

pub mod cputime;
pub mod endpoint;
pub mod fault;
pub mod network;
pub mod runner;
pub mod stats;
pub mod window;

pub use cputime::ThreadTimer;
pub use endpoint::{Endpoint, PendingGet};
pub use fault::{FaultInjector, FaultPlan, RetryPolicy, RmaError};
pub use network::NetworkModel;
pub use runner::{run_ranks, SimBarrier};
pub use stats::{CommStats, RankStats};
pub use window::{Window, WindowId};
