//! Per-rank and aggregated communication statistics.
//!
//! The evaluation reasons almost entirely in these terms: number of remote reads,
//! bytes moved, modeled communication time, and how those change with caching and
//! with the number of ranks.

/// Statistics accumulated by one rank's [`crate::Endpoint`].
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankStats {
    /// Number of RMA get operations issued.
    pub gets: u64,
    /// Total bytes transferred by gets.
    pub bytes: u64,
    /// Modeled communication time in nanoseconds (after overlap credit).
    pub comm_time_ns: f64,
    /// Modeled communication time that was hidden behind computation
    /// (the double-buffering benefit).
    pub overlapped_ns: f64,
    /// Number of flush operations.
    pub flushes: u64,
    /// Number of local (cache or owner-side) reads served without a network get.
    pub local_reads: u64,
    /// Modeled time spent on those local reads, in nanoseconds.
    pub local_time_ns: f64,
    /// Gets per target rank.
    pub gets_per_target: Vec<u64>,
    /// Bytes per target rank.
    pub bytes_per_target: Vec<u64>,
    /// Get attempts that were retried after a fault.
    pub retries: u64,
    /// Get attempts that failed at issue time (dropped/NACKed messages).
    pub transient_failures: u64,
    /// Get completions that exceeded the retry policy's timeout (stragglers
    /// that were reissued).
    pub timeouts: u64,
    /// Transfers (or cache hits) whose checksum did not match the source stamp.
    pub checksum_failures: u64,
    /// Get completions that were slowed by an injected straggler delay but
    /// finished within the timeout.
    pub delayed_gets: u64,
    /// Modeled nanoseconds spent in retry backoff (charged to `comm_time_ns`
    /// as well; tracked separately so reports can attribute it).
    pub backoff_ns: f64,
    /// Cache entries invalidated after failing checksum verification.
    pub cache_invalidations: u64,
    /// Cache inserts refused by an injected rejection.
    pub cache_rejections: u64,
    /// Reads served by the plain two-get path because the cache was
    /// quarantined (degraded, non-cached mode).
    pub cache_bypass_reads: u64,
}

impl RankStats {
    /// Creates empty statistics sized for `ranks` targets.
    pub fn new(ranks: usize) -> Self {
        Self {
            gets_per_target: vec![0; ranks],
            bytes_per_target: vec![0; ranks],
            ..Default::default()
        }
    }

    /// Records an issued get of `bytes` bytes towards `target`.
    pub fn record_get(&mut self, target: usize, bytes: usize) {
        self.gets += 1;
        self.bytes += bytes as u64;
        if target < self.gets_per_target.len() {
            self.gets_per_target[target] += 1;
            self.bytes_per_target[target] += bytes as u64;
        }
    }

    /// Records the charged (non-overlapped) and overlapped portions of a completed get.
    pub fn record_completion(&mut self, charged_ns: f64, overlapped_ns: f64) {
        self.comm_time_ns += charged_ns;
        self.overlapped_ns += overlapped_ns;
    }

    /// Records a read served locally (cache hit or owner-local access).
    pub fn record_local(&mut self, cost_ns: f64) {
        self.local_reads += 1;
        self.local_time_ns += cost_ns;
    }

    /// Total fault events this rank observed (zero on a fault-free run).
    pub fn fault_events(&self) -> u64 {
        self.retries
            + self.transient_failures
            + self.timeouts
            + self.checksum_failures
            + self.delayed_gets
            + self.cache_invalidations
            + self.cache_rejections
            + self.cache_bypass_reads
    }

    /// Merges another rank's statistics into this one (used for aggregation).
    pub fn merge(&mut self, other: &RankStats) {
        self.gets += other.gets;
        self.bytes += other.bytes;
        self.comm_time_ns += other.comm_time_ns;
        self.overlapped_ns += other.overlapped_ns;
        self.flushes += other.flushes;
        self.local_reads += other.local_reads;
        self.local_time_ns += other.local_time_ns;
        self.retries += other.retries;
        self.transient_failures += other.transient_failures;
        self.timeouts += other.timeouts;
        self.checksum_failures += other.checksum_failures;
        self.delayed_gets += other.delayed_gets;
        self.backoff_ns += other.backoff_ns;
        self.cache_invalidations += other.cache_invalidations;
        self.cache_rejections += other.cache_rejections;
        self.cache_bypass_reads += other.cache_bypass_reads;
        if self.gets_per_target.len() < other.gets_per_target.len() {
            self.gets_per_target.resize(other.gets_per_target.len(), 0);
            self.bytes_per_target
                .resize(other.bytes_per_target.len(), 0);
        }
        for (i, &g) in other.gets_per_target.iter().enumerate() {
            self.gets_per_target[i] += g;
        }
        for (i, &b) in other.bytes_per_target.iter().enumerate() {
            self.bytes_per_target[i] += b;
        }
    }

    /// Average modeled time per get, in nanoseconds.
    pub fn avg_get_time_ns(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            (self.comm_time_ns + self.overlapped_ns) / self.gets as f64
        }
    }
}

/// Aggregated communication statistics across all ranks of a run.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CommStats {
    /// Per-rank statistics, indexed by rank.
    pub per_rank: Vec<RankStats>,
}

impl CommStats {
    /// Wraps per-rank statistics.
    pub fn new(per_rank: Vec<RankStats>) -> Self {
        Self { per_rank }
    }

    /// Total gets across ranks.
    pub fn total_gets(&self) -> u64 {
        self.per_rank.iter().map(|r| r.gets).sum()
    }

    /// Total bytes across ranks.
    pub fn total_bytes(&self) -> u64 {
        self.per_rank.iter().map(|r| r.bytes).sum()
    }

    /// Maximum modeled communication time over ranks, in nanoseconds — the quantity
    /// that bounds the running time of a communication-dominated run.
    pub fn max_comm_time_ns(&self) -> f64 {
        self.per_rank
            .iter()
            .map(|r| r.comm_time_ns)
            .fold(0.0, f64::max)
    }

    /// Sum of modeled communication time over ranks, in nanoseconds.
    pub fn total_comm_time_ns(&self) -> f64 {
        self.per_rank.iter().map(|r| r.comm_time_ns).sum()
    }

    /// Total local (cache-served) reads across ranks.
    pub fn total_local_reads(&self) -> u64 {
        self.per_rank.iter().map(|r| r.local_reads).sum()
    }

    /// Total fault events across ranks (zero on a fault-free run).
    pub fn total_fault_events(&self) -> u64 {
        self.per_rank.iter().map(|r| r.fault_events()).sum()
    }

    /// Folds all ranks into a single [`RankStats`].
    pub fn merged(&self) -> RankStats {
        let mut out = RankStats::new(self.per_rank.len());
        for r in &self.per_rank {
            out.merge(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_get_tracks_per_target_counts() {
        let mut s = RankStats::new(4);
        s.record_get(1, 100);
        s.record_get(1, 50);
        s.record_get(3, 8);
        assert_eq!(s.gets, 3);
        assert_eq!(s.bytes, 158);
        assert_eq!(s.gets_per_target, vec![0, 2, 0, 1]);
        assert_eq!(s.bytes_per_target, vec![0, 150, 0, 8]);
    }

    #[test]
    fn completion_splits_charged_and_overlapped() {
        let mut s = RankStats::new(1);
        s.record_completion(1_000.0, 500.0);
        assert_eq!(s.comm_time_ns, 1_000.0);
        assert_eq!(s.overlapped_ns, 500.0);
    }

    #[test]
    fn avg_get_time_counts_total_latency() {
        let mut s = RankStats::new(1);
        assert_eq!(s.avg_get_time_ns(), 0.0);
        s.record_get(0, 10);
        s.record_get(0, 10);
        s.record_completion(3_000.0, 1_000.0);
        assert!((s.avg_get_time_ns() - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_all_fields() {
        let mut a = RankStats::new(2);
        a.record_get(0, 10);
        a.record_local(5.0);
        let mut b = RankStats::new(2);
        b.record_get(1, 20);
        b.record_completion(100.0, 0.0);
        a.merge(&b);
        assert_eq!(a.gets, 2);
        assert_eq!(a.bytes, 30);
        assert_eq!(a.local_reads, 1);
        assert_eq!(a.gets_per_target, vec![1, 1]);
        assert_eq!(a.comm_time_ns, 100.0);
    }

    #[test]
    fn merge_handles_different_target_widths() {
        let mut a = RankStats::new(1);
        let mut b = RankStats::new(3);
        b.record_get(2, 8);
        a.merge(&b);
        assert_eq!(a.gets_per_target, vec![0, 0, 1]);
    }

    #[test]
    fn fault_counters_merge_and_aggregate() {
        let mut a = RankStats::new(2);
        a.retries = 2;
        a.transient_failures = 1;
        a.backoff_ns = 3_000.0;
        let mut b = RankStats::new(2);
        b.timeouts = 1;
        b.checksum_failures = 4;
        b.delayed_gets = 2;
        b.cache_invalidations = 1;
        b.cache_rejections = 3;
        b.cache_bypass_reads = 5;
        assert_eq!(a.fault_events(), 3);
        assert_eq!(b.fault_events(), 16);
        let cs = CommStats::new(vec![a.clone(), b.clone()]);
        assert_eq!(cs.total_fault_events(), 19);
        a.merge(&b);
        assert_eq!(a.fault_events(), 19);
        assert_eq!(a.backoff_ns, 3_000.0);
        assert_eq!(RankStats::new(2).fault_events(), 0);
    }

    #[test]
    fn comm_stats_aggregates_over_ranks() {
        let mut r0 = RankStats::new(2);
        r0.record_get(1, 100);
        r0.record_completion(500.0, 0.0);
        let mut r1 = RankStats::new(2);
        r1.record_get(0, 200);
        r1.record_completion(700.0, 0.0);
        r1.record_local(10.0);
        let cs = CommStats::new(vec![r0, r1]);
        assert_eq!(cs.total_gets(), 2);
        assert_eq!(cs.total_bytes(), 300);
        assert_eq!(cs.max_comm_time_ns(), 700.0);
        assert_eq!(cs.total_comm_time_ns(), 1_200.0);
        assert_eq!(cs.total_local_reads(), 1);
        assert_eq!(cs.merged().gets, 2);
    }
}
