//! RMA windows: logically distributed, network-exposed memory regions.
//!
//! A [`Window`] corresponds to an `MPI_Win` created over one array per rank — in the
//! paper, `w_offsets` exposes every rank's `offsets` array and `w_adj` exposes every
//! rank's `adjacencies` array (Figure 3). Once created (the exposure epoch), the
//! window contents are immutable, which is exactly the property that lets CLaMPI run
//! in *always-cache* mode.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Globally unique identifier of a window; CLaMPI keys cache entries by window id.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct WindowId(pub u64);

static NEXT_WINDOW_ID: AtomicU64 = AtomicU64::new(0);

/// A read-only distributed memory region: one exposed slice per rank.
///
/// Cloning a `Window` is cheap (it clones `Arc`s); all clones refer to the same
/// exposed memory, so it can be handed to every rank thread.
#[derive(Debug, Clone)]
pub struct Window<T> {
    id: WindowId,
    parts: Arc<Vec<Arc<Vec<T>>>>,
}

impl<T: Copy + Send + Sync> Window<T> {
    /// Creates a window exposing one slice per rank. This corresponds to the
    /// collective `MPI_Win_create` performed during the (untimed) setup phase.
    pub fn from_parts(parts: Vec<Vec<T>>) -> Self {
        let id = WindowId(NEXT_WINDOW_ID.fetch_add(1, Ordering::Relaxed));
        Self {
            id,
            parts: Arc::new(parts.into_iter().map(Arc::new).collect()),
        }
    }

    /// The window's unique id.
    pub fn id(&self) -> WindowId {
        self.id
    }

    /// Number of ranks exposing memory in this window.
    pub fn ranks(&self) -> usize {
        self.parts.len()
    }

    /// Length (in elements) of the region exposed by `rank`.
    pub fn len_of(&self, rank: usize) -> usize {
        self.parts[rank].len()
    }

    /// Direct reference to the memory exposed by `rank`.
    ///
    /// This is what the *owner* of the region uses for local reads; remote ranks must
    /// go through [`crate::Endpoint::get`] so that the access is counted and charged.
    pub fn local_part(&self, rank: usize) -> &[T] {
        &self.parts[rank]
    }

    /// Size in bytes of one element.
    pub fn element_size(&self) -> usize {
        std::mem::size_of::<T>()
    }

    /// Total exposed bytes across all ranks.
    pub fn total_bytes(&self) -> usize {
        self.parts
            .iter()
            .map(|p| p.len() * std::mem::size_of::<T>())
            .sum()
    }

    /// The source slice of a get: `len` elements starting at `offset` in the
    /// region exposed by `target`, bounds-checked. Internal: this is the
    /// simulator's stand-in for the wire — [`crate::Endpoint`] reads it to
    /// perform the data transfer of `MPI_Get`.
    pub(crate) fn exposed(&self, target: usize, offset: usize, len: usize) -> &[T] {
        let part = &self.parts[target];
        assert!(
            offset + len <= part.len(),
            "RMA get out of bounds: offset {offset} + len {len} > exposed {} (window {:?}, target {target})",
            part.len(),
            self.id
        );
        &part[offset..offset + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_ids_are_unique() {
        let a = Window::from_parts(vec![vec![1u32]]);
        let b = Window::from_parts(vec![vec![1u32]]);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn exposes_one_part_per_rank() {
        let w = Window::from_parts(vec![vec![1u64, 2], vec![3u64], vec![]]);
        assert_eq!(w.ranks(), 3);
        assert_eq!(w.len_of(0), 2);
        assert_eq!(w.len_of(2), 0);
        assert_eq!(w.local_part(1), &[3]);
    }

    #[test]
    fn exposed_reads_the_right_slice() {
        let w = Window::from_parts(vec![vec![10u32, 20, 30, 40], vec![50u32, 60]]);
        assert_eq!(w.exposed(0, 1, 2), &[20, 30]);
        assert_eq!(w.exposed(1, 0, 2), &[50, 60]);
        assert_eq!(w.exposed(0, 4, 0), &[] as &[u32]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn exposed_out_of_bounds_panics() {
        let w = Window::from_parts(vec![vec![1u32, 2]]);
        w.exposed(0, 1, 5);
    }

    #[test]
    fn total_bytes_accounts_for_element_size() {
        let w = Window::from_parts(vec![vec![0u64; 10], vec![0u64; 6]]);
        assert_eq!(w.total_bytes(), 16 * 8);
        assert_eq!(w.element_size(), 8);
    }

    #[test]
    fn clones_share_the_same_memory_and_id() {
        let w = Window::from_parts(vec![vec![7u32; 4]]);
        let c = w.clone();
        assert_eq!(w.id(), c.id());
        assert_eq!(c.local_part(0), &[7, 7, 7, 7]);
    }
}
