//! Rank spawning and setup-phase synchronization.
//!
//! [`run_ranks`] plays the role of `mpirun`: it launches one worker thread per rank
//! and collects their results. The only synchronization primitive offered is
//! [`SimBarrier`], which exists for (a) the untimed setup phase and (b) the
//! bulk-synchronous TriC baseline, where each barrier is *charged* to the ranks via
//! the network model — the asynchronous algorithm of the paper never calls it during
//! computation.

use crate::network::NetworkModel;
use std::sync::Arc;
use std::sync::Barrier;

/// Spawns `ranks` worker threads, runs `body(rank)` on each, and returns the results
/// indexed by rank. Panics in any rank are propagated.
pub fn run_ranks<R, F>(ranks: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(ranks > 0, "need at least one rank");
    if ranks == 1 {
        return vec![body(0)];
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..ranks)
            .map(|rank| {
                let body = &body;
                scope.spawn(move || body(rank))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

/// A barrier over all ranks that also knows its modeled synchronization cost.
///
/// `wait()` blocks until every rank arrives (real synchronization between the rank
/// threads) and returns the modeled cost in nanoseconds of a dissemination barrier,
/// which bulk-synchronous algorithms add to their per-rank communication time.
#[derive(Debug, Clone)]
pub struct SimBarrier {
    inner: Arc<Barrier>,
    ranks: usize,
    network: NetworkModel,
}

impl SimBarrier {
    /// Creates a barrier for `ranks` ranks with the given network model.
    pub fn new(ranks: usize, network: NetworkModel) -> Self {
        Self {
            inner: Arc::new(Barrier::new(ranks)),
            ranks,
            network,
        }
    }

    /// Waits for all ranks; returns the modeled cost of the barrier in nanoseconds.
    pub fn wait(&self) -> f64 {
        self.inner.wait();
        self.network.barrier_cost_ns(self.ranks)
    }

    /// Number of ranks participating.
    pub fn ranks(&self) -> usize {
        self.ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_ranks_returns_results_in_rank_order() {
        let results = run_ranks(8, |rank| rank * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_ranks_single_rank_runs_inline() {
        assert_eq!(run_ranks(1, |r| r + 100), vec![100]);
    }

    #[test]
    fn run_ranks_actually_runs_concurrently() {
        // All ranks must be alive at the same time for a barrier to pass.
        let barrier = SimBarrier::new(4, NetworkModel::zero());
        let counter = AtomicUsize::new(0);
        run_ranks(4, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_is_an_error() {
        run_ranks(0, |_| ());
    }

    #[test]
    fn barrier_reports_modeled_cost() {
        let b = SimBarrier::new(16, NetworkModel::aries());
        let costs = run_ranks(16, |_| b.wait());
        let expected = NetworkModel::aries().barrier_cost_ns(16);
        assert!(costs.iter().all(|&c| (c - expected).abs() < 1e-9));
        assert_eq!(b.ranks(), 16);
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn panics_are_propagated() {
        run_ranks(2, |rank| {
            if rank == 1 {
                panic!("boom");
            }
        });
    }
}
