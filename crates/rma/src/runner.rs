//! Rank spawning and setup-phase synchronization.
//!
//! [`run_ranks`] plays the role of `mpirun`: it launches one worker thread per rank
//! and collects their results. The only synchronization primitive offered is
//! [`SimBarrier`], which exists for (a) the untimed setup phase and (b) the
//! bulk-synchronous TriC baseline, where each barrier is *charged* to the ranks via
//! the network model — the asynchronous algorithm of the paper never calls it during
//! computation.
//!
//! Both are panic-safe: a rank that panics no longer strands the surviving
//! ranks at a barrier. [`run_ranks`] catches each rank's panic and re-raises
//! the *first* one with its rank id once every thread has been joined, and a
//! [`SimBarrier`] whose run has a panicked rank is poisoned — every waiter
//! (current and future) panics with the origin rank instead of deadlocking,
//! the moral equivalent of an `MPI_Abort` taking the whole job down.

use crate::network::NetworkModel;
use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Shared record of the first panic within one [`run_ranks`] invocation,
/// distributed to the rank threads through a thread-local so concurrent
/// `run_ranks` calls (common under `cargo test`) cannot observe each other.
#[derive(Debug, Default)]
struct RunState {
    first_panic: Mutex<Option<(usize, String)>>,
}

impl RunState {
    fn record(&self, rank: usize, message: String) {
        let mut guard = recover(self.first_panic.lock());
        if guard.is_none() {
            *guard = Some((rank, message));
        }
    }

    fn panicked_rank(&self) -> Option<usize> {
        recover(self.first_panic.lock()).as_ref().map(|&(r, _)| r)
    }
}

thread_local! {
    static RUN_STATE: RefCell<Option<Arc<RunState>>> = const { RefCell::new(None) };
}

/// Recovers a mutex guard even if a previous holder panicked: every critical
/// section below leaves the state consistent before unwinding, so the standard
/// poison flag is noise here.
fn recover<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Spawns `ranks` worker threads, runs `body(rank)` on each, and returns the results
/// indexed by rank.
///
/// A panicking rank does not strand the others: its panic is caught, any
/// [`SimBarrier`] the surviving ranks are waiting at is poisoned, and after all
/// threads have been joined the first panic is re-raised as
/// `"rank {rank} panicked: {message}"`.
pub fn run_ranks<R, F>(ranks: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(ranks > 0, "need at least one rank");
    if ranks == 1 {
        return vec![body(0)];
    }
    let run = Arc::new(RunState::default());
    let results: Vec<Option<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..ranks)
            .map(|rank| {
                let body = &body;
                let run = Arc::clone(&run);
                scope.spawn(move || {
                    RUN_STATE.with(|s| *s.borrow_mut() = Some(Arc::clone(&run)));
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(rank)));
                    RUN_STATE.with(|s| *s.borrow_mut() = None);
                    match outcome {
                        Ok(value) => Some(value),
                        Err(payload) => {
                            run.record(rank, payload_message(payload.as_ref()));
                            None
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread infrastructure panicked"))
            .collect()
    });
    let first_panic = recover(run.first_panic.lock()).take();
    if let Some((rank, message)) = first_panic {
        panic!("rank {rank} panicked: {message}");
    }
    results
        .into_iter()
        .map(|r| r.expect("rank returned no result yet recorded no panic"))
        .collect()
}

#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: Option<usize>,
}

#[derive(Debug)]
struct BarrierInner {
    state: Mutex<BarrierState>,
    cv: Condvar,
}

/// A barrier over all ranks that also knows its modeled synchronization cost.
///
/// `wait()` blocks until every rank arrives (real synchronization between the rank
/// threads) and returns the modeled cost in nanoseconds of a dissemination barrier,
/// which bulk-synchronous algorithms add to their per-rank communication time.
///
/// The barrier is *poisonable*: while blocked, each waiter periodically checks
/// whether a sibling rank of its [`run_ranks`] invocation has panicked; if so
/// the barrier is marked poisoned with the origin rank and every waiter —
/// including ranks arriving later — panics instead of waiting forever for a
/// rank that will never come.
#[derive(Debug, Clone)]
pub struct SimBarrier {
    inner: Arc<BarrierInner>,
    ranks: usize,
    network: NetworkModel,
}

impl SimBarrier {
    /// Creates a barrier for `ranks` ranks with the given network model.
    pub fn new(ranks: usize, network: NetworkModel) -> Self {
        Self {
            inner: Arc::new(BarrierInner {
                state: Mutex::new(BarrierState {
                    arrived: 0,
                    generation: 0,
                    poisoned: None,
                }),
                cv: Condvar::new(),
            }),
            ranks,
            network,
        }
    }

    /// Waits for all ranks; returns the modeled cost of the barrier in nanoseconds.
    ///
    /// # Panics
    ///
    /// If a sibling rank panicked (see the type-level docs): the barrier is
    /// poisoned and `wait` panics with the origin rank id.
    pub fn wait(&self) -> f64 {
        let cost = self.network.barrier_cost_ns(self.ranks);
        let mut state = recover(self.inner.state.lock());
        Self::check_poison(&state);
        state.arrived += 1;
        if state.arrived == self.ranks {
            state.arrived = 0;
            state.generation += 1;
            self.inner.cv.notify_all();
            return cost;
        }
        let generation = state.generation;
        loop {
            state = self.block(state);
            Self::check_poison(&state);
            if state.generation != generation {
                return cost;
            }
            if let Some(rank) = RUN_STATE
                .with(|s| s.borrow().clone())
                .and_then(|run| run.panicked_rank())
            {
                state.poisoned = Some(rank);
                self.inner.cv.notify_all();
                Self::check_poison(&state);
            }
        }
    }

    /// Blocks on the condvar for one poll interval; the timeout exists solely so
    /// a stranded waiter can notice a panicked sibling and poison the barrier.
    fn block<'m>(&'m self, state: MutexGuard<'m, BarrierState>) -> MutexGuard<'m, BarrierState> {
        recover(
            self.inner
                .cv
                .wait_timeout(state, Duration::from_millis(2))
                .map(|(guard, _timeout)| guard)
                .map_err(|e| std::sync::PoisonError::new(e.into_inner().0)),
        )
    }

    fn check_poison(state: &BarrierState) {
        if let Some(rank) = state.poisoned {
            panic!("rank {rank} panicked; SimBarrier poisoned");
        }
    }

    /// Number of ranks participating.
    pub fn ranks(&self) -> usize {
        self.ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_ranks_returns_results_in_rank_order() {
        let results = run_ranks(8, |rank| rank * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn run_ranks_single_rank_runs_inline() {
        assert_eq!(run_ranks(1, |r| r + 100), vec![100]);
    }

    #[test]
    fn run_ranks_actually_runs_concurrently() {
        // All ranks must be alive at the same time for a barrier to pass.
        let barrier = SimBarrier::new(4, NetworkModel::zero());
        let counter = AtomicUsize::new(0);
        run_ranks(4, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_is_an_error() {
        run_ranks(0, |_| ());
    }

    #[test]
    fn barrier_reports_modeled_cost() {
        let b = SimBarrier::new(16, NetworkModel::aries());
        let costs = run_ranks(16, |_| b.wait());
        let expected = NetworkModel::aries().barrier_cost_ns(16);
        assert!(costs.iter().all(|&c| (c - expected).abs() < 1e-9));
        assert_eq!(b.ranks(), 16);
    }

    #[test]
    #[should_panic(expected = "rank 1 panicked: boom")]
    fn panics_are_propagated_with_the_rank_id() {
        run_ranks(2, |rank| {
            if rank == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "rank 3 panicked")]
    fn a_panicking_rank_does_not_strand_the_others_at_a_barrier() {
        // Pre-fix this deadlocked: ranks 0–2 waited forever for rank 3.
        // Now the barrier is poisoned and the original panic is re-raised.
        let barrier = SimBarrier::new(4, NetworkModel::zero());
        run_ranks(4, |rank| {
            if rank == 3 {
                panic!("boom before the barrier");
            }
            barrier.wait();
        });
    }

    #[test]
    fn the_first_panic_wins_over_poison_cascades() {
        // Ranks 0–2 die at the poisoned barrier *after* rank 3's original
        // panic; the report must name rank 3, not a victim.
        let barrier = SimBarrier::new(4, NetworkModel::zero());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_ranks(4, |rank| {
                if rank == 3 {
                    panic!("original failure");
                }
                barrier.wait();
            });
        }))
        .expect_err("the run must panic");
        let message = payload_message(caught.as_ref());
        assert!(
            message.contains("rank 3 panicked: original failure"),
            "unexpected panic report: {message}"
        );
    }

    #[test]
    fn a_poisoned_barrier_rejects_late_arrivals() {
        let barrier = SimBarrier::new(2, NetworkModel::zero());
        recover(barrier.inner.state.lock()).poisoned = Some(7);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| barrier.wait()))
            .expect_err("waiting on a poisoned barrier must panic");
        assert!(payload_message(caught.as_ref()).contains("rank 7 panicked"));
    }
}
