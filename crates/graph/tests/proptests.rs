//! Property-based tests of the graph substrate: the cleaning pipeline, CSR
//! invariants, relabeling and partitioning hold for arbitrary edge lists.

use proptest::prelude::*;
use rmatc_graph::compressed::{compress_row, decode_row, decoded_len};
use rmatc_graph::partition::{PartitionScheme, Partitioner};
use rmatc_graph::types::Direction;
use rmatc_graph::{reference, relabel, CompressedCsr, CsrGraph, EdgeList};

fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..50).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((0..n as u32, 0..n as u32), 0..300),
        )
    })
}

/// Sorted, strictly increasing adjacency rows of arbitrary length, biased
/// toward the shapes that stress the codec: empty rows, single entries,
/// dense runs (delta 1 throughout) and rows whose gaps reach the `u32::MAX`
/// extremes the varint escape must carry exactly.
fn arb_sorted_row() -> impl Strategy<Value = Vec<u32>> {
    let raw = prop::collection::vec(any::<u32>(), 0..400);
    (0u32..5, raw, any::<u32>(), 1usize..300).prop_map(|(kind, raw, start, len)| match kind {
        // General case: random values, deduplicated and sorted.
        0 | 1 => {
            let mut row = raw;
            row.sort_unstable();
            row.dedup();
            row
        }
        // Dense run starting anywhere (delta 1 bitpacks to width 0).
        2 => {
            let len = len.min((u32::MAX - start) as usize + 1);
            (0..len).map(|i| start + i as u32).collect()
        }
        // Extremes: the virtual −1 predecessor and u32::MAX in one row.
        3 => vec![0, u32::MAX],
        _ => vec![],
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compressed_rows_round_trip(row in arb_sorted_row()) {
        let mut words = Vec::new();
        compress_row(&row, &mut words);
        prop_assert_eq!(decoded_len(&words), row.len());
        let mut decoded = Vec::new();
        decode_row(&words, &mut decoded);
        prop_assert_eq!(decoded, row);
        // An empty row costs exactly one word (the count); non-empty rows
        // never inflate past the varint worst case of 5 bytes per value
        // plus per-block headers.
        if row.is_empty() {
            prop_assert_eq!(words.len(), 1);
        }
    }

    #[test]
    fn compressed_csr_round_trips_whole_graphs((n, edges) in arb_edges()) {
        let mut el = EdgeList::from_edges(n, edges, Direction::Undirected).unwrap();
        el.clean();
        let csr = el.into_csr();
        let compressed = CompressedCsr::from_csr(&csr);
        prop_assert_eq!(compressed.vertex_count(), csr.vertex_count());
        prop_assert_eq!(compressed.edge_count(), csr.edge_count());
        for v in 0..csr.vertex_count() as u32 {
            prop_assert_eq!(compressed.degree(v) as usize, csr.neighbours(v).len());
            let mut decoded = Vec::new();
            decode_row(compressed.row(v), &mut decoded);
            prop_assert_eq!(decoded.as_slice(), csr.neighbours(v));
        }
        prop_assert_eq!(compressed.decode(), csr);
    }

    #[test]
    fn clean_always_yields_triangle_ready_graphs((n, edges) in arb_edges()) {
        let original_edges = edges.clone();
        let mut el = EdgeList::from_edges(n, edges, Direction::Undirected).unwrap();
        el.clean();
        let csr = el.into_csr();
        prop_assert!(csr.adjacency_lists_sorted());
        prop_assert!(csr.adjacency_in_range());
        prop_assert!(csr.is_symmetric());
        prop_assert!(csr.vertex_count() <= n);
        // No self loops, and no vertex that was already below degree 2 in the input
        // survives (the paper applies the removal once, so removals can themselves
        // create new degree-1 vertices — those are allowed to remain).
        for v in 0..csr.vertex_count() as u32 {
            prop_assert!(!csr.has_edge(v, v));
        }
        // Triangle counting is unaffected by whichever low-degree vertices remain.
        let mut unpruned = EdgeList::from_edges(n, original_edges.clone(), Direction::Undirected)
            .unwrap();
        unpruned.remove_self_loops();
        unpruned.symmetrize();
        prop_assert_eq!(
            reference::count_triangles(&csr),
            reference::count_triangles(&unpruned.into_csr())
        );
    }

    #[test]
    fn csr_size_formula_holds((n, edges) in arb_edges()) {
        let csr = CsrGraph::from_edges(n, &edges, Direction::Directed);
        prop_assert_eq!(
            csr.csr_size_bytes(),
            (csr.vertex_count() as u64 + 1) * 8 + csr.edge_count() * 4
        );
        prop_assert_eq!(csr.degrees().iter().map(|&d| d as u64).sum::<u64>(), csr.edge_count());
    }

    #[test]
    fn relabeling_preserves_structure((n, edges) in arb_edges(), seed in 0u64..100) {
        let mut el = EdgeList::from_edges(n, edges, Direction::Undirected).unwrap();
        el.remove_self_loops();
        el.symmetrize();
        let original = el.clone().into_csr();
        let perm = relabel::random_permutation(n, seed);
        el.relabel(&perm);
        let relabeled = el.into_csr();
        prop_assert_eq!(original.edge_count(), relabeled.edge_count());
        prop_assert_eq!(
            reference::count_triangles(&original),
            reference::count_triangles(&relabeled)
        );
        // Degree multiset is preserved.
        let mut d1 = original.degrees();
        let mut d2 = relabeled.degrees();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
    }

    #[test]
    fn partitioner_is_a_total_function(n in 1usize..2000, ranks in 1usize..32,
                                       scheme_cyclic in any::<bool>()) {
        prop_assume!(ranks <= n);
        let scheme = if scheme_cyclic { PartitionScheme::Cyclic } else { PartitionScheme::Block1D };
        let p = Partitioner::new(scheme, n, ranks).unwrap();
        let mut counts = vec![0usize; ranks];
        for v in 0..n as u32 {
            let owner = p.owner(v);
            prop_assert!(owner < ranks);
            prop_assert_eq!(p.global_index(owner, p.local_index(v)), v);
            counts[owner] += 1;
        }
        prop_assert_eq!(counts.iter().sum::<usize>(), n);
        for (rank, &c) in counts.iter().enumerate() {
            prop_assert_eq!(c, p.owned_count(rank));
            // 1D assigns equal blocks up to rounding.
            prop_assert!(c <= n.div_ceil(ranks));
        }
    }

    #[test]
    fn inverse_permutations_compose_to_identity(n in 1usize..500, seed in 0u64..100) {
        let perm = relabel::random_permutation(n, seed);
        let inv = relabel::invert_permutation(&perm);
        for v in 0..n {
            prop_assert_eq!(inv[perm[v] as usize] as usize, v);
        }
    }

    #[test]
    fn lcc_of_directed_graphs_is_bounded((n, edges) in arb_edges()) {
        let mut el = EdgeList::from_edges(n, edges, Direction::Directed).unwrap();
        el.remove_self_loops();
        el.deduplicate();
        let csr = el.into_csr();
        for score in reference::lcc_scores(&csr) {
            prop_assert!((0.0..=1.0).contains(&score));
        }
    }
}
