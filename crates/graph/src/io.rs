//! Plain-text edge-list I/O in the SNAP format the paper's datasets ship in:
//! one `source<whitespace>destination` pair per line, `#`-prefixed comment lines.

use crate::types::{Direction, VertexId};
use crate::{EdgeList, GraphError, Result};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Reads an edge list from a SNAP-style text file. Vertex ids are compacted to a
/// dense `0..n` range in first-appearance order.
pub fn read_edge_list<P: AsRef<Path>>(path: P, direction: Direction) -> Result<EdgeList> {
    let file = std::fs::File::open(path)?;
    read_edge_list_from(BufReader::new(file), direction)
}

/// Reads an edge list from any buffered reader (used by tests with in-memory data).
pub fn read_edge_list_from<R: BufRead>(reader: R, direction: Direction) -> Result<EdgeList> {
    let mut raw_edges: Vec<(u64, u64)> = Vec::new();
    let mut max_id = 0u64;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u = parse_vertex(parts.next(), idx + 1)?;
        let v = parse_vertex(parts.next(), idx + 1)?;
        max_id = max_id.max(u).max(v);
        raw_edges.push((u, v));
    }
    // Compact ids: many SNAP files have sparse id spaces.
    let mut remap: std::collections::HashMap<u64, VertexId> = std::collections::HashMap::new();
    let mut next: VertexId = 0;
    let mut edges = Vec::with_capacity(raw_edges.len());
    for (u, v) in raw_edges {
        let nu = *remap.entry(u).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        let nv = *remap.entry(v).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        edges.push((nu, nv));
    }
    EdgeList::from_edges(next as usize, edges, direction)
}

fn parse_vertex(tok: Option<&str>, line: usize) -> Result<u64> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two whitespace-separated vertex ids".to_string(),
    })?;
    tok.parse::<u64>().map_err(|e| GraphError::Parse {
        line,
        message: format!("invalid vertex id {tok:?}: {e}"),
    })
}

/// Writes an edge list to a SNAP-style text file with a small header comment.
pub fn write_edge_list<P: AsRef<Path>>(path: P, edges: &EdgeList) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(
        w,
        "# rmatc edge list: {} vertices, {} edges, {}",
        edges.vertex_count(),
        edges.edge_count(),
        edges.direction()
    )?;
    for &(u, v) in edges.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_snap_format_with_comments() {
        let data = "# comment line\n% another comment\n0 1\n1\t2\n\n2 0\n";
        let el = read_edge_list_from(Cursor::new(data), Direction::Directed).unwrap();
        assert_eq!(el.vertex_count(), 3);
        assert_eq!(el.edges(), &[(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn compacts_sparse_vertex_ids() {
        let data = "1000 2000\n2000 50\n";
        let el = read_edge_list_from(Cursor::new(data), Direction::Directed).unwrap();
        assert_eq!(el.vertex_count(), 3);
        assert_eq!(el.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn reports_parse_errors_with_line_numbers() {
        let data = "0 1\nnot_a_vertex 2\n";
        let err = read_edge_list_from(Cursor::new(data), Direction::Directed).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn reports_missing_second_vertex() {
        let data = "0\n";
        let err = read_edge_list_from(Cursor::new(data), Direction::Directed).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn write_and_read_round_trip() {
        let dir = std::env::temp_dir().join("rmatc-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        let el = EdgeList::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)], Direction::Directed)
            .unwrap();
        write_edge_list(&path, &el).unwrap();
        let back = read_edge_list(&path, Direction::Directed).unwrap();
        assert_eq!(back.edge_count(), el.edge_count());
        assert_eq!(back.vertex_count(), el.vertex_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_edge_list("/nonexistent/rmatc/file.txt", Direction::Directed).unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
