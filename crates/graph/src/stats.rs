//! Graph statistics used by the evaluation: degree distributions, skew metrics,
//! CSR sizes (Table II), remote-edge/cut fractions (Section IV-D), and the
//! top-degree contribution curves behind Figure 4.

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Summary of a graph, matching the columns of Table II plus a few derived metrics.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GraphSummary {
    /// Dataset or generator name.
    pub name: String,
    /// "U" or "D" per Table II.
    pub direction: String,
    /// Number of vertices after cleaning.
    pub vertices: usize,
    /// Number of stored (directed) edges after cleaning.
    pub directed_edges: u64,
    /// Number of logical edges (undirected edges counted once).
    pub logical_edges: u64,
    /// CSR size in bytes (offsets + adjacencies).
    pub csr_size_bytes: u64,
    /// Maximum out-degree.
    pub max_degree: u32,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Degree skewness (third standardized moment); > ~2 indicates a heavy tail.
    pub degree_skewness: f64,
}

/// Builds a [`GraphSummary`] for a named graph.
pub fn summarize(name: &str, g: &CsrGraph) -> GraphSummary {
    let degrees = g.degrees();
    let mean = if degrees.is_empty() {
        0.0
    } else {
        degrees.iter().map(|&d| d as f64).sum::<f64>() / degrees.len() as f64
    };
    GraphSummary {
        name: name.to_string(),
        direction: g.direction().label().to_string(),
        vertices: g.vertex_count(),
        directed_edges: g.edge_count(),
        logical_edges: g.logical_edge_count(),
        csr_size_bytes: g.csr_size_bytes(),
        max_degree: g.max_degree(),
        mean_degree: mean,
        degree_skewness: degree_skewness(&degrees),
    }
}

/// Sample skewness of a degree sequence. Used in tests and reports to distinguish
/// power-law-like graphs (large positive skew) from uniform ones (skew near zero).
pub fn degree_skewness(degrees: &[u32]) -> f64 {
    let n = degrees.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean = degrees.iter().map(|&d| d as f64).sum::<f64>() / nf;
    let m2 = degrees
        .iter()
        .map(|&d| (d as f64 - mean).powi(2))
        .sum::<f64>()
        / nf;
    let m3 = degrees
        .iter()
        .map(|&d| (d as f64 - mean).powi(3))
        .sum::<f64>()
        / nf;
    if m2 <= f64::EPSILON {
        return 0.0;
    }
    m3 / m2.powf(1.5)
}

/// Degree histogram: `hist[d]` is the number of vertices with out-degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<u64> {
    let mut hist = vec![0u64; g.max_degree() as usize + 1];
    for v in 0..g.vertex_count() as VertexId {
        hist[g.degree(v) as usize] += 1;
    }
    hist
}

/// Fraction of directed edges whose endpoints fall in different partitions under the
/// given vertex→rank assignment. The paper reports, e.g., 95% cross-partition edges
/// for an R-MAT 2^20-vertex graph on 8 processes and the growth from 66% to 98% for
/// R-MAT S21 EF16 between 4 and 64 nodes.
pub fn cut_fraction(g: &CsrGraph, owner: &dyn Fn(VertexId) -> usize) -> f64 {
    let mut total = 0u64;
    let mut cut = 0u64;
    for (u, v) in g.edges() {
        total += 1;
        if owner(u) != owner(v) {
            cut += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        cut as f64 / total as f64
    }
}

/// A point on the Figure 4 curve: after sorting vertices by descending in-degree,
/// `vertex_fraction` of the vertices receive `read_fraction` of all remote reads.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SkewPoint {
    /// Fraction of vertices considered (sorted by descending remote-read count).
    pub vertex_fraction: f64,
    /// Fraction of remote reads that target those vertices.
    pub read_fraction: f64,
}

/// Computes the cumulative contribution curve of Figure 4 from a per-vertex count of
/// remote reads. Returns points for logarithmically spaced vertex fractions.
pub fn top_degree_contribution(read_counts: &[u64]) -> Vec<SkewPoint> {
    let mut sorted: Vec<u64> = read_counts.iter().copied().filter(|&c| c > 0).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = sorted.iter().sum();
    if total == 0 || sorted.is_empty() {
        return Vec::new();
    }
    let n = read_counts.len() as f64;
    let mut points = Vec::new();
    let mut cumulative = 0u64;
    for (i, &c) in sorted.iter().enumerate() {
        cumulative += c;
        points.push(SkewPoint {
            vertex_fraction: (i + 1) as f64 / n,
            read_fraction: cumulative as f64 / total as f64,
        });
    }
    points
}

/// Convenience: the fraction of reads that target the `top` fraction (e.g. 0.1 for
/// the "top 10%" highlighted in Figure 4) of most-read vertices.
pub fn fraction_of_reads_to_top(read_counts: &[u64], top: f64) -> f64 {
    let curve = top_degree_contribution(read_counts);
    let mut best = 0.0;
    for p in &curve {
        if p.vertex_fraction <= top {
            best = p.read_fraction;
        } else {
            break;
        }
    }
    best
}

/// Formats a byte count the way Table II does (MiB / GiB with one decimal).
pub fn format_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GIB {
        format!("{:.1} GiB", b / GIB)
    } else if b >= MIB {
        format!("{:.1} MiB", b / MIB)
    } else if b >= KIB {
        format!("{:.1} KiB", b / KIB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Direction;

    fn path_graph(n: usize) -> CsrGraph {
        let mut edges = Vec::new();
        for i in 0..(n - 1) as u32 {
            edges.push((i, i + 1));
            edges.push((i + 1, i));
        }
        CsrGraph::from_edges(n, &edges, Direction::Undirected)
    }

    #[test]
    fn summary_fields_are_consistent() {
        let g = path_graph(5);
        let s = summarize("path", &g);
        assert_eq!(s.vertices, 5);
        assert_eq!(s.directed_edges, 8);
        assert_eq!(s.logical_edges, 4);
        assert_eq!(s.csr_size_bytes, g.csr_size_bytes());
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.direction, "U");
    }

    #[test]
    fn skewness_of_constant_degrees_is_zero() {
        assert_eq!(degree_skewness(&[4, 4, 4, 4]), 0.0);
        assert_eq!(degree_skewness(&[]), 0.0);
        assert_eq!(degree_skewness(&[7]), 0.0);
    }

    #[test]
    fn skewness_detects_heavy_tail() {
        let mut degrees = vec![2u32; 1000];
        degrees.extend([500, 800, 1000]);
        assert!(degree_skewness(&degrees) > 5.0);
    }

    #[test]
    fn degree_histogram_counts_vertices() {
        let g = path_graph(4);
        let hist = degree_histogram(&g);
        assert_eq!(hist, vec![0, 2, 2]);
    }

    #[test]
    fn cut_fraction_extremes() {
        let g = path_graph(8);
        // Everybody on one rank: no cut edges.
        assert_eq!(cut_fraction(&g, &|_v| 0), 0.0);
        // Each vertex on its own rank: every edge is cut.
        assert_eq!(cut_fraction(&g, &|v| v as usize), 1.0);
    }

    #[test]
    fn top_degree_contribution_is_monotone_and_ends_at_one() {
        let counts = vec![100, 1, 1, 1, 1, 0, 0, 0, 0, 0];
        let curve = top_degree_contribution(&counts);
        assert!(curve
            .windows(2)
            .all(|w| w[0].read_fraction <= w[1].read_fraction));
        assert!((curve.last().unwrap().read_fraction - 1.0).abs() < 1e-12);
        // The single hot vertex (10% of vertices) accounts for ~96% of reads.
        let top10 = fraction_of_reads_to_top(&counts, 0.1);
        assert!(top10 > 0.9);
    }

    #[test]
    fn top_degree_contribution_empty_input() {
        assert!(top_degree_contribution(&[]).is_empty());
        assert!(top_degree_contribution(&[0, 0, 0]).is_empty());
        assert_eq!(fraction_of_reads_to_top(&[0, 0], 0.1), 0.0);
    }

    #[test]
    fn format_bytes_matches_table2_style() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2 * 1024), "2.0 KiB");
        assert_eq!(format_bytes(949_900_000), "905.9 MiB");
        assert_eq!(format_bytes(4 * 1024 * 1024 * 1024), "4.0 GiB");
    }
}
