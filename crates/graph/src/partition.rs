//! Vertex partitioning for distributed computation.
//!
//! The paper uses a 1D block partitioning scheme (Section III-A): with `p` ranks,
//! rank `k` owns the contiguous vertex range `((k-1)·n/p, k·n/p]` (0-based here:
//! `[k·n/p, (k+1)·n/p)`), and stores the CSR rows of exactly those vertices. The
//! cyclic distribution of Lumsdaine et al. is provided as the alternative the paper
//! discusses for balancing skewed degrees, and
//! [`PartitionScheme::BalancedBlock1D`] keeps the contiguous-block shape but draws
//! the rank boundaries by prefix-summing degrees ([`crate::split`]), so every rank
//! stores roughly the same number of edges even on hub-heavy graphs.

use crate::csr::CsrGraph;
use crate::split::{balanced_prefix_bounds, balanced_vertex_bounds, intersection_work_prefix};
use crate::types::{Edge, VertexId};
use crate::{GraphError, Result};

/// How vertices are assigned to ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PartitionScheme {
    /// Contiguous blocks of `n / p` vertices per rank (the paper's scheme).
    Block1D,
    /// Vertex `v` is owned by rank `v mod p` (Lumsdaine et al. cyclic distribution).
    Cyclic,
    /// Contiguous blocks with degree-weighted boundaries: rank `k` owns the
    /// vertex range holding the `k`-th equal share of edge mass. Needs the
    /// degree sequence ([`Partitioner::with_offsets`]); without it, boundaries
    /// degrade to the equal-count blocks of [`PartitionScheme::Block1D`].
    BalancedBlock1D,
    /// Contiguous blocks with *intersection-work*-weighted boundaries: each
    /// rank owns an equal share of `Σ_edges (deg(u) + deg(v))` — the length
    /// mass the per-edge intersections actually walk, a better proxy for
    /// worker compute time than stored-edge count on hub-heavy graphs
    /// ([`crate::split::intersection_work_prefix`]). Needs the full CSR
    /// ([`Partitioner::with_graph`]); without it, boundaries degrade to the
    /// equal-count blocks of [`PartitionScheme::Block1D`].
    WorkBalancedBlock1D,
}

/// Maps vertices to owning ranks under a chosen scheme.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Partitioner {
    scheme: PartitionScheme,
    n: usize,
    ranks: usize,
    /// Ceiling of n / ranks; used by the block scheme.
    block: usize,
    /// Explicit vertex boundaries (`ranks + 1` entries), used by the
    /// degree-balanced block scheme; `None` for the closed-form schemes.
    bounds: Option<Vec<usize>>,
}

impl Partitioner {
    /// Creates a partitioner for `n` vertices over `ranks` ranks. For
    /// [`PartitionScheme::BalancedBlock1D`] this falls back to equal-count
    /// boundaries; use [`Partitioner::with_offsets`] to balance by degree.
    pub fn new(scheme: PartitionScheme, n: usize, ranks: usize) -> Result<Self> {
        if ranks == 0 || (n > 0 && ranks > n) {
            return Err(GraphError::InvalidPartitionCount { parts: ranks, n });
        }
        let block = n.div_ceil(ranks.max(1)).max(1);
        Ok(Self {
            scheme,
            n,
            ranks,
            block,
            bounds: None,
        })
    }

    /// Creates a partitioner with access to the graph's CSR offsets, enabling
    /// degree-weighted boundaries for [`PartitionScheme::BalancedBlock1D`].
    /// Other schemes ignore the offsets
    /// ([`PartitionScheme::WorkBalancedBlock1D`] needs the adjacency array
    /// too — use [`Partitioner::with_graph`]).
    pub fn with_offsets(scheme: PartitionScheme, offsets: &[u64], ranks: usize) -> Result<Self> {
        let mut partitioner = Self::new(scheme, offsets.len() - 1, ranks)?;
        if scheme == PartitionScheme::BalancedBlock1D {
            partitioner.bounds = Some(balanced_vertex_bounds(offsets, ranks));
        }
        Ok(partitioner)
    }

    /// Creates a partitioner with access to the full CSR graph, enabling the
    /// weighted boundaries of both balanced block schemes
    /// ([`PartitionScheme::BalancedBlock1D`] by edge mass,
    /// [`PartitionScheme::WorkBalancedBlock1D`] by intersection-work mass).
    pub fn with_graph(scheme: PartitionScheme, g: &CsrGraph, ranks: usize) -> Result<Self> {
        let mut partitioner = Self::with_offsets(scheme, g.offsets(), ranks)?;
        if scheme == PartitionScheme::WorkBalancedBlock1D {
            let prefix = intersection_work_prefix(g.offsets(), g.adjacencies());
            partitioner.bounds = Some(balanced_prefix_bounds(&prefix, ranks));
        }
        Ok(partitioner)
    }

    /// The partitioning scheme in use.
    pub fn scheme(&self) -> PartitionScheme {
        self.scheme
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Number of vertices in the global graph.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The contiguous vertex range owned by `rank` under the block schemes.
    fn block_range(&self, rank: usize) -> std::ops::Range<usize> {
        match &self.bounds {
            Some(bounds) => bounds[rank]..bounds[rank + 1],
            None => (rank * self.block).min(self.n)..((rank + 1) * self.block).min(self.n),
        }
    }

    /// The rank that owns global vertex `v`.
    pub fn owner(&self, v: VertexId) -> usize {
        debug_assert!((v as usize) < self.n);
        match (self.scheme, &self.bounds) {
            (PartitionScheme::Cyclic, _) => v as usize % self.ranks,
            // `bounds` has ranks + 1 entries starting at 0, so the partition
            // point over the interior boundaries is in `[1, ranks]`.
            (_, Some(bounds)) => bounds.partition_point(|&b| b <= v as usize) - 1,
            (_, None) => (v as usize / self.block).min(self.ranks - 1),
        }
    }

    /// The global vertex ids owned by `rank`, in increasing order.
    pub fn owned_vertices(&self, rank: usize) -> Vec<VertexId> {
        assert!(rank < self.ranks);
        match self.scheme {
            PartitionScheme::Cyclic => (0..self.n as VertexId)
                .filter(|&v| self.owner(v) == rank)
                .collect(),
            _ => {
                let range = self.block_range(rank);
                (range.start as VertexId..range.end as VertexId).collect()
            }
        }
    }

    /// Number of vertices owned by `rank`.
    pub fn owned_count(&self, rank: usize) -> usize {
        match self.scheme {
            PartitionScheme::Cyclic => {
                if rank < self.n % self.ranks || self.n % self.ranks == 0 {
                    self.n.div_ceil(self.ranks)
                } else {
                    self.n / self.ranks
                }
            }
            _ => self.block_range(rank).len(),
        }
    }

    /// Converts a global vertex id to the local index within its owner's partition.
    pub fn local_index(&self, v: VertexId) -> usize {
        match self.scheme {
            PartitionScheme::Cyclic => v as usize / self.ranks,
            _ => v as usize - self.block_range(self.owner(v)).start,
        }
    }

    /// Converts a (rank, local index) pair back to the global vertex id.
    pub fn global_index(&self, rank: usize, local: usize) -> VertexId {
        match self.scheme {
            PartitionScheme::Cyclic => (local * self.ranks + rank) as VertexId,
            _ => (self.block_range(rank).start + local) as VertexId,
        }
    }
}

/// The partition owned by one rank: the CSR rows of its vertices, indexed locally,
/// plus the mapping information needed to resolve global ids.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RankPartition {
    /// Owning rank.
    pub rank: usize,
    /// Local CSR: row `i` is the adjacency list (global vertex ids!) of the vertex
    /// with local index `i`.
    pub csr: CsrGraph,
    /// Global ids of the owned vertices, `global_ids[i]` corresponds to local row `i`.
    pub global_ids: Vec<VertexId>,
}

impl RankPartition {
    /// Number of locally owned vertices.
    pub fn local_vertex_count(&self) -> usize {
        self.global_ids.len()
    }

    /// Number of locally stored directed edges.
    pub fn local_edge_count(&self) -> u64 {
        self.csr.edge_count()
    }

    /// Adjacency list (global ids) of the vertex with local index `i`.
    pub fn neighbours_of_local(&self, i: usize) -> &[VertexId] {
        self.csr.neighbours(i as VertexId)
    }
}

/// A complete 1D-partitioned graph: one [`RankPartition`] per rank plus the shared
/// [`Partitioner`]. This is the input handed to the distributed runners.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PartitionedGraph {
    /// Vertex→rank mapping.
    pub partitioner: Partitioner,
    /// Per-rank partitions, indexed by rank.
    pub partitions: Vec<RankPartition>,
    /// Direction of the underlying graph.
    pub direction: crate::types::Direction,
}

impl PartitionedGraph {
    /// Splits a global CSR graph into per-rank partitions.
    pub fn from_global(g: &CsrGraph, scheme: PartitionScheme, ranks: usize) -> Result<Self> {
        let partitioner = Partitioner::with_graph(scheme, g, ranks)?;
        let mut partitions = Vec::with_capacity(ranks);
        for rank in 0..ranks {
            let global_ids = partitioner.owned_vertices(rank);
            // Build a local CSR whose row `i` holds the (global-id) neighbours of
            // global vertex `global_ids[i]`.
            let mut edges: Vec<Edge> = Vec::new();
            for (local, &gv) in global_ids.iter().enumerate() {
                for &w in g.neighbours(gv) {
                    edges.push((local as VertexId, w));
                }
            }
            // Local rows already sorted because neighbour lists are sorted and locals
            // increase monotonically; from_edges re-sorts defensively anyway.
            let local_n = global_ids.len();
            let csr = build_local_csr(local_n, &edges, g.direction());
            partitions.push(RankPartition {
                rank,
                csr,
                global_ids,
            });
        }
        Ok(Self {
            partitioner,
            partitions,
            direction: g.direction(),
        })
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.partitions.len()
    }

    /// Number of global vertices.
    pub fn global_vertex_count(&self) -> usize {
        self.partitioner.vertex_count()
    }

    /// Total number of directed edges across all partitions.
    pub fn global_edge_count(&self) -> u64 {
        self.partitions.iter().map(|p| p.local_edge_count()).sum()
    }

    /// Fraction of directed edges whose destination vertex lives on a different rank
    /// than the source (the "remote edge" fraction of Section IV-D).
    pub fn remote_edge_fraction(&self) -> f64 {
        let mut total = 0u64;
        let mut remote = 0u64;
        for part in &self.partitions {
            for (local, _) in part.global_ids.iter().enumerate() {
                for &w in part.neighbours_of_local(local) {
                    total += 1;
                    if self.partitioner.owner(w) != part.rank {
                        remote += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            remote as f64 / total as f64
        }
    }

    /// Load imbalance: max over ranks of stored edges divided by the mean.
    pub fn edge_imbalance(&self) -> f64 {
        let counts: Vec<u64> = self
            .partitions
            .iter()
            .map(|p| p.local_edge_count())
            .collect();
        let max = *counts.iter().max().unwrap_or(&0) as f64;
        let mean = counts.iter().sum::<u64>() as f64 / counts.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Reassembles the global CSR graph from the partitions (used by tests to verify
    /// that partitioning loses no information).
    pub fn reassemble(&self) -> CsrGraph {
        let n = self.global_vertex_count();
        let mut edges: Vec<Edge> = Vec::new();
        for part in &self.partitions {
            for (local, &gv) in part.global_ids.iter().enumerate() {
                for &w in part.neighbours_of_local(local) {
                    edges.push((gv, w));
                }
            }
        }
        CsrGraph::from_edges(n, &edges, self.direction)
    }
}

/// Builds a local CSR allowing adjacency entries (global ids) to exceed the local
/// vertex count, which `CsrGraph::from_edges` would otherwise be free to assume.
fn build_local_csr(local_n: usize, edges: &[Edge], direction: crate::types::Direction) -> CsrGraph {
    let mut sorted = edges.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut offsets = vec![0u64; local_n + 1];
    for &(u, _) in &sorted {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..local_n {
        offsets[i + 1] += offsets[i];
    }
    let adjacencies = sorted.iter().map(|&(_, v)| v).collect();
    CsrGraph::from_raw_parts(offsets, adjacencies, direction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GraphGenerator, RmatGenerator};
    use crate::types::Direction;

    fn sample_graph() -> CsrGraph {
        RmatGenerator::paper(9, 8).generate_cleaned(1).into_csr()
    }

    #[test]
    fn block_partitioner_covers_all_vertices_exactly_once() {
        let p = Partitioner::new(PartitionScheme::Block1D, 103, 8).unwrap();
        let mut seen = [false; 103];
        for rank in 0..8 {
            for v in p.owned_vertices(rank) {
                assert_eq!(p.owner(v), rank);
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cyclic_partitioner_covers_all_vertices_exactly_once() {
        let p = Partitioner::new(PartitionScheme::Cyclic, 103, 8).unwrap();
        let mut seen = [false; 103];
        for rank in 0..8 {
            for v in p.owned_vertices(rank) {
                assert_eq!(p.owner(v), rank);
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
            assert_eq!(p.owned_vertices(rank).len(), p.owned_count(rank));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn local_global_round_trip() {
        for scheme in [PartitionScheme::Block1D, PartitionScheme::Cyclic] {
            let p = Partitioner::new(scheme, 64, 4).unwrap();
            for v in 0..64u32 {
                let rank = p.owner(v);
                let local = p.local_index(v);
                assert_eq!(
                    p.global_index(rank, local),
                    v,
                    "scheme {scheme:?} vertex {v}"
                );
            }
        }
    }

    #[test]
    fn invalid_rank_counts_are_rejected() {
        assert!(Partitioner::new(PartitionScheme::Block1D, 10, 0).is_err());
        assert!(Partitioner::new(PartitionScheme::Block1D, 4, 8).is_err());
    }

    #[test]
    fn block_scheme_matches_paper_formula() {
        // n = 16, p = 4: rank k owns [4k, 4(k+1)).
        let p = Partitioner::new(PartitionScheme::Block1D, 16, 4).unwrap();
        assert_eq!(p.owned_vertices(0), vec![0, 1, 2, 3]);
        assert_eq!(p.owned_vertices(3), vec![12, 13, 14, 15]);
    }

    #[test]
    fn partitioned_graph_preserves_all_edges() {
        let g = sample_graph();
        for ranks in [1, 2, 4, 8] {
            let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, ranks).unwrap();
            assert_eq!(pg.global_edge_count(), g.edge_count());
            assert_eq!(pg.reassemble(), g, "ranks = {ranks}");
        }
    }

    #[test]
    fn partitioned_graph_cyclic_preserves_all_edges() {
        let g = sample_graph();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Cyclic, 4).unwrap();
        assert_eq!(pg.reassemble(), g);
    }

    #[test]
    fn remote_fraction_grows_with_rank_count() {
        let g = sample_graph();
        let f2 = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 2)
            .unwrap()
            .remote_edge_fraction();
        let f8 = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 8)
            .unwrap()
            .remote_edge_fraction();
        assert!(
            f2 < f8,
            "remote fraction must grow with more ranks ({f2} vs {f8})"
        );
        assert!(f8 <= 1.0 && f2 >= 0.0);
    }

    #[test]
    fn single_rank_has_no_remote_edges() {
        let g = sample_graph();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 1).unwrap();
        assert_eq!(pg.remote_edge_fraction(), 0.0);
        assert!((pg.edge_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rmat_on_8_ranks_is_mostly_remote() {
        // The paper observes ~95% remote edges for an R-MAT graph on 8 ranks; our
        // smaller instance should still be above 80%.
        let g = RmatGenerator::paper(12, 16).generate_cleaned(5).into_csr();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 8).unwrap();
        assert!(pg.remote_edge_fraction() > 0.8);
    }

    #[test]
    fn balanced_partitioner_covers_all_vertices_exactly_once() {
        let g = RmatGenerator::paper(10, 8).generate_cleaned(2).into_csr();
        let p =
            Partitioner::with_offsets(PartitionScheme::BalancedBlock1D, g.offsets(), 8).unwrap();
        let mut seen = vec![false; g.vertex_count()];
        for rank in 0..8 {
            for v in p.owned_vertices(rank) {
                assert_eq!(p.owner(v), rank);
                assert_eq!(p.global_index(rank, p.local_index(v)), v);
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
            assert_eq!(p.owned_vertices(rank).len(), p.owned_count(rank));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn balanced_blocks_beat_equal_count_blocks_on_skewed_graphs() {
        // R-MAT is hub-heavy: equal-count contiguous blocks concentrate edge
        // mass in the low-id ranks, degree-weighted boundaries spread it out.
        let g = RmatGenerator::paper(11, 16).generate_cleaned(5).into_csr();
        let block = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 8).unwrap();
        let balanced =
            PartitionedGraph::from_global(&g, PartitionScheme::BalancedBlock1D, 8).unwrap();
        assert!(
            balanced.edge_imbalance() < block.edge_imbalance(),
            "balanced {} vs block {}",
            balanced.edge_imbalance(),
            block.edge_imbalance()
        );
        assert_eq!(balanced.reassemble(), g);
    }

    #[test]
    fn work_balanced_partitioner_covers_all_vertices_exactly_once() {
        let g = RmatGenerator::paper(10, 8).generate_cleaned(2).into_csr();
        let p = Partitioner::with_graph(PartitionScheme::WorkBalancedBlock1D, &g, 8).unwrap();
        let mut seen = vec![false; g.vertex_count()];
        for rank in 0..8 {
            for v in p.owned_vertices(rank) {
                assert_eq!(p.owner(v), rank);
                assert_eq!(p.global_index(rank, p.local_index(v)), v);
                assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
            assert_eq!(p.owned_vertices(rank).len(), p.owned_count(rank));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn work_balanced_blocks_spread_intersection_work_better_than_block1d() {
        // Equal-count blocks concentrate both edge mass *and* intersection
        // work in the low-id hub ranks of an R-MAT graph. The work-balanced
        // scheme should cut the spread of per-rank intersection work (max
        // over mean) relative to Block1D, while still being an exact
        // partition of the same graph.
        let g = RmatGenerator::paper(11, 16).generate_cleaned(5).into_csr();
        let prefix = intersection_work_prefix(g.offsets(), g.adjacencies());
        let ranks = 8;
        let rank_work = |pg: &PartitionedGraph| -> Vec<u64> {
            (0..ranks)
                .map(|rank| {
                    pg.partitioner
                        .owned_vertices(rank)
                        .into_iter()
                        .map(|v| prefix[v as usize + 1] - prefix[v as usize])
                        .sum()
                })
                .collect()
        };
        let spread = |work: &[u64]| {
            let max = *work.iter().max().unwrap() as f64;
            let mean = work.iter().sum::<u64>() as f64 / work.len() as f64;
            max / mean
        };
        let block = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, ranks).unwrap();
        let balanced =
            PartitionedGraph::from_global(&g, PartitionScheme::WorkBalancedBlock1D, ranks).unwrap();
        let (block_spread, balanced_spread) =
            (spread(&rank_work(&block)), spread(&rank_work(&balanced)));
        assert!(
            balanced_spread < block_spread,
            "work-balanced {balanced_spread} vs block {block_spread}"
        );
        // Every rank is close to an equal work share: within one vertex's
        // worth of work of the ideal, the same bound the splitter guarantees.
        let total = *prefix.last().unwrap();
        let max_vertex_work = prefix.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        for &w in &rank_work(&balanced) {
            assert!(w <= total / ranks as u64 + max_vertex_work);
        }
        assert_eq!(balanced.reassemble(), g);
    }

    #[test]
    fn work_balanced_scheme_without_graph_degrades_to_equal_count_blocks() {
        let with = Partitioner::new(PartitionScheme::WorkBalancedBlock1D, 64, 4).unwrap();
        let block = Partitioner::new(PartitionScheme::Block1D, 64, 4).unwrap();
        for v in 0..64u32 {
            assert_eq!(with.owner(v), block.owner(v));
            assert_eq!(with.local_index(v), block.local_index(v));
        }
    }

    #[test]
    fn balanced_scheme_without_offsets_degrades_to_equal_count_blocks() {
        let with = Partitioner::new(PartitionScheme::BalancedBlock1D, 64, 4).unwrap();
        let block = Partitioner::new(PartitionScheme::Block1D, 64, 4).unwrap();
        for v in 0..64u32 {
            assert_eq!(with.owner(v), block.owner(v));
            assert_eq!(with.local_index(v), block.local_index(v));
        }
    }

    #[test]
    fn local_rows_match_global_rows() {
        let g = sample_graph();
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 4).unwrap();
        for part in &pg.partitions {
            for (local, &gv) in part.global_ids.iter().enumerate() {
                assert_eq!(part.neighbours_of_local(local), g.neighbours(gv));
            }
        }
    }

    #[test]
    fn empty_graph_partitions_cleanly() {
        let g = CsrGraph::from_edges(0, &[], Direction::Undirected);
        let pg = PartitionedGraph::from_global(&g, PartitionScheme::Block1D, 1).unwrap();
        assert_eq!(pg.global_edge_count(), 0);
        assert_eq!(pg.remote_edge_fraction(), 0.0);
    }
}
