//! Compressed adjacency storage: delta-encoded, bitpacked neighbor blocks
//! with a varint escape.
//!
//! The paper's distributed pipeline is bound by bytes — every remote
//! adjacency row crosses the network via RMA and occupies CLaMPI buffer
//! space verbatim, so row size caps both transfer cost and effective cache
//! capacity. Sorted adjacency lists compress well: consecutive neighbor ids
//! have small gaps, and delta coding turns a row of 32-bit ids into a row of
//! mostly-small deltas that bitpack 2–4× denser.
//!
//! # Row format
//!
//! A compressed row is a sequence of `u32` **words** — deliberately
//! word-shaped so the existing RMA windows (`Window<u32>`), CLaMPI entries
//! and checksums carry compressed rows without any new plumbing:
//!
//! ```text
//! row      := count block*
//! count    := u32                  // number of decoded neighbor ids
//! block    := header0 header1 payload*
//! header0  := code[0..6] | (count-1)[6..12] | payload_words[12..32]
//! header1  := block max             // last decoded value of the block
//! ```
//!
//! Each block holds up to [`BLOCK_VALUES`] (64) values, stored as
//! `delta − 1` against the previous decoded value (the first value of the
//! row is preceded by a virtual `−1`, so an id `v` stores as `v` itself).
//! Strictly increasing rows make every stored delta non-negative.
//!
//! `code ≤ 32` is the bitpack width `w`: stored deltas are packed LSB-first,
//! `w` bits each (`w = 0` encodes a consecutive run with an empty payload).
//! `code = 33` ([`VARINT_CODE`]) is the varint escape: LEB128 bytes packed
//! into words, chosen per block whenever it beats bitpacking — one huge gap
//! (e.g. a `u32::MAX` delta) then costs 5 bytes instead of inflating the
//! whole block to 32-bit lanes.
//!
//! `header1` carries the block maximum, so a search-class kernel can decide
//! whether a block can contain a key *without decoding it* — the
//! galloping-friendly skip bound the fused kernels in
//! `rmatc-core::intersect` use ([`RowCursor::skip_block`]). The per-row word
//! offset array of [`CompressedCsr`] gives O(1) row starts.
//!
//! **Corruption tolerance:** the fused transfer closures run *during* the
//! RMA get, before the self-healing layer's checksum can reject a corrupted
//! buffer (the count is discarded and the get retried afterwards — see
//! `rmatc-rma::fault`). A decoder fed fault-injected garbage therefore must
//! not trust any header field: [`RowCursor`] treats a block that does not
//! fit inside the row as the end of the row, and the payload readers clamp
//! every access, so arbitrary input yields garbage counts but never an
//! out-of-bounds read, panic, or non-termination.
//!
//! # Paper map
//!
//! | Item | Paper location | What it reproduces |
//! |---|---|---|
//! | [`CompressedCsr`] | §II-B, Fig. 2 | The CSR arrays of Figure 2 with the adjacency array delta/varint-compressed; offsets index words instead of ids |
//! | [`RowCursor`] | §III-B | Streaming block access for the intersection kernels, with skip bounds replacing the random indexing plain rows allow |
//! | [`GraphStorage`] | — | The storage-mode knob the local and distributed configs thread through the whole stack |

use crate::csr::CsrGraph;
use crate::types::{Direction, VertexId};

/// Maximum number of values per compressed block.
pub const BLOCK_VALUES: usize = 64;

/// `code` value marking a varint-escaped (LEB128) block payload.
pub const VARINT_CODE: u32 = 33;

const CODE_BITS: u32 = 6;
const COUNT_BITS: u32 = 6;

/// Which adjacency representation a pipeline runs on. Defaults to
/// [`GraphStorage::Plain`]; every path accepts either and the differential
/// suite proves scores identical across the two.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum GraphStorage {
    /// Uncompressed CSR: rows are raw sorted `u32` ids.
    #[default]
    Plain,
    /// Delta/varint compressed rows (this module's format).
    Compressed,
}

impl GraphStorage {
    /// Storage selected by the `RMATC_STORAGE` environment variable
    /// (`compressed` → [`GraphStorage::Compressed`], anything else → plain).
    /// The CI compressed leg runs the equivalence suite through this knob.
    pub fn from_env() -> Self {
        match std::env::var("RMATC_STORAGE") {
            Ok(v) if v.eq_ignore_ascii_case("compressed") => GraphStorage::Compressed,
            _ => GraphStorage::Plain,
        }
    }

    /// Short display label (`"plain"` / `"compressed"`).
    pub fn label(&self) -> &'static str {
        match self {
            GraphStorage::Plain => "plain",
            GraphStorage::Compressed => "compressed",
        }
    }
}

/// Decoded fields of one block header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeader {
    /// Bitpack width (`0..=32`) or [`VARINT_CODE`].
    pub code: u32,
    /// Number of values in the block (`1..=BLOCK_VALUES`).
    pub count: usize,
    /// Number of payload words following the two header words.
    pub payload_words: usize,
    /// Largest (= last) decoded value of the block — the skip bound.
    pub max: VertexId,
}

#[inline]
fn pack_header0(code: u32, count: usize, payload_words: usize) -> u32 {
    debug_assert!(code <= VARINT_CODE);
    debug_assert!((1..=BLOCK_VALUES).contains(&count));
    debug_assert!(payload_words < (1 << (32 - CODE_BITS - COUNT_BITS)));
    code | (((count - 1) as u32) << CODE_BITS)
        | ((payload_words as u32) << (CODE_BITS + COUNT_BITS))
}

#[inline]
fn unpack_header0(word: u32) -> (u32, usize, usize) {
    let code = word & ((1 << CODE_BITS) - 1);
    let count = ((word >> CODE_BITS) & ((1 << COUNT_BITS) - 1)) as usize + 1;
    let payload_words = (word >> (CODE_BITS + COUNT_BITS)) as usize;
    (code, count, payload_words)
}

/// LEB128 length of one delta in bytes.
#[inline]
fn varint_len(d: u32) -> usize {
    match d {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

/// Appends one encoded block for `values` (≤ [`BLOCK_VALUES`], strictly
/// increasing, all greater than `*prev_plus1 - 1`). `prev_plus1` carries the
/// delta chain across blocks: it holds `last decoded value + 1` and starts
/// at 0 for a fresh row.
fn encode_block(values: &[VertexId], prev_plus1: &mut u64, out: &mut Vec<u32>) {
    let n = values.len();
    debug_assert!((1..=BLOCK_VALUES).contains(&n));
    let mut deltas = [0u32; BLOCK_VALUES];
    let mut p = *prev_plus1;
    for (i, &v) in values.iter().enumerate() {
        debug_assert!((v as u64) >= p, "rows must be strictly increasing");
        deltas[i] = ((v as u64) - p) as u32;
        p = v as u64 + 1;
    }
    *prev_plus1 = p;

    let w = deltas[..n]
        .iter()
        .map(|d| 32 - d.leading_zeros())
        .max()
        .unwrap_or(0);
    let bitpack_words = (n * w as usize).div_ceil(32);
    let varint_bytes: usize = deltas[..n].iter().map(|&d| varint_len(d)).sum();
    let varint_words = varint_bytes.div_ceil(4);
    let max = *values.last().expect("non-empty block");

    if varint_words < bitpack_words {
        out.push(pack_header0(VARINT_CODE, n, varint_words));
        out.push(max);
        let mut cur = 0u32;
        let mut shift = 0u32;
        for &d in &deltas[..n] {
            let mut d = d;
            loop {
                let byte = if d >= 0x80 { (d & 0x7f) | 0x80 } else { d };
                cur |= byte << shift;
                shift += 8;
                if shift == 32 {
                    out.push(cur);
                    cur = 0;
                    shift = 0;
                }
                if d < 0x80 {
                    break;
                }
                d >>= 7;
            }
        }
        if shift > 0 {
            out.push(cur);
        }
    } else {
        out.push(pack_header0(w, n, bitpack_words));
        out.push(max);
        if w > 0 {
            let mut cur = 0u64;
            let mut bits = 0u32;
            for &d in &deltas[..n] {
                cur |= (d as u64) << bits;
                bits += w;
                while bits >= 32 {
                    out.push(cur as u32);
                    cur >>= 32;
                    bits -= 32;
                }
            }
            if bits > 0 {
                out.push(cur as u32);
            }
        }
    }
}

/// Compresses one sorted, duplicate-free adjacency row, appending the
/// encoded words (count word + blocks) to `out`.
pub fn compress_row(values: &[VertexId], out: &mut Vec<u32>) {
    debug_assert!(
        values.windows(2).all(|w| w[0] < w[1]),
        "rows must be sorted and duplicate-free"
    );
    out.push(values.len() as u32);
    let mut prev_plus1 = 0u64;
    for chunk in values.chunks(BLOCK_VALUES) {
        encode_block(chunk, &mut prev_plus1, out);
    }
}

/// Number of decoded values in a compressed row (its first word). Zero for
/// an empty slice, so truncated transfers degrade loudly in debug builds
/// rather than reading out of bounds.
#[inline]
pub fn decoded_len(row: &[u32]) -> usize {
    row.first().copied().unwrap_or(0) as usize
}

/// Decodes a full compressed row, appending the ids to `out`.
pub fn decode_row(row: &[u32], out: &mut Vec<VertexId>) {
    let mut cursor = RowCursor::new(row);
    let mut buf = [0u32; BLOCK_VALUES];
    while !cursor.is_done() {
        let n = cursor.decode_block(&mut buf);
        out.extend_from_slice(&buf[..n]);
    }
}

/// Streaming reader over one compressed row: peek a block's header (count,
/// max, payload shape), then either decode it into a stack buffer or skip it
/// wholesale using the header max as the new delta base. The fused
/// intersection kernels drive this cursor directly, so a skipped block costs
/// two word reads and no decode work.
#[derive(Debug, Clone)]
pub struct RowCursor<'a> {
    words: &'a [u32],
    /// Index of the next block's header0.
    pos: usize,
    /// Values not yet decoded or skipped.
    remaining: usize,
    /// `last decoded value + 1` (0 at the start of the row). Fits u64 so the
    /// virtual `−1` predecessor and a `u32::MAX` value are both exact.
    prev_plus1: u64,
}

impl<'a> RowCursor<'a> {
    /// Opens a cursor over a full compressed row (`row[0]` = value count).
    pub fn new(row: &'a [u32]) -> Self {
        Self {
            words: row,
            pos: 1,
            remaining: decoded_len(row),
            prev_plus1: 0,
        }
    }

    /// Total values left to decode or skip.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// True once every value has been decoded or skipped.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.remaining == 0
    }

    /// The delta base of the next block: `previous decoded value + 1`
    /// (0 at the row start). Only meaningful while `!is_done()`, where a
    /// well-formed row always fits `u32` (values are strictly increasing
    /// below `2^32`); a corrupted block maximum saturates instead of
    /// wrapping.
    #[inline]
    pub fn base(&self) -> u32 {
        self.prev_plus1.min(u32::MAX as u64) as u32
    }

    /// Word index (within the row slice) of the next block's header, i.e.
    /// how many words of the row have been consumed so far. Lets fused
    /// copy+decode loops land the row incrementally block by block.
    #[inline]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Header of the next block, without consuming it. Returns `None` at the
    /// end of the row — including the corrupted "ends": a header that does
    /// not fit in the remaining words, or one whose claimed payload extends
    /// past the row.
    #[inline]
    pub fn peek(&self) -> Option<BlockHeader> {
        if self.remaining == 0 || self.pos + 1 >= self.words.len() {
            return None;
        }
        let (code, count, payload_words) = unpack_header0(self.words[self.pos]);
        if self.pos + 2 + payload_words > self.words.len() {
            return None;
        }
        Some(BlockHeader {
            code,
            count,
            payload_words,
            max: self.words[self.pos + 1],
        })
    }

    /// Payload words of the next block (empty for `w = 0` runs). Pairs with
    /// [`RowCursor::peek`] for out-of-line (SIMD) decoders; afterwards call
    /// [`RowCursor::skip_block`] to consume the block.
    #[inline]
    pub fn payload(&self, header: &BlockHeader) -> &'a [u32] {
        &self.words[self.pos + 2..self.pos + 2 + header.payload_words]
    }

    /// Consumes the next block without decoding it: the header max becomes
    /// the new delta base. Two word reads, no payload access. On a corrupted
    /// row ([`RowCursor::peek`] → `None` while values remain) the cursor
    /// marks itself done so every driving loop terminates.
    pub fn skip_block(&mut self) {
        let Some(header) = self.peek() else {
            self.remaining = 0;
            return;
        };
        self.pos += 2 + header.payload_words;
        self.remaining = self.remaining.saturating_sub(header.count);
        self.prev_plus1 = header.max as u64 + 1;
    }

    /// Decodes the next block into `out`, returning the number of values
    /// written. Scalar reference decoder ([`decode_block_scalar`]) — the SIMD
    /// variants in `rmatc-core::intersect` must agree with it bit-exactly.
    /// Returns 0 (and marks the cursor done) on a corrupted row.
    pub fn decode_block(&mut self, out: &mut [VertexId; BLOCK_VALUES]) -> usize {
        let Some(header) = self.peek() else {
            self.remaining = 0;
            return 0;
        };
        decode_block_scalar(&header, self.payload(&header), self.base(), out);
        self.pos += 2 + header.payload_words;
        self.remaining = self.remaining.saturating_sub(header.count);
        self.prev_plus1 = header.max as u64 + 1;
        header.count
    }
}

/// Decodes one block's payload given its header and delta base (`previous
/// decoded value + 1`; 0 at a row start). The scalar reference every
/// accelerated decoder is differentially tested against.
///
/// Corruption-tolerant: a header claiming more values than its payload
/// carries reads zeros past the payload end (`payload.get` clamping), so
/// fault-injected garbage decodes to garbage values without panicking.
pub fn decode_block_scalar(
    header: &BlockHeader,
    payload: &[u32],
    base: u32,
    out: &mut [VertexId; BLOCK_VALUES],
) {
    let mut value = base as u64;
    if header.code == VARINT_CODE {
        let mut wi = 0usize;
        let mut shift = 0u32;
        for slot in out.iter_mut().take(header.count) {
            let mut d = 0u32;
            let mut dshift = 0u32;
            loop {
                let byte = (payload.get(wi).copied().unwrap_or(0) >> shift) & 0xff;
                shift += 8;
                if shift == 32 {
                    wi += 1;
                    shift = 0;
                }
                if dshift < 32 {
                    d |= (byte & 0x7f) << dshift;
                }
                dshift += 7;
                if byte < 0x80 {
                    break;
                }
            }
            value += d as u64;
            *slot = value as VertexId;
            value += 1;
        }
    } else {
        let w = header.code;
        let mask = if w == 32 {
            u32::MAX as u64
        } else {
            (1u64 << w) - 1
        };
        let mut cur = 0u64;
        let mut bits = 0u32;
        let mut wi = 0usize;
        for slot in out.iter_mut().take(header.count) {
            while bits < w {
                cur |= (payload.get(wi).copied().unwrap_or(0) as u64) << bits;
                wi += 1;
                bits += 32;
            }
            let d = cur & mask;
            cur >>= w;
            bits -= w;
            value += d;
            *slot = value as VertexId;
            value += 1;
        }
    }
}

/// A whole graph (or rank partition) with every adjacency row compressed.
/// `row_offsets[v] .. row_offsets[v + 1]` indexes the words of row `v` in
/// `words` — the compressed analogue of Figure 2's two CSR arrays.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CompressedCsr {
    row_offsets: Vec<u64>,
    words: Vec<u32>,
    direction: Direction,
    /// Total decoded values across all rows (= the plain edge count).
    total_values: u64,
}

impl CompressedCsr {
    /// Compresses every row of a plain CSR graph.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let n = g.vertex_count();
        let mut row_offsets = Vec::with_capacity(n + 1);
        let mut words = Vec::with_capacity(g.adjacencies().len() / 2 + n);
        row_offsets.push(0);
        for v in 0..n as VertexId {
            compress_row(g.neighbours(v), &mut words);
            row_offsets.push(words.len() as u64);
        }
        Self {
            row_offsets,
            words,
            direction: g.direction(),
            total_values: g.edge_count(),
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of stored (directed) edges, i.e. total decoded values.
    pub fn edge_count(&self) -> u64 {
        self.total_values
    }

    /// Direction of the graph.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Word-offset array (length `n + 1`) into [`CompressedCsr::words`].
    pub fn row_offsets(&self) -> &[u64] {
        &self.row_offsets
    }

    /// The concatenated compressed rows.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// The compressed words of row `v`.
    pub fn row(&self, v: VertexId) -> &[u32] {
        let lo = self.row_offsets[v as usize] as usize;
        let hi = self.row_offsets[v as usize + 1] as usize;
        &self.words[lo..hi]
    }

    /// Out-degree of `v` (O(1): the row's count word).
    pub fn degree(&self, v: VertexId) -> u32 {
        self.row(v).first().copied().unwrap_or(0)
    }

    /// Decompresses the whole graph back to a plain CSR (tests and
    /// differential suites).
    pub fn decode(&self) -> CsrGraph {
        let n = self.vertex_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adjacencies = Vec::with_capacity(self.total_values as usize);
        offsets.push(0);
        for v in 0..n as VertexId {
            decode_row(self.row(v), &mut adjacencies);
            offsets.push(adjacencies.len() as u64);
        }
        CsrGraph::from_raw_parts(offsets, adjacencies, self.direction)
    }

    /// Bytes occupied by the compressed representation
    /// (`(n + 1) * 8` offsets + `words * 4`), comparable with
    /// [`CsrGraph::csr_size_bytes`].
    pub fn stored_bytes(&self) -> u64 {
        (self.row_offsets.len() as u64) * 8 + (self.words.len() as u64) * 4
    }

    /// Bytes the adjacency data would occupy uncompressed (`m * 4`).
    pub fn logical_adjacency_bytes(&self) -> u64 {
        self.total_values * 4
    }

    /// Bytes the adjacency data occupies compressed (`words * 4`).
    pub fn stored_adjacency_bytes(&self) -> u64 {
        (self.words.len() as u64) * 4
    }

    /// Adjacency compression ratio: logical (plain) bytes over stored
    /// (compressed) bytes. Above 1 means compression wins; an empty graph
    /// reports 1.
    pub fn compression_ratio(&self) -> f64 {
        if self.words.is_empty() {
            return 1.0;
        }
        self.logical_adjacency_bytes() as f64 / self.stored_adjacency_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GraphGenerator, RmatGenerator};

    fn round_trip(values: &[VertexId]) {
        let mut words = Vec::new();
        compress_row(values, &mut words);
        assert_eq!(decoded_len(&words), values.len());
        let mut back = Vec::new();
        decode_row(&words, &mut back);
        assert_eq!(back, values, "row {values:?} failed to round-trip");
    }

    #[test]
    fn adversarial_rows_round_trip() {
        round_trip(&[]);
        round_trip(&[0]);
        round_trip(&[u32::MAX]);
        round_trip(&[0, u32::MAX]);
        round_trip(&(0..1000).collect::<Vec<_>>()); // dense run: w = 0 blocks
        round_trip(&(0..64).map(|i| i * 1_000_000).collect::<Vec<_>>());
        // One huge gap in an otherwise dense block: varint escape territory.
        let mut row: Vec<u32> = (0..63).collect();
        row.push(u32::MAX - 1);
        round_trip(&row);
        // Exactly one block, one more than a block, block-boundary sizes.
        for n in [63usize, 64, 65, 127, 128, 129] {
            round_trip(&(0..n as u32).map(|i| i * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn corrupted_words_decode_to_garbage_without_panicking() {
        // The fused transfer closures run before the self-healing layer's
        // checksum can reject a corrupted buffer, so decoding arbitrary
        // words must be memory-safe and terminate (garbage counts are
        // discarded by the retry). Deterministic xorshift garbage plus
        // targeted truncations of a valid row.
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u32
        };
        let mut valid = Vec::new();
        compress_row(&(0..300).map(|i| i * 7).collect::<Vec<_>>(), &mut valid);
        let mut rows: Vec<Vec<u32>> = (0..200)
            .map(|i| (0..i % 40).map(|_| next()).collect())
            .collect();
        for cut in 0..valid.len() {
            rows.push(valid[..cut].to_vec());
        }
        // Valid structure, corrupted count word and corrupted headers.
        for _ in 0..50 {
            let mut r = valid.clone();
            let at = next() as usize % r.len();
            r[at] ^= next();
            rows.push(r);
        }
        for row in &rows {
            let mut out = Vec::new();
            decode_row(row, &mut out);
            let mut cursor = RowCursor::new(row);
            let mut buf = [0u32; BLOCK_VALUES];
            while !cursor.is_done() {
                if cursor.peek().is_some() {
                    cursor.decode_block(&mut buf);
                } else {
                    cursor.skip_block();
                }
            }
        }
    }

    #[test]
    fn dense_runs_cost_only_headers() {
        // A run starting at 0 has every delta-minus-one equal to zero,
        // including the first (which is relative to a virtual −1).
        let mut words = Vec::new();
        compress_row(&(0..64).collect::<Vec<_>>(), &mut words);
        // count + one w=0 block (2 header words, no payload).
        assert_eq!(words.len(), 3);
        // A shifted run still packs to the width of its first delta only.
        let mut shifted = Vec::new();
        compress_row(&(10..74).collect::<Vec<_>>(), &mut shifted);
        let (code, _, payload_words) = unpack_header0(shifted[1]);
        assert_eq!(code, 4, "width is set by the leading delta of 10");
        assert_eq!(payload_words, 8);
    }

    #[test]
    fn varint_escape_beats_bitpack_on_one_huge_gap() {
        let mut row: Vec<u32> = (0..63).collect();
        row.push(u32::MAX - 1);
        let mut words = Vec::new();
        compress_row(&row, &mut words);
        let (code, count, payload_words) = unpack_header0(words[1]);
        assert_eq!(code, VARINT_CODE);
        assert_eq!(count, 64);
        // 63 one-byte deltas + one five-byte delta = 68 bytes = 17 words,
        // versus 64 words bitpacked at w = 32.
        assert_eq!(payload_words, 17);
        let mut back = Vec::new();
        decode_row(&words, &mut back);
        assert_eq!(back, row);
    }

    #[test]
    fn cursor_skip_matches_decode() {
        let row: Vec<u32> = (0..300).map(|i| i * 7 + (i % 5)).collect();
        let mut words = Vec::new();
        compress_row(&row, &mut words);
        // Skip the first two blocks, decode the rest: must agree with the
        // tail of the full decode.
        let mut cursor = RowCursor::new(&words);
        cursor.skip_block();
        cursor.skip_block();
        assert_eq!(cursor.remaining(), 300 - 128);
        assert_eq!(cursor.base(), row[127] + 1);
        let mut buf = [0u32; BLOCK_VALUES];
        let mut tail = Vec::new();
        while !cursor.is_done() {
            let n = cursor.decode_block(&mut buf);
            tail.extend_from_slice(&buf[..n]);
        }
        assert_eq!(tail, row[128..]);
    }

    #[test]
    fn cursor_peek_exposes_skip_bounds() {
        let row: Vec<u32> = (0..128).map(|i| i * 2).collect();
        let mut words = Vec::new();
        compress_row(&row, &mut words);
        let cursor = RowCursor::new(&words);
        let h = cursor.peek().unwrap();
        assert_eq!(h.count, 64);
        assert_eq!(h.max, row[63]);
        assert_eq!(cursor.payload(&h).len(), h.payload_words);
    }

    #[test]
    fn compressed_csr_round_trips_and_compresses_rmat() {
        let g = RmatGenerator::paper(10, 8).generate_cleaned(7).into_csr();
        let c = CompressedCsr::from_csr(&g);
        assert_eq!(c.vertex_count(), g.vertex_count());
        assert_eq!(c.edge_count(), g.edge_count());
        assert_eq!(c.decode(), g);
        for v in 0..g.vertex_count() as VertexId {
            assert_eq!(c.degree(v), g.degree(v));
        }
        assert!(
            c.compression_ratio() >= 2.0,
            "R-MAT adjacency must compress at least 2x, got {}",
            c.compression_ratio()
        );
        assert!(c.stored_bytes() < g.csr_size_bytes());
    }

    #[test]
    fn empty_graph_compresses_cleanly() {
        let g = CsrGraph::from_edges(0, &[], Direction::Undirected);
        let c = CompressedCsr::from_csr(&g);
        assert_eq!(c.vertex_count(), 0);
        assert_eq!(c.edge_count(), 0);
        assert_eq!(c.compression_ratio(), 1.0);
        assert_eq!(c.decode(), g);
    }

    #[test]
    fn storage_labels_and_default() {
        assert_eq!(GraphStorage::default(), GraphStorage::Plain);
        assert_eq!(GraphStorage::Plain.label(), "plain");
        assert_eq!(GraphStorage::Compressed.label(), "compressed");
    }
}
