//! Fundamental identifier types shared across the workspace.

/// Vertex identifier. The paper's largest graph (R-MAT S30) has 2^30 vertices, which
/// fits comfortably in 32 bits; using `u32` halves the memory traffic of adjacency
/// reads, which is exactly the quantity the evaluation studies.
pub type VertexId = u32;

/// Edge identifier / edge count. Edge counts can exceed 2^32 (R-MAT S30 EF16 has
/// ~17.2 G edges), so edges are indexed with 64 bits.
pub type EdgeId = u64;

/// A directed edge `(source, destination)`.
pub type Edge = (VertexId, VertexId);

/// Direction of a graph. The paper handles both: LCC uses Eq. (1) for directed and
/// Eq. (2) for undirected graphs, and Table II mixes both kinds of datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// Every edge (u, v) is also present as (v, u).
    Undirected,
    /// Edges are stored exactly as given.
    Directed,
}

impl Direction {
    /// Short label used in reports ("U"/"D"), matching Table II of the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Direction::Undirected => "U",
            Direction::Directed => "D",
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Direction::Undirected => write!(f, "undirected"),
            Direction::Directed => write!(f, "directed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_labels_match_table2() {
        assert_eq!(Direction::Undirected.label(), "U");
        assert_eq!(Direction::Directed.label(), "D");
    }

    #[test]
    fn direction_display_is_lowercase() {
        assert_eq!(Direction::Undirected.to_string(), "undirected");
        assert_eq!(Direction::Directed.to_string(), "directed");
    }
}
