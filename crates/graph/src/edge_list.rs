//! Mutable edge-list staging representation and the cleaning passes the paper applies
//! before building the CSR (Section II-B): multi-edge removal, self-loop removal,
//! symmetrization for undirected inputs, and iterative removal of vertices with degree
//! below two (such vertices cannot participate in a triangle).

use crate::types::{Direction, Edge, VertexId};
use crate::{GraphError, Result};

/// A graph under construction: a flat list of directed edges plus a vertex count.
///
/// The edge list is the mutable staging area; once cleaned it is converted into an
/// immutable [`crate::CsrGraph`] for computation. All cleaning passes are explicit
/// methods so the pipeline (and tests) can exercise them independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    n: usize,
    edges: Vec<Edge>,
    direction: Direction,
}

impl EdgeList {
    /// Creates an empty edge list over `n` vertices.
    pub fn new(n: usize, direction: Direction) -> Self {
        Self {
            n,
            edges: Vec::new(),
            direction,
        }
    }

    /// Creates an edge list from existing edges, validating vertex ranges.
    pub fn from_edges(n: usize, edges: Vec<Edge>, direction: Direction) -> Result<Self> {
        for &(u, v) in &edges {
            if u as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u as u64,
                    n: n as u64,
                });
            }
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v as u64,
                    n: n as u64,
                });
            }
        }
        Ok(Self {
            n,
            edges,
            direction,
        })
    }

    /// Number of vertices (including isolated ones).
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges currently stored.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the list is treated as directed or undirected.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The raw directed edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Adds a single edge. Panics in debug builds if the endpoints are out of range.
    pub fn push(&mut self, u: VertexId, v: VertexId) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n);
        self.edges.push((u, v));
    }

    /// Appends many edges at once.
    pub fn extend<I: IntoIterator<Item = Edge>>(&mut self, iter: I) {
        self.edges.extend(iter);
    }

    /// Removes self-loops `(v, v)`; the paper's graphs contain no loops.
    pub fn remove_self_loops(&mut self) -> usize {
        let before = self.edges.len();
        self.edges.retain(|&(u, v)| u != v);
        before - self.edges.len()
    }

    /// Removes duplicate edges (multi-edges), keeping one copy of each.
    /// Returns the number of duplicates removed.
    pub fn deduplicate(&mut self) -> usize {
        let before = self.edges.len();
        self.edges.sort_unstable();
        self.edges.dedup();
        before - self.edges.len()
    }

    /// Makes the edge set symmetric by inserting the reverse of every edge, then
    /// deduplicating. After this call the list is marked undirected.
    pub fn symmetrize(&mut self) {
        let reversed: Vec<Edge> = self.edges.iter().map(|&(u, v)| (v, u)).collect();
        self.edges.extend(reversed);
        self.deduplicate();
        self.remove_self_loops();
        self.direction = Direction::Undirected;
    }

    /// Out-degrees of all vertices under the current edge set.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n];
        for &(u, _) in &self.edges {
            deg[u as usize] += 1;
        }
        deg
    }

    /// In-degrees of all vertices under the current edge set.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n];
        for &(_, v) in &self.edges {
            deg[v as usize] += 1;
        }
        deg
    }

    /// Total degree (in + out) of all vertices; for undirected symmetric lists this is
    /// twice the undirected degree.
    pub fn total_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        deg
    }

    /// Removes vertices whose (undirected) degree is less than two, as the paper does:
    /// such vertices cannot close a triangle. Removal is applied once (not to a fixed
    /// point) to mirror the paper's "remove vertices that have degree less than two"
    /// pre-processing, and remaining vertices are compacted to a dense id range.
    ///
    /// Returns the number of vertices removed.
    pub fn remove_low_degree_vertices(&mut self) -> usize {
        let deg = match self.direction {
            Direction::Undirected => {
                // In a symmetric edge list each undirected edge appears twice, so the
                // out-degree equals the undirected degree.
                self.out_degrees()
            }
            Direction::Directed => {
                // For directed graphs a vertex needs at least two incident edges
                // (in either orientation) to participate in a triangle.
                self.total_degrees()
            }
        };
        let keep: Vec<bool> = deg.iter().map(|&d| d >= 2).collect();
        let removed = keep.iter().filter(|&&k| !k).count();
        if removed == 0 {
            return 0;
        }
        // Build the compaction map old-id -> new-id.
        let mut remap = vec![VertexId::MAX; self.n];
        let mut next: VertexId = 0;
        for (old, &k) in keep.iter().enumerate() {
            if k {
                remap[old] = next;
                next += 1;
            }
        }
        self.edges
            .retain(|&(u, v)| keep[u as usize] && keep[v as usize]);
        for e in &mut self.edges {
            *e = (remap[e.0 as usize], remap[e.1 as usize]);
        }
        self.n = next as usize;
        removed
    }

    /// Applies a vertex permutation: vertex `v` becomes `perm[v]`.
    /// `perm` must be a permutation of `0..n`.
    pub fn relabel(&mut self, perm: &[VertexId]) {
        assert_eq!(
            perm.len(),
            self.n,
            "permutation length must equal vertex count"
        );
        debug_assert!(crate::relabel::is_permutation(perm));
        for e in &mut self.edges {
            *e = (perm[e.0 as usize], perm[e.1 as usize]);
        }
    }

    /// Runs the paper's full cleaning pipeline: drop self-loops and multi-edges,
    /// symmetrize if undirected, and remove vertices that cannot be in a triangle.
    pub fn clean(&mut self) {
        self.remove_self_loops();
        self.deduplicate();
        if self.direction == Direction::Undirected {
            self.symmetrize();
        }
        self.remove_low_degree_vertices();
    }

    /// Consumes the edge list and produces the immutable CSR representation.
    pub fn into_csr(mut self) -> crate::CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        crate::CsrGraph::from_sorted_edges(self.n, &self.edges, self.direction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_directed() -> EdgeList {
        EdgeList::from_edges(
            4,
            vec![(0, 1), (1, 2), (2, 0), (3, 3), (0, 1)],
            Direction::Directed,
        )
        .unwrap()
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let err = EdgeList::from_edges(2, vec![(0, 5)], Direction::Directed).unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: 5, n: 2 });
    }

    #[test]
    fn remove_self_loops_counts_removed() {
        let mut el = small_directed();
        assert_eq!(el.remove_self_loops(), 1);
        assert!(el.edges().iter().all(|&(u, v)| u != v));
    }

    #[test]
    fn deduplicate_removes_multi_edges() {
        let mut el = small_directed();
        assert_eq!(el.deduplicate(), 1);
        assert_eq!(el.edge_count(), 4);
    }

    #[test]
    fn symmetrize_adds_reverse_edges_and_marks_undirected() {
        let mut el = EdgeList::from_edges(3, vec![(0, 1), (1, 2)], Direction::Directed).unwrap();
        el.symmetrize();
        assert_eq!(el.direction(), Direction::Undirected);
        let mut edges = el.edges().to_vec();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 0), (1, 2), (2, 1)]);
    }

    #[test]
    fn symmetrize_is_idempotent() {
        let mut el = EdgeList::from_edges(3, vec![(0, 1), (1, 2)], Direction::Directed).unwrap();
        el.symmetrize();
        let once = el.clone();
        el.symmetrize();
        assert_eq!(el, once);
    }

    #[test]
    fn degrees_are_consistent() {
        let el = small_directed();
        assert_eq!(el.out_degrees(), vec![2, 1, 1, 1]);
        assert_eq!(el.in_degrees(), vec![1, 2, 1, 1]);
        assert_eq!(el.total_degrees(), vec![3, 3, 2, 2]);
    }

    #[test]
    fn low_degree_removal_drops_isolated_and_pendant_vertices() {
        // Triangle 0-1-2 plus a pendant vertex 3 attached to 0 and an isolated vertex 4.
        let mut el = EdgeList::from_edges(
            5,
            vec![
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (0, 2),
                (2, 0),
                (0, 3),
                (3, 0),
            ],
            Direction::Undirected,
        )
        .unwrap();
        let removed = el.remove_low_degree_vertices();
        assert_eq!(removed, 2);
        assert_eq!(el.vertex_count(), 3);
        // The remaining edges form the symmetric triangle on relabeled vertices 0..3.
        assert_eq!(el.edge_count(), 6);
        let deg = el.out_degrees();
        assert!(deg.iter().all(|&d| d == 2));
    }

    #[test]
    fn low_degree_removal_noop_when_all_qualify() {
        let mut el = EdgeList::from_edges(
            3,
            vec![(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)],
            Direction::Undirected,
        )
        .unwrap();
        assert_eq!(el.remove_low_degree_vertices(), 0);
        assert_eq!(el.vertex_count(), 3);
    }

    #[test]
    fn relabel_applies_permutation() {
        let mut el = EdgeList::from_edges(3, vec![(0, 1), (1, 2)], Direction::Directed).unwrap();
        el.relabel(&[2, 0, 1]);
        assert_eq!(el.edges(), &[(2, 0), (0, 1)]);
    }

    #[test]
    fn clean_produces_triangle_ready_graph() {
        let mut el = EdgeList::from_edges(
            6,
            vec![(0, 1), (1, 2), (2, 0), (0, 0), (0, 1), (4, 5)],
            Direction::Undirected,
        )
        .unwrap();
        el.clean();
        // Vertices 3 (isolated), 4 and 5 (degree 1 after symmetrization) are removed.
        assert_eq!(el.vertex_count(), 3);
        assert_eq!(el.edge_count(), 6);
    }

    #[test]
    fn into_csr_round_trips_edges() {
        let el =
            EdgeList::from_edges(3, vec![(0, 1), (0, 2), (1, 2)], Direction::Directed).unwrap();
        let csr = el.into_csr();
        assert_eq!(csr.vertex_count(), 3);
        assert_eq!(csr.edge_count(), 3);
        assert_eq!(csr.neighbours(0), &[1, 2]);
        assert_eq!(csr.neighbours(1), &[2]);
        assert_eq!(csr.neighbours(2), &[] as &[VertexId]);
    }
}
