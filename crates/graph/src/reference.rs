//! Simple sequential reference implementations of triangle counting and LCC.
//!
//! These are intentionally written in the most obvious way possible (node-iterator
//! with hash-free sorted merge) and are used as the ground truth that every other
//! implementation in the workspace — the shared-memory kernels, the asynchronous
//! distributed algorithm, cached or not, and the TriC baseline — must agree with.

use crate::csr::CsrGraph;
use crate::types::{Direction, VertexId};

/// Number of triangles that the edge `(u, v)` closes, counting only the third vertex
/// `w > v` (the "upper triangle" offsetting described in Section II-C that removes
/// double counting in the edge-centric method).
pub fn triangles_on_edge_upper(g: &CsrGraph, u: VertexId, v: VertexId) -> u64 {
    let a = g.neighbours(u);
    let b = g.neighbours(v);
    // Only count common neighbours w with w > v.
    let start_a = a.partition_point(|&x| x <= v);
    let start_b = b.partition_point(|&x| x <= v);
    sorted_intersection_count(&a[start_a..], &b[start_b..])
}

/// Number of common neighbours of `u` and `v` (no offsetting).
pub fn common_neighbours(g: &CsrGraph, u: VertexId, v: VertexId) -> u64 {
    sorted_intersection_count(g.neighbours(u), g.neighbours(v))
}

/// Size of the intersection of two sorted, duplicate-free slices.
pub fn sorted_intersection_count(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    count
}

/// Number of closed triplets centred at each vertex — the numerator of the LCC
/// formula.
///
/// * Undirected graphs: the number of *unordered* neighbour pairs `{v, w}` of `u`
///   that are themselves connected, obtained with the paper's upper-triangle
///   offsetting (only `w > v` is counted), to be combined with the factor 2 of
///   Eq. (2).
/// * Directed graphs: the number of *ordered* neighbour pairs `(v, w)` of `u` with
///   `e_vw ∈ E`, i.e. the full edge-centric intersection without offsetting, which
///   is exactly the numerator of Eq. (1).
pub fn per_vertex_triangles(g: &CsrGraph) -> Vec<u64> {
    let n = g.vertex_count();
    let mut t = vec![0u64; n];
    for u in 0..n as VertexId {
        let a = g.neighbours(u);
        for &v in a {
            let b = g.neighbours(v);
            t[u as usize] += match g.direction() {
                Direction::Undirected => {
                    let start_a = a.partition_point(|&x| x <= v);
                    let start_b = b.partition_point(|&x| x <= v);
                    sorted_intersection_count(&a[start_a..], &b[start_b..])
                }
                Direction::Directed => sorted_intersection_count(a, b),
            };
        }
    }
    t
}

/// Total number of distinct triangles in an undirected graph; for directed graphs it
/// returns the total number of closed triplets (the paper's △ijk patterns), which is
/// not divided by three because each oriented pattern lies on a distinct corner.
pub fn count_triangles(g: &CsrGraph) -> u64 {
    let total: u64 = per_vertex_triangles(g).iter().sum();
    match g.direction() {
        // Each triangle {a, b, c} is counted once from each of its three corners.
        Direction::Undirected => total / 3,
        Direction::Directed => total,
    }
}

/// LCC score of a single vertex given its triangle participation count, following
/// Eq. (1) (directed) / Eq. (2) (undirected) of the paper.
pub fn lcc_from_triangles(direction: Direction, degree: u32, triangles: u64) -> f64 {
    if degree < 2 {
        return 0.0;
    }
    let d = degree as f64;
    let possible = d * (d - 1.0);
    match direction {
        Direction::Directed => triangles as f64 / possible,
        Direction::Undirected => 2.0 * triangles as f64 / possible,
    }
}

/// LCC scores of every vertex.
pub fn lcc_scores(g: &CsrGraph) -> Vec<f64> {
    per_vertex_triangles(g)
        .iter()
        .enumerate()
        .map(|(v, &t)| lcc_from_triangles(g.direction(), g.degree(v as VertexId), t))
        .collect()
}

/// Average LCC over all vertices (vertices with degree < 2 contribute 0).
pub fn average_lcc(g: &CsrGraph) -> f64 {
    let scores = lcc_scores(g);
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().sum::<f64>() / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GraphGenerator, WattsStrogatz};

    /// A 4-clique: every vertex has LCC 1 and there are 4 triangles.
    fn clique4() -> CsrGraph {
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        CsrGraph::from_edges(4, &edges, Direction::Undirected)
    }

    /// The toy graph of Figure 1 (left) of the paper, symmetrized:
    /// vertices 0..6, edges 0-1, 0-2, 1-2, 1-3, 1-4, 2-4, 3-4, 4-5.
    pub fn figure1_graph() -> CsrGraph {
        let base = [
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 4),
            (3, 4),
            (4, 5),
        ];
        let mut edges = Vec::new();
        for &(u, v) in &base {
            edges.push((u, v));
            edges.push((v, u));
        }
        CsrGraph::from_edges(6, &edges, Direction::Undirected)
    }

    #[test]
    fn clique_has_binomial_triangles() {
        let g = clique4();
        assert_eq!(count_triangles(&g), 4);
        assert!(lcc_scores(&g).iter().all(|&c| (c - 1.0).abs() < 1e-12));
    }

    #[test]
    fn figure1_triangle_count() {
        let g = figure1_graph();
        // Triangles: {0,1,2}, {1,2,4}, {1,3,4}.
        assert_eq!(count_triangles(&g), 3);
    }

    #[test]
    fn figure1_lcc_scores() {
        let g = figure1_graph();
        let c = lcc_scores(&g);
        // Vertex 0: neighbours {1,2}, 1 connected pair, degree 2 -> 2*1/(2*1) = 1.
        assert!((c[0] - 1.0).abs() < 1e-12);
        // Vertex 5: degree 1 -> 0.
        assert_eq!(c[5], 0.0);
        // Vertex 4: neighbours {1,2,3,5}, connected pairs {1,2},{1,3} -> 2*2/(4*3)=1/3.
        assert!((c[4] - 1.0 / 3.0).abs() < 1e-12);
        // Vertex 1: neighbours {0,2,3,4}, pairs {0,2},{2,4},{3,4} -> 2*3/(4*3) = 0.5.
        assert!((c[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn triangle_free_graph_has_zero_lcc() {
        // A 6-cycle has no triangles.
        let mut edges = Vec::new();
        for i in 0..6u32 {
            let j = (i + 1) % 6;
            edges.push((i, j));
            edges.push((j, i));
        }
        let g = CsrGraph::from_edges(6, &edges, Direction::Undirected);
        assert_eq!(count_triangles(&g), 0);
        assert!(lcc_scores(&g).iter().all(|&c| c == 0.0));
    }

    #[test]
    fn lcc_from_triangles_handles_low_degree() {
        assert_eq!(lcc_from_triangles(Direction::Undirected, 0, 0), 0.0);
        assert_eq!(lcc_from_triangles(Direction::Undirected, 1, 0), 0.0);
        assert!((lcc_from_triangles(Direction::Undirected, 3, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((lcc_from_triangles(Direction::Directed, 3, 2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sorted_intersection_count_basic() {
        assert_eq!(sorted_intersection_count(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(sorted_intersection_count(&[], &[1, 2]), 0);
        assert_eq!(sorted_intersection_count(&[1, 2, 3], &[1, 2, 3]), 3);
    }

    #[test]
    fn watts_strogatz_average_matches_analytic() {
        let csr = WattsStrogatz::new(100, 4, 0.0)
            .generate_cleaned(1)
            .into_csr();
        let expected = WattsStrogatz::lattice_lcc(4);
        assert!((average_lcc(&csr) - expected).abs() < 1e-9);
    }

    #[test]
    fn directed_clique_lcc_is_one() {
        // Complete digraph on 3 vertices: every ordered neighbour pair is connected,
        // so Eq. (1) gives LCC 1 for every vertex.
        let mut edges = Vec::new();
        for u in 0..3u32 {
            for v in 0..3u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(3, &edges, Direction::Directed);
        let scores = lcc_scores(&g);
        assert!(
            scores.iter().all(|&c| (c - 1.0).abs() < 1e-12),
            "{scores:?}"
        );
        assert_eq!(count_triangles(&g), 6);
    }

    #[test]
    fn directed_one_way_triangle_counts_ordered_pairs() {
        // Cycle 0→1→2→0: adj(0) = {1}, so no pair of neighbours exists and LCC is 0.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], Direction::Directed);
        assert!(lcc_scores(&g).iter().all(|&c| c == 0.0));
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn per_vertex_triangles_sum_is_three_times_total() {
        let g = figure1_graph();
        let per = per_vertex_triangles(&g);
        assert_eq!(per.iter().sum::<u64>(), 3 * count_triangles(&g));
    }
}
