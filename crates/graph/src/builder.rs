//! High-level pipeline that turns a raw edge source into a partition-ready CSR graph,
//! chaining the steps of Section II-B / III-A: clean → (optionally) relabel → CSR →
//! partition.

use crate::gen::GraphGenerator;
use crate::partition::{PartitionScheme, PartitionedGraph};
use crate::relabel;
use crate::types::Direction;
use crate::{CsrGraph, EdgeList, Result};

/// How vertices are relabeled before partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RelabelStrategy {
    /// Keep the input labels (the default when the input is not degree-ordered).
    None,
    /// Random relabeling with the given seed — the paper applies this to
    /// degree-ordered inputs so that high-degree vertices spread across partitions.
    Random {
        /// RNG seed for the permutation, kept explicit for reproducibility.
        seed: u64,
    },
    /// Relabel by descending degree — the pathological case for 1D partitioning,
    /// useful in experiments that show *why* random relabeling matters.
    DegreeOrdered,
}

/// Builder for the full ingest pipeline.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    edge_list: EdgeList,
    relabel: RelabelStrategy,
    clean: bool,
}

impl GraphBuilder {
    /// Starts from an existing edge list.
    pub fn from_edge_list(edge_list: EdgeList) -> Self {
        Self {
            edge_list,
            relabel: RelabelStrategy::None,
            clean: true,
        }
    }

    /// Starts from a generator.
    pub fn from_generator<G: GraphGenerator>(generator: &G, seed: u64) -> Self {
        Self::from_edge_list(generator.generate(seed))
    }

    /// Starts from raw edges.
    pub fn from_edges(n: usize, edges: Vec<(u32, u32)>, direction: Direction) -> Result<Self> {
        Ok(Self::from_edge_list(EdgeList::from_edges(
            n, edges, direction,
        )?))
    }

    /// Chooses the relabeling strategy (default: none).
    pub fn relabel(mut self, strategy: RelabelStrategy) -> Self {
        self.relabel = strategy;
        self
    }

    /// Enables or disables the cleaning pipeline (default: enabled).
    pub fn clean(mut self, clean: bool) -> Self {
        self.clean = clean;
        self
    }

    /// Runs the pipeline and produces the global CSR graph.
    pub fn build_csr(mut self) -> CsrGraph {
        if self.clean {
            self.edge_list.clean();
        }
        match self.relabel {
            RelabelStrategy::None => {}
            RelabelStrategy::Random { seed } => {
                let perm = relabel::random_permutation(self.edge_list.vertex_count(), seed);
                self.edge_list.relabel(&perm);
            }
            RelabelStrategy::DegreeOrdered => {
                let deg = self.edge_list.total_degrees();
                let perm = relabel::degree_ordered_permutation(&deg);
                self.edge_list.relabel(&perm);
            }
        }
        self.edge_list.into_csr()
    }

    /// Runs the pipeline and partitions the result over `ranks` ranks.
    pub fn build_partitioned(
        self,
        scheme: PartitionScheme,
        ranks: usize,
    ) -> Result<PartitionedGraph> {
        let csr = self.build_csr();
        PartitionedGraph::from_global(&csr, scheme, ranks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::RmatGenerator;

    #[test]
    fn builder_produces_same_graph_as_manual_pipeline() {
        let gen = RmatGenerator::paper(9, 8);
        let manual = gen.generate_cleaned(1).into_csr();
        let built = GraphBuilder::from_generator(&gen, 1).build_csr();
        assert_eq!(manual, built);
    }

    #[test]
    fn random_relabeling_preserves_triangles() {
        let gen = RmatGenerator::paper(9, 8);
        let plain = GraphBuilder::from_generator(&gen, 2).build_csr();
        let relabeled = GraphBuilder::from_generator(&gen, 2)
            .relabel(RelabelStrategy::Random { seed: 99 })
            .build_csr();
        assert_eq!(
            crate::reference::count_triangles(&plain),
            crate::reference::count_triangles(&relabeled)
        );
        assert_eq!(plain.edge_count(), relabeled.edge_count());
        assert_ne!(plain, relabeled, "relabeling should actually change labels");
    }

    #[test]
    fn degree_ordered_relabeling_concentrates_high_degrees_at_low_ids() {
        let gen = RmatGenerator::paper(10, 16);
        let g = GraphBuilder::from_generator(&gen, 3)
            .relabel(RelabelStrategy::DegreeOrdered)
            .build_csr();
        let degrees = g.degrees();
        let n = degrees.len();
        let first_half: u64 = degrees[..n / 2].iter().map(|&d| d as u64).sum();
        let second_half: u64 = degrees[n / 2..].iter().map(|&d| d as u64).sum();
        assert!(first_half > second_half);
    }

    #[test]
    fn skipping_clean_keeps_raw_vertices() {
        let edges = vec![(0u32, 1u32), (1, 2), (5, 5)];
        let built = GraphBuilder::from_edges(6, edges, Direction::Directed)
            .unwrap()
            .clean(false)
            .build_csr();
        assert_eq!(built.vertex_count(), 6);
        assert!(built.has_edge(5, 5));
    }

    #[test]
    fn build_partitioned_round_trips() {
        let gen = RmatGenerator::paper(9, 8);
        let pg = GraphBuilder::from_generator(&gen, 4)
            .build_partitioned(PartitionScheme::Block1D, 4)
            .unwrap();
        assert_eq!(pg.ranks(), 4);
        let csr = GraphBuilder::from_generator(&gen, 4).build_csr();
        assert_eq!(pg.reassemble(), csr);
    }
}
