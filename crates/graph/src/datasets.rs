//! Registry of the paper's datasets (Table II) and their synthetic stand-ins.
//!
//! The paper evaluates on SNAP, KONECT and UbiCrawler downloads plus R-MAT graphs.
//! The real downloads are unavailable offline and several are far larger than a
//! single machine, so every named dataset maps to a generator configuration that
//! reproduces the *family* of the original (degree-distribution shape, direction,
//! clustering level) at a configurable scale. The original |V| and |E| from Table II
//! are kept alongside so reports can show "paper size" vs "reproduced size".

use crate::gen::{BarabasiAlbert, EgoCircles, GraphGenerator, RmatGenerator, UniformRandom};
use crate::types::Direction;
use crate::CsrGraph;

/// Scale at which stand-ins are generated, as a divisor on the paper's vertex count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DatasetScale {
    /// Tiny graphs for unit tests (hundreds to thousands of vertices).
    Tiny,
    /// Small graphs for fast experiment runs (tens of thousands of vertices).
    Small,
    /// Medium graphs for the headline benchmark runs (hundreds of thousands).
    Medium,
}

impl DatasetScale {
    fn vertex_budget(&self) -> usize {
        match self {
            DatasetScale::Tiny => 2_000,
            DatasetScale::Small => 32_000,
            DatasetScale::Medium => 200_000,
        }
    }
}

/// The named datasets of Table II plus the Facebook-circles graph of Figures 1 and 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Dataset {
    /// SNAP com-Orkut: 3 M vertices, 117.2 M undirected edges.
    Orkut,
    /// SNAP LiveJournal (com-LiveJournal): 4 M vertices, 34.7 M undirected edges.
    LiveJournal,
    /// SNAP soc-LiveJournal1: 4.8 M vertices, 69 M directed edges.
    LiveJournal1,
    /// SNAP as-Skitter: 1.7 M vertices, 11.1 M undirected edges.
    Skitter,
    /// UbiCrawler uk-2005 web crawl: 39.5 M vertices, 936.4 M directed edges.
    Uk2005,
    /// KONECT wiki-en link graph: 13.6 M vertices, 437.2 M directed edges.
    WikiEn,
    /// SNAP ego-Facebook (Facebook circles): 4,039 vertices, 88,234 undirected edges.
    FacebookCircles,
    /// Synthetic R-MAT with the paper's parameters; scale/edge-factor as in Table II.
    RmatS21Ef16,
    /// R-MAT scale 23, edge factor 16.
    RmatS23Ef16,
    /// R-MAT scale 30, edge factor 16 (the 130 GiB graph of the large-scale runs).
    RmatS30Ef16,
    /// Uniform-degree baseline used in Figure 4.
    Uniform,
}

/// Static description of a dataset: the paper's reported size and our stand-in.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DatasetInfo {
    /// Table II name.
    pub name: &'static str,
    /// Directed or undirected, as listed in Table II.
    pub direction: Direction,
    /// |V| reported in the paper.
    pub paper_vertices: u64,
    /// |E| reported in the paper.
    pub paper_edges: u64,
    /// CSR size reported in the paper (bytes, approximate).
    pub paper_csr_bytes: u64,
    /// Short description of the stand-in generator used here.
    pub standin: &'static str,
}

impl Dataset {
    /// All datasets that appear in Table II (excludes FacebookCircles and Uniform,
    /// which appear only in the figures).
    pub fn table2() -> Vec<Dataset> {
        vec![
            Dataset::Orkut,
            Dataset::LiveJournal,
            Dataset::LiveJournal1,
            Dataset::Skitter,
            Dataset::Uk2005,
            Dataset::WikiEn,
            Dataset::RmatS21Ef16,
            Dataset::RmatS23Ef16,
            Dataset::RmatS30Ef16,
        ]
    }

    /// The six datasets of the small-scale strong-scaling experiments (Figure 9).
    pub fn figure9() -> Vec<Dataset> {
        vec![
            Dataset::RmatS21Ef16,
            Dataset::Orkut,
            Dataset::LiveJournal,
            Dataset::RmatS23Ef16,
            Dataset::Skitter,
            Dataset::LiveJournal1,
        ]
    }

    /// The three datasets of the large-scale experiments (Figure 10).
    pub fn figure10() -> Vec<Dataset> {
        vec![Dataset::RmatS30Ef16, Dataset::Uk2005, Dataset::WikiEn]
    }

    /// Static information about the dataset.
    pub fn info(&self) -> DatasetInfo {
        const MIB: u64 = 1024 * 1024;
        const GIB: u64 = 1024 * 1024 * 1024;
        match self {
            Dataset::Orkut => DatasetInfo {
                name: "SNAP-Orkut",
                direction: Direction::Undirected,
                paper_vertices: 3_000_000,
                paper_edges: 117_200_000,
                paper_csr_bytes: (905.8 * MIB as f64) as u64,
                standin: "Barabási–Albert with triangle closure (dense social network)",
            },
            Dataset::LiveJournal => DatasetInfo {
                name: "SNAP-LiveJournal",
                direction: Direction::Undirected,
                paper_vertices: 4_000_000,
                paper_edges: 34_700_000,
                paper_csr_bytes: (273.8 * MIB as f64) as u64,
                standin: "Barabási–Albert with triangle closure (sparser social network)",
            },
            Dataset::LiveJournal1 => DatasetInfo {
                name: "SNAP-LiveJournal1",
                direction: Direction::Directed,
                paper_vertices: 4_800_000,
                paper_edges: 69_000_000,
                paper_csr_bytes: (273.7 * MIB as f64) as u64,
                standin: "directed R-MAT with the paper's skew parameters",
            },
            Dataset::Skitter => DatasetInfo {
                name: "SNAP-Skitter",
                direction: Direction::Undirected,
                paper_vertices: 1_700_000,
                paper_edges: 11_100_000,
                paper_csr_bytes: (89.5 * MIB as f64) as u64,
                standin: "Barabási–Albert (internet-topology-like power law)",
            },
            Dataset::Uk2005 => DatasetInfo {
                name: "uk-2005",
                direction: Direction::Directed,
                paper_vertices: 39_500_000,
                paper_edges: 936_400_000,
                paper_csr_bytes: (3.6 * GIB as f64) as u64,
                standin: "directed R-MAT, milder skew (web crawl)",
            },
            Dataset::WikiEn => DatasetInfo {
                name: "wiki-en",
                direction: Direction::Directed,
                paper_vertices: 13_600_000,
                paper_edges: 437_200_000,
                paper_csr_bytes: (1.7 * GIB as f64) as u64,
                standin: "directed R-MAT (hyperlink graph)",
            },
            Dataset::FacebookCircles => DatasetInfo {
                name: "Facebook circles",
                direction: Direction::Undirected,
                paper_vertices: 4_039,
                paper_edges: 88_234,
                paper_csr_bytes: 4_040 * 8 + 2 * 88_234 * 4,
                standin: "ego-circle community generator at full scale",
            },
            Dataset::RmatS21Ef16 => DatasetInfo {
                name: "R-MAT S21 EF16",
                direction: Direction::Undirected,
                paper_vertices: 2_100_000,
                paper_edges: 33_600_000,
                paper_csr_bytes: (251.1 * MIB as f64) as u64,
                standin: "R-MAT a=0.57 b=c=0.19 d=0.05, reduced scale",
            },
            Dataset::RmatS23Ef16 => DatasetInfo {
                name: "R-MAT S23 EF16",
                direction: Direction::Undirected,
                paper_vertices: 8_400_000,
                paper_edges: 134_200_000,
                paper_csr_bytes: 1021 * MIB,
                standin: "R-MAT a=0.57 b=c=0.19 d=0.05, reduced scale",
            },
            Dataset::RmatS30Ef16 => DatasetInfo {
                name: "R-MAT S30 EF16",
                direction: Direction::Undirected,
                paper_vertices: 1_073_700_000,
                paper_edges: 17_179_900_000,
                paper_csr_bytes: 130 * GIB,
                standin: "R-MAT a=0.57 b=c=0.19 d=0.05, heavily reduced scale",
            },
            Dataset::Uniform => DatasetInfo {
                name: "Uniform",
                direction: Direction::Undirected,
                paper_vertices: 1 << 20,
                paper_edges: 1 << 24,
                paper_csr_bytes: ((1u64 << 20) + 1) * 8 + (1u64 << 25) * 4,
                standin: "uniform G(n, m) random graph",
            },
        }
    }

    /// Generates the stand-in graph at the requested scale. The result is cleaned
    /// (deduplicated, symmetrized if undirected, low-degree vertices removed) and in
    /// CSR form, ready for partitioning.
    pub fn generate(&self, scale: DatasetScale, seed: u64) -> CsrGraph {
        let budget = scale.vertex_budget();
        match self {
            Dataset::Orkut => {
                // Orkut is the densest social graph (mean degree ~78): high attachment
                // plus closure edges.
                BarabasiAlbert::with_closure(budget, 24, 8)
                    .generate_cleaned(seed)
                    .into_csr()
            }
            Dataset::LiveJournal => {
                // LiveJournal is sparser (mean degree ~17).
                BarabasiAlbert::with_closure(budget, 9, 3)
                    .generate_cleaned(seed)
                    .into_csr()
            }
            Dataset::LiveJournal1 => {
                let scale_log = log2_budget(budget);
                RmatGenerator::paper_directed(scale_log, 14)
                    .generate_cleaned(seed)
                    .into_csr()
            }
            Dataset::Skitter => BarabasiAlbert::with_closure(budget, 6, 2)
                .generate_cleaned(seed)
                .into_csr(),
            Dataset::Uk2005 => {
                let scale_log = log2_budget(budget);
                let mut gen = RmatGenerator::paper_directed(scale_log, 24);
                // Web crawls are less skewed than social networks.
                gen.a = 0.45;
                gen.b = 0.22;
                gen.c = 0.22;
                gen.d = 0.11;
                gen.generate_cleaned(seed).into_csr()
            }
            Dataset::WikiEn => {
                let scale_log = log2_budget(budget);
                RmatGenerator::paper_directed(scale_log, 32)
                    .generate_cleaned(seed)
                    .into_csr()
            }
            Dataset::FacebookCircles => {
                // Always generated at its true scale — the original is tiny.
                EgoCircles::facebook_like()
                    .generate_cleaned(seed)
                    .into_csr()
            }
            Dataset::RmatS21Ef16 | Dataset::RmatS23Ef16 | Dataset::RmatS30Ef16 => {
                let base = log2_budget(budget);
                // Preserve the relative ordering of the three R-MAT sizes.
                let scale_log = match self {
                    Dataset::RmatS21Ef16 => base,
                    Dataset::RmatS23Ef16 => base + 1,
                    _ => base + 2,
                };
                RmatGenerator::paper(scale_log, 16)
                    .generate_cleaned(seed)
                    .into_csr()
            }
            Dataset::Uniform => UniformRandom::undirected(budget, budget * 16)
                .generate_cleaned(seed)
                .into_csr(),
        }
    }

    /// Short name used in report tables.
    pub fn short_name(&self) -> &'static str {
        match self {
            Dataset::Orkut => "Orkut",
            Dataset::LiveJournal => "LiveJournal",
            Dataset::LiveJournal1 => "LiveJournal1",
            Dataset::Skitter => "Skitter",
            Dataset::Uk2005 => "uk-2005",
            Dataset::WikiEn => "wiki-en",
            Dataset::FacebookCircles => "Facebook circles",
            Dataset::RmatS21Ef16 => "R-MAT S21 EF16",
            Dataset::RmatS23Ef16 => "R-MAT S23 EF16",
            Dataset::RmatS30Ef16 => "R-MAT S30 EF16",
            Dataset::Uniform => "Uniform",
        }
    }
}

fn log2_budget(budget: usize) -> u32 {
    (usize::BITS - 1 - budget.leading_zeros()).max(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn table2_lists_all_nine_graphs() {
        assert_eq!(Dataset::table2().len(), 9);
    }

    #[test]
    fn figure9_and_10_dataset_counts_match_paper() {
        assert_eq!(Dataset::figure9().len(), 6);
        assert_eq!(Dataset::figure10().len(), 3);
    }

    #[test]
    fn info_direction_matches_table2() {
        assert_eq!(Dataset::Orkut.info().direction, Direction::Undirected);
        assert_eq!(Dataset::LiveJournal1.info().direction, Direction::Directed);
        assert_eq!(Dataset::Uk2005.info().direction, Direction::Directed);
        assert_eq!(Dataset::RmatS21Ef16.info().direction, Direction::Undirected);
    }

    #[test]
    fn tiny_standins_generate_and_are_clean() {
        for ds in [
            Dataset::Orkut,
            Dataset::LiveJournal,
            Dataset::Skitter,
            Dataset::Uniform,
            Dataset::RmatS21Ef16,
        ] {
            let g = ds.generate(DatasetScale::Tiny, 1);
            assert!(g.vertex_count() > 100, "{ds:?} too small");
            assert!(g.adjacency_lists_sorted());
            assert!(g.adjacency_in_range());
        }
    }

    #[test]
    fn social_standins_are_skewed_uniform_is_not() {
        let orkut = Dataset::Orkut.generate(DatasetScale::Tiny, 2);
        let uniform = Dataset::Uniform.generate(DatasetScale::Tiny, 2);
        let s_orkut = stats::degree_skewness(&orkut.degrees());
        let s_uniform = stats::degree_skewness(&uniform.degrees());
        assert!(
            s_orkut > s_uniform + 0.5,
            "Orkut stand-in ({s_orkut}) must be more skewed than uniform ({s_uniform})"
        );
    }

    #[test]
    fn rmat_sizes_preserve_ordering() {
        let s21 = Dataset::RmatS21Ef16.generate(DatasetScale::Tiny, 3);
        let s23 = Dataset::RmatS23Ef16.generate(DatasetScale::Tiny, 3);
        assert!(s23.vertex_count() > s21.vertex_count());
    }

    #[test]
    fn undirected_standins_are_symmetric() {
        let g = Dataset::LiveJournal.generate(DatasetScale::Tiny, 4);
        assert!(g.is_symmetric());
        let d = Dataset::LiveJournal1.generate(DatasetScale::Tiny, 4);
        assert_eq!(d.direction(), Direction::Directed);
    }

    #[test]
    fn facebook_circles_is_full_scale() {
        let g = Dataset::FacebookCircles.generate(DatasetScale::Tiny, 5);
        // Ignores the scale parameter: the original is already tiny.
        assert!(g.vertex_count() > 2_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Skitter.generate(DatasetScale::Tiny, 9);
        let b = Dataset::Skitter.generate(DatasetScale::Tiny, 9);
        assert_eq!(a, b);
    }
}
