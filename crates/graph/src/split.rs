//! Degree-weighted (equal-work) range splitting over CSR offsets.
//!
//! Splitting a vertex range into equal-*count* chunks assigns wildly uneven
//! work on skewed graphs: one R-MAT hub row can carry as many edges as
//! another chunk's whole vertex range. Because `CsrGraph::offsets` is already
//! the prefix sum of the degree sequence, equal-*work* boundaries come from a
//! handful of binary searches: chunk `j` starts at the first vertex whose row
//! begins at or after `j/parts` of the total edge mass.
//!
//! Used by the shared-memory outer loops (`rmatc-core`'s
//! `RangeSchedule::DegreeWeighted`) and by the distributed
//! [`PartitionScheme::BalancedBlock1D`](crate::partition::PartitionScheme)
//! partitioner, which applies the same splitting to rank boundaries.

/// Splits the vertex range `0..offsets.len()-1` into `parts` contiguous
/// chunks of approximately equal edge count. Returns `parts + 1` boundaries:
/// chunk `j` is `bounds[j]..bounds[j + 1]`, `bounds[0] == 0`, and the last
/// boundary is the vertex count. Boundaries are non-decreasing; chunks may be
/// empty when a single row outweighs an equal share.
///
/// `offsets` must be a CSR offsets array: non-decreasing, with `offsets[v]`
/// the index of vertex `v`'s first edge and `offsets[n]` the edge count.
pub fn balanced_vertex_bounds(offsets: &[u64], parts: usize) -> Vec<usize> {
    assert!(!offsets.is_empty(), "offsets must have at least one entry");
    let n = offsets.len() - 1;
    let parts = parts.max(1);
    let total = offsets[n];
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0);
    for j in 1..parts {
        let target = weighted_target(total, j, parts);
        // First vertex whose row starts at or past the target edge index.
        let boundary = offsets.partition_point(|&o| o < target).min(n);
        bounds.push(boundary.max(*bounds.last().expect("non-empty")));
    }
    bounds.push(n);
    bounds
}

/// Splits an arbitrary non-decreasing cumulative-weight array into `parts`
/// chunks of approximately equal weight. `prefix` has one entry per item plus
/// a leading zero (`prefix[i]` = total weight of items `0..i`); the returned
/// `parts + 1` boundaries are item indices.
pub fn balanced_prefix_bounds(prefix: &[u64], parts: usize) -> Vec<usize> {
    assert!(!prefix.is_empty(), "prefix must have at least one entry");
    let n = prefix.len() - 1;
    let parts = parts.max(1);
    let total = prefix[n];
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0);
    for j in 1..parts {
        let target = weighted_target(total, j, parts);
        let boundary = prefix.partition_point(|&w| w < target).min(n);
        bounds.push(boundary.max(*bounds.last().expect("non-empty")));
    }
    bounds.push(n);
    bounds
}

/// `total * j / parts` without overflow for edge counts near `u64::MAX / parts`.
fn weighted_target(total: u64, j: usize, parts: usize) -> u64 {
    ((total as u128 * j as u128) / parts as u128) as u64
}

/// Prefix sum of per-vertex *intersection work*: vertex `u` contributes
/// `Σ_{v ∈ adj(u)} (deg(u) + deg(v))` — the length sum a merge-class
/// intersection of the two rows walks, summed over `u`'s edges. Returns
/// `n + 1` entries with a leading zero, ready for
/// [`balanced_prefix_bounds`].
///
/// Edge *count* per rank (what [`balanced_vertex_bounds`] equalizes) is a
/// proxy for storage; this is a proxy for the distributed workers' compute
/// time, which is dominated by the per-edge intersections. The two differ on
/// hub-heavy graphs: a hub's edges are cheap to store but each one drags the
/// hub's full row through the intersection.
///
/// `adjacencies` holds global vertex ids into the same CSR (`offsets` has one
/// entry per vertex plus the trailing edge count).
pub fn intersection_work_prefix(offsets: &[u64], adjacencies: &[u32]) -> Vec<u64> {
    assert!(!offsets.is_empty(), "offsets must have at least one entry");
    let n = offsets.len() - 1;
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0u64);
    for u in 0..n {
        let (start, end) = (offsets[u] as usize, offsets[u + 1] as usize);
        let deg_u = (end - start) as u64;
        let mut work = 0u64;
        for &v in &adjacencies[start..end] {
            let deg_v = offsets[v as usize + 1] - offsets[v as usize];
            work += deg_u + deg_v;
        }
        prefix.push(prefix[u] + work);
    }
    prefix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GraphGenerator, RmatGenerator};

    fn chunk_weights(offsets: &[u64], bounds: &[usize]) -> Vec<u64> {
        bounds
            .windows(2)
            .map(|w| offsets[w[1]] - offsets[w[0]])
            .collect()
    }

    #[test]
    fn bounds_cover_the_range_exactly() {
        let g = RmatGenerator::paper(9, 8).generate_cleaned(3).into_csr();
        for parts in [1, 2, 3, 7, 16] {
            let bounds = balanced_vertex_bounds(g.offsets(), parts);
            assert_eq!(bounds.len(), parts + 1);
            assert_eq!(bounds[0], 0);
            assert_eq!(*bounds.last().unwrap(), g.vertex_count());
            assert!(bounds.windows(2).all(|w| w[0] <= w[1]), "{bounds:?}");
        }
    }

    #[test]
    fn chunks_carry_nearly_equal_edge_mass() {
        let g = RmatGenerator::paper(10, 8).generate_cleaned(1).into_csr();
        let parts = 8;
        let bounds = balanced_vertex_bounds(g.offsets(), parts);
        let weights = chunk_weights(g.offsets(), &bounds);
        let ideal = g.edge_count() / parts as u64;
        let max_row = g.max_degree() as u64;
        // Each chunk is within one row of the ideal share (a chunk can only
        // overshoot by the row that crosses its boundary).
        for &w in &weights {
            assert!(w <= ideal + max_row, "chunk weight {w} vs ideal {ideal}");
        }
        assert_eq!(weights.iter().sum::<u64>(), g.edge_count());
    }

    #[test]
    fn equal_count_splitting_is_worse_on_skewed_offsets() {
        // One hub with 1000 edges, 99 leaves with 1 edge each.
        let mut offsets = vec![0u64; 101];
        offsets[1] = 1_000;
        for v in 2..=100 {
            offsets[v] = offsets[v - 1] + 1;
        }
        let bounds = balanced_vertex_bounds(&offsets, 4);
        let weights = chunk_weights(&offsets, &bounds);
        // The hub gets a chunk of its own; equal-count splitting would have
        // put it together with 24 leaves.
        assert_eq!(weights[0], 1_000);
        assert_eq!(weights.iter().sum::<u64>(), 1_099);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(balanced_vertex_bounds(&[0], 4), vec![0, 0, 0, 0, 0]);
        assert_eq!(balanced_vertex_bounds(&[0, 0, 0], 2), vec![0, 0, 2]);
        assert_eq!(balanced_vertex_bounds(&[0, 5], 1), vec![0, 1]);
        assert_eq!(balanced_vertex_bounds(&[0, 5], 0), vec![0, 1]);
    }

    #[test]
    fn intersection_work_prefix_counts_both_row_lengths() {
        // Path 0-1-2: adj(0) = {1}, adj(1) = {0, 2}, adj(2) = {1}.
        // work(0) = deg(0) + deg(1) = 3; work(1) = (2+1) + (2+1) = 6;
        // work(2) = deg(2) + deg(1) = 3.
        let g = crate::CsrGraph::from_edges(
            3,
            &[(0, 1), (1, 0), (1, 2), (2, 1)],
            crate::types::Direction::Undirected,
        );
        let prefix = intersection_work_prefix(g.offsets(), g.adjacencies());
        assert_eq!(prefix, vec![0, 3, 9, 12]);
    }

    #[test]
    fn work_prefix_bounds_equalize_intersection_work() {
        let g = RmatGenerator::paper(10, 8).generate_cleaned(1).into_csr();
        let prefix = intersection_work_prefix(g.offsets(), g.adjacencies());
        let parts = 8;
        let bounds = balanced_prefix_bounds(&prefix, parts);
        let weights: Vec<u64> = bounds
            .windows(2)
            .map(|w| prefix[w[1]] - prefix[w[0]])
            .collect();
        let total = *prefix.last().unwrap();
        assert_eq!(weights.iter().sum::<u64>(), total);
        // No chunk overshoots the ideal share by more than one vertex's work.
        let ideal = total / parts as u64;
        let max_vertex_work = prefix.windows(2).map(|w| w[1] - w[0]).max().unwrap();
        for &w in &weights {
            assert!(w <= ideal + max_vertex_work, "chunk {w} vs ideal {ideal}");
        }
    }

    #[test]
    fn prefix_bounds_match_vertex_bounds_on_the_same_array() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(2).into_csr();
        assert_eq!(
            balanced_prefix_bounds(g.offsets(), 6),
            balanced_vertex_bounds(g.offsets(), 6)
        );
    }
}
