//! Synthetic graph generators.
//!
//! The paper's evaluation uses R-MAT graphs with parameters `a = 0.57`,
//! `b = c = 0.19`, `d = 0.05` plus real-world graphs from SNAP/KONECT/UbiCrawler.
//! Those downloads are not available in this environment, so this module also
//! provides generators whose degree structure matches the families of graphs the
//! paper relies on (power-law social networks, web crawls, uniform random baselines,
//! and ego-circle graphs like Facebook circles); [`crate::datasets`] maps dataset
//! names to parameterized generator calls.

pub mod ba;
pub mod ego;
pub mod rmat;
pub mod smallworld;
pub mod uniform;

pub use ba::BarabasiAlbert;
pub use ego::EgoCircles;
pub use rmat::RmatGenerator;
pub use smallworld::WattsStrogatz;
pub use uniform::UniformRandom;

use crate::EdgeList;

/// Common interface of all generators: produce a cleaned, triangle-ready edge list.
pub trait GraphGenerator {
    /// Human-readable name used in reports.
    fn name(&self) -> String;

    /// Generates the raw (uncleaned) edge list.
    fn generate(&self, seed: u64) -> EdgeList;

    /// Generates and runs the paper's cleaning pipeline (dedup, loop removal,
    /// symmetrization for undirected graphs, low-degree removal).
    fn generate_cleaned(&self, seed: u64) -> EdgeList {
        let mut el = self.generate(seed);
        el.clean();
        el
    }
}
