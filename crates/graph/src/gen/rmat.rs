//! R-MAT recursive matrix graph generator (Chakrabarti, Zhan, Faloutsos, SDM 2004).
//!
//! An R-MAT graph with scale `x` and edge factor `y` has `2^x` vertices and `2^(x+y)`
//! edges... almost: the paper writes `2^x` vertices and `2^x · y`... it actually states
//! "an R-MAT graph with scale x and edge factor y includes 2^x vertices and 2^x+y
//! edges" which, matching the sizes in Table II (S21 EF16 → 2.1 M vertices, 33.6 M
//! edges), means `2^x` vertices and `y · 2^x` edges. Each edge is placed by
//! recursively descending into one of the four quadrants of the adjacency matrix with
//! probabilities `a`, `b`, `c`, `d`. The paper's parameters are
//! `a = 0.57, b = c = 0.19, d = 0.05`, producing a skewed, scale-free-like
//! degree distribution.

use super::GraphGenerator;
use crate::types::{Direction, VertexId};
use crate::EdgeList;
use rand::Rng;
use rand::SeedableRng;

/// R-MAT generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RmatGenerator {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average number of edges per vertex.
    pub edge_factor: u32,
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant.
    pub d: f64,
    /// Whether to emit an undirected (symmetrized) graph.
    pub direction: Direction,
    /// Per-level noise applied to the quadrant probabilities, as in the reference
    /// Graph500 implementation, to avoid exactly repeating structure at every level.
    pub noise: f64,
}

impl RmatGenerator {
    /// The paper's R-MAT parameters: `a = 0.57, b = c = 0.19, d = 0.05`.
    pub fn paper(scale: u32, edge_factor: u32) -> Self {
        Self {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            direction: Direction::Undirected,
            noise: 0.1,
        }
    }

    /// A directed variant with the paper's parameters.
    pub fn paper_directed(scale: u32, edge_factor: u32) -> Self {
        Self {
            direction: Direction::Directed,
            ..Self::paper(scale, edge_factor)
        }
    }

    /// Number of vertices this configuration generates.
    pub fn vertex_count(&self) -> usize {
        1usize << self.scale
    }

    /// Number of edges this configuration generates (before cleaning).
    pub fn edge_count(&self) -> usize {
        self.vertex_count() * self.edge_factor as usize
    }

    fn sample_edge<R: Rng>(&self, rng: &mut R) -> (VertexId, VertexId) {
        let mut u: u64 = 0;
        let mut v: u64 = 0;
        let (mut a, mut b, mut c, mut d) = (self.a, self.b, self.c, self.d);
        for level in 0..self.scale {
            let bit = 1u64 << (self.scale - 1 - level);
            let r: f64 = rng.gen();
            if r < a {
                // top-left: no bits set
            } else if r < a + b {
                v |= bit;
            } else if r < a + b + c {
                u |= bit;
            } else {
                u |= bit;
                v |= bit;
            }
            if self.noise > 0.0 {
                // Jitter the probabilities multiplicatively and renormalize, as done
                // in the Graph500 reference generator, so lower levels are not exact
                // copies of the top-level split.
                let jitter = |p: f64, r: f64| p * (1.0 - self.noise / 2.0 + self.noise * r);
                a = jitter(a, rng.gen());
                b = jitter(b, rng.gen());
                c = jitter(c, rng.gen());
                d = jitter(d, rng.gen());
                let sum = a + b + c + d;
                a /= sum;
                b /= sum;
                c /= sum;
                d /= sum;
            }
        }
        (u as VertexId, v as VertexId)
    }
}

impl GraphGenerator for RmatGenerator {
    fn name(&self) -> String {
        format!("R-MAT S{} EF{}", self.scale, self.edge_factor)
    }

    fn generate(&self, seed: u64) -> EdgeList {
        let n = self.vertex_count();
        let m = self.edge_count();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut el = EdgeList::new(n, self.direction);
        for _ in 0..m {
            let (u, v) = self.sample_edge(&mut rng);
            el.push(u, v);
        }
        el
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn paper_parameters_sum_to_one() {
        let g = RmatGenerator::paper(10, 8);
        assert!((g.a + g.b + g.c + g.d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn generates_declared_counts_before_cleaning() {
        let g = RmatGenerator::paper(8, 4);
        let el = g.generate(1);
        assert_eq!(el.vertex_count(), 256);
        assert_eq!(el.edge_count(), 1024);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = RmatGenerator::paper(8, 4);
        assert_eq!(g.generate(5).edges(), g.generate(5).edges());
        assert_ne!(g.generate(5).edges(), g.generate(6).edges());
    }

    #[test]
    fn vertices_stay_in_range() {
        let g = RmatGenerator::paper(9, 8);
        let el = g.generate(2);
        let n = el.vertex_count() as VertexId;
        assert!(el.edges().iter().all(|&(u, v)| u < n && v < n));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // With a = 0.57 the first vertices receive a disproportionate share of edges.
        let g = RmatGenerator::paper(12, 16);
        let el = g.generate_cleaned(3);
        let csr = el.into_csr();
        let degrees = csr.degrees();
        let skew = stats::degree_skewness(&degrees);
        assert!(
            skew > 2.0,
            "R-MAT with the paper's parameters should have a heavy-tailed degree \
             distribution (skewness {skew})"
        );
    }

    #[test]
    fn cleaned_graph_is_symmetric_when_undirected() {
        let g = RmatGenerator::paper(8, 8);
        let csr = g.generate_cleaned(4).into_csr();
        assert!(csr.is_symmetric());
        assert!(csr.adjacency_lists_sorted());
    }

    #[test]
    fn name_matches_paper_notation() {
        assert_eq!(RmatGenerator::paper(21, 16).name(), "R-MAT S21 EF16");
    }
}
