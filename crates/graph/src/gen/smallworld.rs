//! Watts–Strogatz small-world generator.
//!
//! The local clustering coefficient metric the paper computes was introduced in the
//! Watts–Strogatz paper ("Collective dynamics of 'small-world' networks"), and the
//! ring-lattice-with-rewiring model is the canonical graph family with tunable,
//! known clustering: at rewiring probability 0 the LCC of every vertex is
//! `3(k-2) / (4(k-1))` for even neighbourhood size `k`, which gives tests an exact
//! analytic target.

use super::GraphGenerator;
use crate::types::{Direction, VertexId};
use crate::EdgeList;
use rand::Rng;
use rand::SeedableRng;

/// Watts–Strogatz ring lattice with `k` nearest neighbours per vertex (k must be even)
/// and rewiring probability `beta`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WattsStrogatz {
    /// Number of vertices in the ring.
    pub vertices: usize,
    /// Each vertex connects to its `k` nearest ring neighbours (`k/2` on each side).
    pub k: usize,
    /// Probability of rewiring each lattice edge to a random endpoint.
    pub beta: f64,
}

impl WattsStrogatz {
    /// Creates a Watts–Strogatz generator. `k` is rounded down to an even number.
    pub fn new(vertices: usize, k: usize, beta: f64) -> Self {
        Self {
            vertices,
            k: k & !1,
            beta,
        }
    }

    /// Analytic LCC of every vertex in the unrewired (`beta = 0`) lattice.
    pub fn lattice_lcc(k: usize) -> f64 {
        if k < 2 {
            return 0.0;
        }
        let k = k as f64;
        3.0 * (k - 2.0) / (4.0 * (k - 1.0))
    }
}

impl GraphGenerator for WattsStrogatz {
    fn name(&self) -> String {
        format!("WS n={} k={} beta={}", self.vertices, self.k, self.beta)
    }

    fn generate(&self, seed: u64) -> EdgeList {
        let n = self.vertices;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut el = EdgeList::new(n, Direction::Undirected);
        if n == 0 || self.k == 0 {
            return el;
        }
        for u in 0..n {
            for j in 1..=(self.k / 2) {
                let v = (u + j) % n;
                if u == v {
                    continue;
                }
                // Rewire the edge's far endpoint with probability beta.
                let dst = if rng.gen::<f64>() < self.beta {
                    let mut w = rng.gen_range(0..n);
                    let mut guard = 0;
                    while w == u && guard < 16 {
                        w = rng.gen_range(0..n);
                        guard += 1;
                    }
                    w
                } else {
                    v
                };
                el.push(u as VertexId, dst as VertexId);
            }
        }
        el
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn unrewired_lattice_matches_analytic_lcc() {
        let g = WattsStrogatz::new(200, 6, 0.0);
        let csr = g.generate_cleaned(1).into_csr();
        let expected = WattsStrogatz::lattice_lcc(6);
        let scores = reference::lcc_scores(&csr);
        for (v, &score) in scores.iter().enumerate() {
            assert!(
                (score - expected).abs() < 1e-9,
                "vertex {v} has LCC {score}, expected {expected}"
            );
        }
    }

    #[test]
    fn rewiring_lowers_clustering() {
        let ordered = WattsStrogatz::new(500, 8, 0.0)
            .generate_cleaned(2)
            .into_csr();
        let rewired = WattsStrogatz::new(500, 8, 0.8)
            .generate_cleaned(2)
            .into_csr();
        assert!(reference::average_lcc(&rewired) < reference::average_lcc(&ordered));
    }

    #[test]
    fn odd_k_is_rounded_down() {
        let g = WattsStrogatz::new(10, 5, 0.0);
        assert_eq!(g.k, 4);
    }

    #[test]
    fn empty_and_tiny_graphs_do_not_panic() {
        assert_eq!(WattsStrogatz::new(0, 4, 0.1).generate(1).edge_count(), 0);
        let el = WattsStrogatz::new(2, 2, 0.0).generate(1);
        assert!(el.edge_count() <= 2);
    }

    #[test]
    fn lattice_lcc_known_values() {
        assert!((WattsStrogatz::lattice_lcc(4) - 0.5).abs() < 1e-12);
        assert!((WattsStrogatz::lattice_lcc(6) - 0.6).abs() < 1e-12);
        assert_eq!(WattsStrogatz::lattice_lcc(1), 0.0);
    }
}
