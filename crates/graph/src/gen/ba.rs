//! Barabási–Albert preferential-attachment generator.
//!
//! Produces power-law degree distributions with high clustering around hub vertices.
//! This is the stand-in family for the paper's social-network datasets (Orkut,
//! LiveJournal, Skitter): what the evaluation depends on is the degree skew — a small
//! set of very-high-degree vertices receives most of the remote reads (Figure 4),
//! which is exactly what preferential attachment produces.

use super::GraphGenerator;
use crate::types::{Direction, VertexId};
use crate::EdgeList;
use rand::Rng;
use rand::SeedableRng;

/// Barabási–Albert generator: starts from a small clique and attaches every new
/// vertex to `attach` existing vertices chosen proportionally to their degree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BarabasiAlbert {
    /// Final number of vertices.
    pub vertices: usize,
    /// Number of edges each new vertex attaches with.
    pub attach: usize,
    /// Extra random "closure" edges added per vertex among its neighbours'
    /// neighbours, which raises the clustering coefficient to social-network levels.
    pub closure_edges: usize,
}

impl BarabasiAlbert {
    /// A plain preferential-attachment graph.
    pub fn new(vertices: usize, attach: usize) -> Self {
        Self {
            vertices,
            attach,
            closure_edges: 0,
        }
    }

    /// A preferential-attachment graph with extra triangle-closing edges, giving both
    /// a power-law degree distribution and a high clustering coefficient.
    pub fn with_closure(vertices: usize, attach: usize, closure_edges: usize) -> Self {
        Self {
            vertices,
            attach,
            closure_edges,
        }
    }
}

impl GraphGenerator for BarabasiAlbert {
    fn name(&self) -> String {
        format!("BA n={} m={}", self.vertices, self.attach)
    }

    fn generate(&self, seed: u64) -> EdgeList {
        let n = self.vertices;
        let m0 = (self.attach + 1).min(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut el = EdgeList::new(n, Direction::Undirected);
        // `targets` holds one entry per edge endpoint, so sampling uniformly from it
        // is sampling proportionally to degree (the classic BA implementation trick).
        let mut targets: Vec<VertexId> = Vec::with_capacity(2 * n * self.attach);
        // Seed clique.
        for u in 0..m0 {
            for v in (u + 1)..m0 {
                el.push(u as VertexId, v as VertexId);
                targets.push(u as VertexId);
                targets.push(v as VertexId);
            }
        }
        for v in m0..n {
            let v = v as VertexId;
            let mut chosen = Vec::with_capacity(self.attach);
            let mut guard = 0;
            while chosen.len() < self.attach && guard < self.attach * 20 {
                guard += 1;
                let t = targets[rng.gen_range(0..targets.len())];
                if t != v && !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
            for &t in &chosen {
                el.push(v, t);
                targets.push(v);
                targets.push(t);
            }
            // Triangle-closing edges: connect two random neighbours of v.
            for _ in 0..self.closure_edges {
                if chosen.len() >= 2 {
                    let a = chosen[rng.gen_range(0..chosen.len())];
                    let b = chosen[rng.gen_range(0..chosen.len())];
                    if a != b {
                        el.push(a, b);
                    }
                }
            }
        }
        el
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn produces_power_law_like_skew() {
        let g = BarabasiAlbert::new(4000, 8);
        let csr = g.generate_cleaned(1).into_csr();
        let skew = stats::degree_skewness(&csr.degrees());
        assert!(
            skew > 1.5,
            "BA graphs should be heavy tailed (skewness {skew})"
        );
    }

    #[test]
    fn closure_edges_increase_clustering() {
        let plain = BarabasiAlbert::new(2000, 5).generate_cleaned(2).into_csr();
        let closed = BarabasiAlbert::with_closure(2000, 5, 3)
            .generate_cleaned(2)
            .into_csr();
        let cc_plain = crate::reference::average_lcc(&plain);
        let cc_closed = crate::reference::average_lcc(&closed);
        assert!(
            cc_closed > cc_plain,
            "closure edges must raise average LCC ({cc_closed} vs {cc_plain})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = BarabasiAlbert::new(500, 4);
        assert_eq!(g.generate(11).edges(), g.generate(11).edges());
    }

    #[test]
    fn small_graph_edge_cases() {
        // Fewer vertices than attach + 1 degenerates to a clique.
        let g = BarabasiAlbert::new(3, 8);
        let el = g.generate_cleaned(1);
        let csr = el.into_csr();
        assert_eq!(csr.vertex_count(), 3);
        assert_eq!(crate::reference::count_triangles(&csr), 1);
    }
}
