//! Ego-circle generator: a synthetic stand-in for the SNAP "Facebook circles" dataset
//! used in Figures 1 and 5 of the paper (4,039 vertices, 88,234 edges).
//!
//! The dataset consists of overlapping friendship circles around ego vertices: dense
//! communities with a few very-high-degree hubs. We reproduce that structure by
//! sampling communities with power-law sizes, connecting members within a community
//! with high probability, and adding hub vertices that join many communities. The
//! resulting degree distribution and clustering are what the data-reuse figures
//! depend on.

use super::GraphGenerator;
use crate::types::{Direction, VertexId};
use crate::EdgeList;
use rand::Rng;
use rand::SeedableRng;
use rand_distr::{Distribution, Zipf};

/// Ego-circle community graph generator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EgoCircles {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of communities (circles).
    pub communities: usize,
    /// Maximum community size; sizes follow a Zipf distribution up to this value.
    pub max_community_size: usize,
    /// Probability that two members of the same community are connected.
    pub intra_probability: f64,
    /// Number of hub (ego) vertices that are connected to every member of several circles.
    pub hubs: usize,
}

impl EgoCircles {
    /// A configuration approximating the Facebook circles dataset at full scale:
    /// ~4k vertices and ~88k undirected edges.
    pub fn facebook_like() -> Self {
        Self {
            vertices: 4_039,
            communities: 260,
            max_community_size: 220,
            intra_probability: 0.35,
            hubs: 10,
        }
    }
}

impl GraphGenerator for EgoCircles {
    fn name(&self) -> String {
        format!("EgoCircles n={} c={}", self.vertices, self.communities)
    }

    fn generate(&self, seed: u64) -> EdgeList {
        let n = self.vertices;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut el = EdgeList::new(n, Direction::Undirected);
        if n < 2 {
            return el;
        }
        let size_dist = Zipf::new(self.max_community_size.max(2) as u64, 1.2)
            .expect("max_community_size must be >= 2");
        for _ in 0..self.communities {
            let size = (size_dist.sample(&mut rng) as usize).clamp(3, n);
            let mut members = Vec::with_capacity(size);
            for _ in 0..size {
                members.push(rng.gen_range(0..n) as VertexId);
            }
            members.sort_unstable();
            members.dedup();
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    if rng.gen::<f64>() < self.intra_probability {
                        el.push(members[i], members[j]);
                    }
                }
            }
        }
        // Ego hubs: a handful of vertices connected to a large random subset, giving
        // the extreme high-degree tail visible in Figure 5.
        for h in 0..self.hubs.min(n) {
            let hub = h as VertexId;
            let span = n / 4 + rng.gen_range(0..n / 4 + 1);
            for _ in 0..span {
                let v = rng.gen_range(0..n) as VertexId;
                if v != hub {
                    el.push(hub, v);
                }
            }
        }
        el
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reference, stats};

    #[test]
    fn facebook_like_scale_is_close_to_the_real_dataset() {
        let g = EgoCircles::facebook_like();
        let csr = g.generate_cleaned(1).into_csr();
        // The real dataset has 4,039 vertices and 88,234 undirected edges; the
        // stand-in should be the same order of magnitude.
        assert!(csr.vertex_count() > 2_500 && csr.vertex_count() <= 4_039);
        let undirected_edges = csr.logical_edge_count();
        assert!(
            undirected_edges > 30_000 && undirected_edges < 300_000,
            "edge count {undirected_edges} out of expected band"
        );
    }

    #[test]
    fn has_social_network_clustering() {
        let csr = EgoCircles::facebook_like().generate_cleaned(2).into_csr();
        let avg = reference::average_lcc(&csr);
        assert!(
            avg > 0.2,
            "ego-circle graphs must be clustered (average LCC {avg})"
        );
    }

    #[test]
    fn degree_distribution_has_hubs() {
        let csr = EgoCircles::facebook_like().generate_cleaned(3).into_csr();
        let degrees = csr.degrees();
        let skew = stats::degree_skewness(&degrees);
        assert!(
            skew > 1.0,
            "hub vertices should create a heavy tail (skewness {skew})"
        );
        let max = *degrees.iter().max().unwrap();
        let mean = degrees.iter().map(|&d| d as f64).sum::<f64>() / degrees.len() as f64;
        assert!(max as f64 > 5.0 * mean);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = EgoCircles {
            vertices: 500,
            communities: 30,
            max_community_size: 50,
            intra_probability: 0.4,
            hubs: 2,
        };
        assert_eq!(g.generate(7).edges(), g.generate(7).edges());
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        let g = EgoCircles {
            vertices: 1,
            communities: 3,
            max_community_size: 5,
            intra_probability: 0.5,
            hubs: 1,
        };
        assert_eq!(g.generate(1).edge_count(), 0);
    }
}
