//! Uniform (Erdős–Rényi style) random graph generator.
//!
//! Used by Figure 4 of the paper as the flat-degree-distribution contrast to the
//! power-law graphs: with a uniform degree distribution only ~11.7% of remote reads
//! target the top-10% highest-degree vertices, so caching has little to exploit.

use super::GraphGenerator;
use crate::types::{Direction, VertexId};
use crate::EdgeList;
use rand::Rng;
use rand::SeedableRng;

/// Uniform random multigraph with a fixed number of edges (G(n, m) model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct UniformRandom {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges sampled (before cleaning).
    pub edges: usize,
    /// Whether to emit an undirected (symmetrized) graph.
    pub direction: Direction,
}

impl UniformRandom {
    /// Convenience constructor for an undirected uniform graph.
    pub fn undirected(vertices: usize, edges: usize) -> Self {
        Self {
            vertices,
            edges,
            direction: Direction::Undirected,
        }
    }

    /// Convenience constructor for a directed uniform graph.
    pub fn directed(vertices: usize, edges: usize) -> Self {
        Self {
            vertices,
            edges,
            direction: Direction::Directed,
        }
    }
}

impl GraphGenerator for UniformRandom {
    fn name(&self) -> String {
        format!("Uniform n={} m={}", self.vertices, self.edges)
    }

    fn generate(&self, seed: u64) -> EdgeList {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut el = EdgeList::new(self.vertices, self.direction);
        let n = self.vertices as VertexId;
        for _ in 0..self.edges {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            el.push(u, v);
        }
        el
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn generates_requested_edge_count() {
        let g = UniformRandom::undirected(1000, 8000);
        let el = g.generate(1);
        assert_eq!(el.vertex_count(), 1000);
        assert_eq!(el.edge_count(), 8000);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = UniformRandom::directed(500, 2000);
        assert_eq!(g.generate(9).edges(), g.generate(9).edges());
    }

    #[test]
    fn degree_distribution_is_flat_compared_to_rmat() {
        let uni = UniformRandom::undirected(4096, 4096 * 16)
            .generate_cleaned(2)
            .into_csr();
        let rmat = super::super::RmatGenerator::paper(12, 16)
            .generate_cleaned(2)
            .into_csr();
        let uni_skew = stats::degree_skewness(&uni.degrees());
        let rmat_skew = stats::degree_skewness(&rmat.degrees());
        assert!(
            uni_skew < rmat_skew,
            "uniform graphs must be less skewed than R-MAT ({uni_skew} vs {rmat_skew})"
        );
    }

    #[test]
    fn vertices_in_range_after_cleaning() {
        let el = UniformRandom::undirected(256, 2048).generate_cleaned(3);
        let n = el.vertex_count() as VertexId;
        assert!(el.edges().iter().all(|&(u, v)| u < n && v < n));
    }
}
