//! Compressed Sparse Row graph representation (Figure 2 of the paper).
//!
//! Each graph (or graph partition) is stored with two arrays:
//! `offsets[i]` holds the index at which the adjacency list of vertex `i` starts in
//! `adjacencies`, and `offsets[n]` equals the total number of stored edges. Adjacency
//! lists are kept sorted, which both intersection kernels require.

use crate::types::{Direction, Edge, VertexId};

/// Immutable CSR graph. Offsets use `u64` because edge counts can exceed `u32::MAX`
/// for the paper's largest graphs; adjacency entries are `u32` vertex ids.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    adjacencies: Vec<VertexId>,
    direction: Direction,
}

impl CsrGraph {
    /// Builds a CSR graph from a *sorted, deduplicated* list of directed edges.
    /// Edges must be sorted lexicographically by `(source, destination)`.
    pub fn from_sorted_edges(n: usize, edges: &[Edge], direction: Direction) -> Self {
        debug_assert!(
            edges.windows(2).all(|w| w[0] <= w[1]),
            "edges must be sorted"
        );
        let mut offsets = vec![0u64; n + 1];
        for &(u, _) in edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let adjacencies = edges.iter().map(|&(_, v)| v).collect();
        Self {
            offsets,
            adjacencies,
            direction,
        }
    }

    /// Builds a CSR graph from an unsorted edge list (sorts and deduplicates a copy).
    pub fn from_edges(n: usize, edges: &[Edge], direction: Direction) -> Self {
        let mut sorted = edges.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Self::from_sorted_edges(n, &sorted, direction)
    }

    /// Reconstructs a CSR graph directly from its raw arrays. `offsets` must be
    /// monotonically non-decreasing, have length `n + 1`, start at 0 and end at
    /// `adjacencies.len()`; each adjacency list must be sorted.
    pub fn from_raw_parts(
        offsets: Vec<u64>,
        adjacencies: Vec<VertexId>,
        direction: Direction,
    ) -> Self {
        assert!(!offsets.is_empty(), "offsets must have length n + 1 >= 1");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            adjacencies.len() as u64,
            "offsets must end at the adjacency length"
        );
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        let g = Self {
            offsets,
            adjacencies,
            direction,
        };
        debug_assert!(g.adjacency_lists_sorted());
        g
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored (directed) edges.
    pub fn edge_count(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Number of undirected edges if the graph is symmetric, otherwise the directed count.
    pub fn logical_edge_count(&self) -> u64 {
        match self.direction {
            Direction::Undirected => self.edge_count() / 2,
            Direction::Directed => self.edge_count(),
        }
    }

    /// Direction of the graph.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The offsets array (length `n + 1`).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The adjacencies array.
    pub fn adjacencies(&self) -> &[VertexId] {
        &self.adjacencies
    }

    /// Sorted adjacency list (out-neighbours) of vertex `v`.
    pub fn neighbours(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adjacencies[lo..hi]
    }

    /// Out-degree of vertex `v`. In CSR the degree is implicit in the offsets array,
    /// which the paper exploits to compute LCC immediately after counting triangles.
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Out-degrees of all vertices.
    pub fn degrees(&self) -> Vec<u32> {
        (0..self.vertex_count() as VertexId)
            .map(|v| self.degree(v))
            .collect()
    }

    /// In-degrees of all vertices (one pass over the adjacency array).
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.vertex_count()];
        for &v in &self.adjacencies {
            deg[v as usize] += 1;
        }
        deg
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> u32 {
        (0..self.vertex_count() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Whether the edge `(u, v)` exists (binary search on the sorted adjacency list).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbours(u).binary_search(&v).is_ok()
    }

    /// Iterates over all directed edges in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.vertex_count() as VertexId)
            .flat_map(move |u| self.neighbours(u).iter().map(move |&v| (u, v)))
    }

    /// Size in bytes of the CSR representation, as reported in Table II of the paper:
    /// `(n + 1) * 8` bytes of offsets plus `m * 4` bytes of adjacencies.
    pub fn csr_size_bytes(&self) -> u64 {
        (self.offsets.len() as u64) * 8 + (self.adjacencies.len() as u64) * 4
    }

    /// Checks that every adjacency list is sorted and free of duplicates.
    pub fn adjacency_lists_sorted(&self) -> bool {
        (0..self.vertex_count() as VertexId)
            .all(|v| self.neighbours(v).windows(2).all(|w| w[0] < w[1]))
    }

    /// Checks that all adjacency entries reference valid vertices.
    pub fn adjacency_in_range(&self) -> bool {
        let n = self.vertex_count() as VertexId;
        self.adjacencies.iter().all(|&v| v < n)
    }

    /// Whether the graph is symmetric (for every edge (u, v), (v, u) also exists).
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| self.has_edge(v, u))
    }

    /// Returns the subgraph induced on keeping only edges whose endpoints satisfy the
    /// predicate, with vertex ids preserved. Used by tests and by partition filtering.
    pub fn filter_edges<F: Fn(VertexId, VertexId) -> bool>(&self, keep: F) -> CsrGraph {
        let edges: Vec<Edge> = self.edges().filter(|&(u, v)| keep(u, v)).collect();
        CsrGraph::from_edges(self.vertex_count(), &edges, self.direction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The subgraph stored on node A in Figure 2 of the paper.
    fn figure2_graph() -> CsrGraph {
        // offsets: [0, 2, 6, 9]; adjacencies: 1 2 | 0 2 3 4 | 0 1 4
        CsrGraph::from_raw_parts(
            vec![0, 2, 6, 9],
            vec![1, 2, 0, 2, 3, 4, 0, 1, 4],
            Direction::Directed,
        )
    }

    #[test]
    fn figure2_offsets_and_adjacencies() {
        let g = figure2_graph();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.neighbours(0), &[1, 2]);
        assert_eq!(g.neighbours(1), &[0, 2, 3, 4]);
        assert_eq!(g.neighbours(2), &[0, 1, 4]);
        assert_eq!(g.degree(1), 4);
    }

    #[test]
    fn from_edges_builds_sorted_lists() {
        let g = CsrGraph::from_edges(
            4,
            &[(2, 1), (0, 3), (0, 1), (2, 0), (0, 2)],
            Direction::Directed,
        );
        assert_eq!(g.neighbours(0), &[1, 2, 3]);
        assert_eq!(g.neighbours(2), &[0, 1]);
        assert!(g.adjacency_lists_sorted());
    }

    #[test]
    fn from_edges_deduplicates() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (0, 1), (0, 1)], Direction::Directed);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn degrees_match_offsets() {
        let g = figure2_graph();
        assert_eq!(g.degrees(), vec![2, 4, 3]);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn in_degrees_counted_from_adjacency() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)], Direction::Directed);
        assert_eq!(g.in_degrees(), vec![0, 1, 2]);
    }

    #[test]
    fn has_edge_uses_binary_search() {
        let g = figure2_graph();
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(0, 4));
    }

    #[test]
    fn csr_size_matches_formula() {
        let g = figure2_graph();
        assert_eq!(g.csr_size_bytes(), 4 * 8 + 9 * 4);
    }

    #[test]
    fn edges_iterator_yields_all_edges_in_order() {
        let g = CsrGraph::from_edges(3, &[(1, 0), (0, 2), (0, 1)], Direction::Directed);
        let edges: Vec<Edge> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 0)]);
    }

    #[test]
    fn symmetric_detection() {
        let sym = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1)], Direction::Undirected);
        assert!(sym.is_symmetric());
        assert_eq!(sym.logical_edge_count(), 2);
        let asym = CsrGraph::from_edges(3, &[(0, 1), (1, 2)], Direction::Directed);
        assert!(!asym.is_symmetric());
        assert_eq!(asym.logical_edge_count(), 2);
    }

    #[test]
    fn filter_edges_keeps_matching_edges_only() {
        let g = figure2_graph();
        let filtered = g.filter_edges(|u, v| u < v);
        assert_eq!(filtered.neighbours(0), &[1, 2]);
        assert_eq!(filtered.neighbours(1), &[2, 3, 4]);
        assert_eq!(filtered.neighbours(2), &[4]);
    }

    #[test]
    #[should_panic(expected = "offsets must end")]
    fn from_raw_parts_validates_lengths() {
        CsrGraph::from_raw_parts(vec![0, 2], vec![1, 2, 3], Direction::Directed);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = CsrGraph::from_edges(0, &[], Direction::Undirected);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.csr_size_bytes(), 8);
    }
}
