//! Vertex relabeling utilities.
//!
//! The paper applies a *random relabeling* when the input graph is stored in a
//! degree-ordered format, so that 1D block partitioning does not assign all the
//! highest-degree vertices to the same process (Section II-B).

use crate::types::VertexId;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Generates a uniformly random permutation of `0..n` with a fixed seed, so that
/// experiments are reproducible run to run.
pub fn random_permutation(n: usize, seed: u64) -> Vec<VertexId> {
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    perm
}

/// Generates the identity permutation of `0..n`.
pub fn identity_permutation(n: usize) -> Vec<VertexId> {
    (0..n as VertexId).collect()
}

/// Generates a permutation that orders vertices by descending degree, i.e. vertex with
/// the highest degree becomes vertex 0. Useful for constructing the *worst case* for
/// 1D partitioning that random relabeling is meant to avoid, and for tests.
pub fn degree_ordered_permutation(degrees: &[u32]) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = (0..degrees.len() as VertexId).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(degrees[v as usize]));
    // `order[rank] = old vertex` — invert it to get `perm[old vertex] = rank`.
    invert_permutation(&order)
}

/// Inverts a permutation: if `perm[i] = j` then `inverse[j] = i`.
pub fn invert_permutation(perm: &[VertexId]) -> Vec<VertexId> {
    let mut inv = vec![0 as VertexId; perm.len()];
    for (i, &j) in perm.iter().enumerate() {
        inv[j as usize] = i as VertexId;
    }
    inv
}

/// Checks whether `perm` is a permutation of `0..perm.len()`.
pub fn is_permutation(perm: &[VertexId]) -> bool {
    let n = perm.len();
    let mut seen = vec![false; n];
    for &p in perm {
        let idx = p as usize;
        if idx >= n || seen[idx] {
            return false;
        }
        seen[idx] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_permutation_is_a_permutation() {
        let perm = random_permutation(1000, 42);
        assert!(is_permutation(&perm));
    }

    #[test]
    fn random_permutation_is_deterministic_per_seed() {
        assert_eq!(random_permutation(100, 7), random_permutation(100, 7));
        assert_ne!(random_permutation(100, 7), random_permutation(100, 8));
    }

    #[test]
    fn identity_permutation_maps_to_self() {
        let perm = identity_permutation(5);
        assert_eq!(perm, vec![0, 1, 2, 3, 4]);
        assert!(is_permutation(&perm));
    }

    #[test]
    fn degree_ordered_puts_highest_degree_first() {
        let degrees = vec![1, 5, 3, 7];
        let perm = degree_ordered_permutation(&degrees);
        // Vertex 3 (degree 7) should be relabeled to 0, vertex 1 (degree 5) to 1, etc.
        assert_eq!(perm[3], 0);
        assert_eq!(perm[1], 1);
        assert_eq!(perm[2], 2);
        assert_eq!(perm[0], 3);
        assert!(is_permutation(&perm));
    }

    #[test]
    fn invert_permutation_round_trips() {
        let perm = random_permutation(64, 3);
        let inv = invert_permutation(&perm);
        let back = invert_permutation(&inv);
        assert_eq!(perm, back);
    }

    #[test]
    fn is_permutation_rejects_duplicates_and_out_of_range() {
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3]));
        assert!(is_permutation(&[] as &[VertexId]));
    }
}
