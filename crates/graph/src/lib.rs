//! Graph substrate for the asynchronous distributed TC/LCC reproduction.
//!
//! This crate provides everything the paper assumes exists below its algorithm:
//!
//! * [`EdgeList`] — mutable staging representation with cleaning passes
//!   (multi-edge removal, self-loop removal, symmetrization, iterative removal of
//!   vertices that cannot be part of a triangle, random relabeling).
//! * [`CsrGraph`] — the immutable Compressed Sparse Row representation used for
//!   computation (Figure 2 of the paper), with sorted adjacency lists.
//! * [`gen`] — synthetic graph generators: R-MAT with the paper's parameters,
//!   uniform (Erdős–Rényi), Barabási–Albert, Watts–Strogatz, and ego-circle graphs.
//! * [`datasets`] — a registry of named stand-ins for the real-world datasets the
//!   paper evaluates on (Orkut, LiveJournal, Skitter, uk-2005, wiki-en, Facebook
//!   circles), generated synthetically at laptop scale with matching degree shapes.
//! * [`partition`] — 1D block (equal-count and degree-balanced) and cyclic vertex
//!   partitioning plus the per-rank CSR construction used by the distributed
//!   algorithm.
//! * [`split`] — degree-weighted (equal-work) range splitting over CSR offsets,
//!   shared by the shared-memory schedulers and the balanced partitioner.
//! * [`mod@reference`] — simple sequential triangle counting and LCC used as ground truth.
//! * [`stats`] — degree distributions, CSR sizes, cut fractions and skew metrics.
//! * [`io`] — plain-text edge list reading/writing (SNAP format).
//!
//! # Paper map
//!
//! | Module | Paper location | What it reproduces |
//! |---|---|---|
//! | [`csr`] | §II-B, Fig. 2 | The CSR representation (`offsets` + sorted `adjacencies`) every kernel reads |
//! | [`compressed`] | §II-B, Fig. 2 | The same CSR arrays with delta/varint-compressed adjacency rows (`GraphStorage::Compressed`), shrinking the bytes every remote get and cache slot pays for |
//! | [`edge_list`] | §IV-A | The cleaning pipeline of the evaluation inputs: dedup, self-loop removal, symmetrization, triangle-free vertex pruning |
//! | [`partition`] | §III-A / §IV | The distribution scheme: 1D block ownership of contiguous vertex ranges (plus this reproduction's degree-balanced and cyclic variants), and the per-rank CSR each computing node exposes through its windows |
//! | [`split`] | §IV (load balance) | Weighted range boundaries — equal edge mass (`PartitionScheme::BalancedBlock1D`, shared-memory schedulers) and equal intersection work `Σ (deg(u)+deg(v))` (`PartitionScheme::WorkBalancedBlock1D`) |
//! | [`gen`] | §IV-A, Table II | R-MAT with the paper's `(A,B,C)` skew, plus the synthetic counterpoints (uniform, Barabási–Albert, Watts–Strogatz, ego circles) |
//! | [`datasets`] | §IV-A, Table II | Named laptop-scale stand-ins for Orkut, LiveJournal, Skitter, uk-2005, wiki-en, Facebook circles |
//! | [`relabel`] | §IV-A | The random vertex relabeling the paper applies so block partitions do not inherit crawl-order locality |
//! | [`mod@reference`] | Eq. (1)–(2) | Ground-truth triangle counts and LCC the differential suites compare every path against |
//! | [`stats`] | Table II | The `\|V\|`, `\|E\|`, degree-skew and cut-fraction columns |

pub mod builder;
pub mod compressed;
pub mod csr;
pub mod datasets;
pub mod edge_list;
pub mod gen;
pub mod io;
pub mod partition;
pub mod reference;
pub mod relabel;
pub mod split;
pub mod stats;
pub mod types;

pub use builder::GraphBuilder;
pub use compressed::{CompressedCsr, GraphStorage};
pub use csr::CsrGraph;
pub use edge_list::EdgeList;
pub use partition::{PartitionScheme, PartitionedGraph, Partitioner, RankPartition};
pub use types::{EdgeId, VertexId};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced while building or manipulating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge references a vertex id that is outside the declared vertex range.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph.
        n: u64,
    },
    /// The requested partition count is invalid (zero, or larger than the vertex count).
    InvalidPartitionCount {
        /// Requested number of parts.
        parts: usize,
        /// Number of vertices available.
        n: usize,
    },
    /// A parse error while reading a graph from text.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of what failed to parse.
        message: String,
    },
    /// An I/O error, stringified (io::Error is not Clone/PartialEq).
    Io(String),
    /// A generator was asked for parameters it cannot satisfy.
    InvalidGeneratorParams(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::InvalidPartitionCount { parts, n } => {
                write!(f, "cannot split {n} vertices into {parts} partitions")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "I/O error: {msg}"),
            GraphError::InvalidGeneratorParams(msg) => {
                write!(f, "invalid generator parameters: {msg}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}
