//! Differential proof that the [`EvictionPolicy`](rmatc_clampi::EvictionPolicy)
//! refactor changed nothing: `reference::ReferenceCache` below is a faithful
//! copy of the cache as it was *before* victim selection moved behind the
//! trait (same arithmetic, same RNG, same stats ordering), and the proptests
//! replay arbitrary insert/get interleavings against both, asserting
//! decision-for-decision equality — every lookup result, every insert
//! outcome, every counter, under both score policies and with the adaptive
//! heuristic on or off.
//!
//! The second property pins down [`ShardedClampi`]: with exactly one shard
//! the split is the identity, so it must match a plain [`Clampi`] the same
//! way.

use proptest::prelude::*;
use rmatc_clampi::cache::CacheInsertOutcome;
use rmatc_clampi::{Clampi, ClampiConfig, EntryKey, ShardedClampi};
use rmatc_rma::WindowId;

/// The cache exactly as it stood before the policy trait: victim scores,
/// admission control and sampled victim selection inlined, operating on the
/// same (unchanged) `FreeList` and `AdaptiveState` building blocks.
mod reference {
    use rmatc_clampi::adaptive::{AdaptiveAction, AdaptiveState};
    use rmatc_clampi::freelist::FreeList;
    use rmatc_clampi::{ClampiConfig, ConsistencyMode, EntryKey, ScorePolicy};
    use std::collections::HashSet;
    use std::sync::Arc;

    const WAYS: usize = 4;

    pub struct RefEntry {
        pub key: EntryKey,
        pub data: Arc<[u32]>,
        pub addr: usize,
        pub bytes: usize,
        pub last_access: u64,
        pub user_score: f64,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RefOutcome {
        Inserted,
        InsertedAfterEvicting(usize),
        NotCached,
    }

    /// Counters mirroring the pre-refactor `CacheStats` (without the
    /// policy-attributed fields this PR added).
    #[derive(Debug, Default, PartialEq)]
    pub struct RefStats {
        pub hits: u64,
        pub misses: u64,
        pub compulsory_misses: u64,
        pub capacity_evictions: u64,
        pub conflict_evictions: u64,
        pub uncacheable: u64,
        pub bytes_from_cache: u64,
        pub bytes_from_network: u64,
        pub flushes: u64,
        pub table_resizes: u64,
        pub capacity_resizes: u64,
    }

    pub struct ReferenceCache {
        config: ClampiConfig,
        slots: Vec<Option<RefEntry>>,
        freelist: FreeList,
        clock: u64,
        pub stats: RefStats,
        seen: HashSet<EntryKey>,
        adaptive: AdaptiveState,
        occupied: usize,
        occupied_bytes: usize,
        max_user_score: f64,
        rng_state: u64,
    }

    impl ReferenceCache {
        pub fn new(config: ClampiConfig) -> Self {
            let mut slots = Vec::new();
            slots.resize_with(config.table_slots.max(1), || None);
            Self {
                freelist: FreeList::new(config.capacity_bytes),
                slots,
                clock: 0,
                stats: RefStats::default(),
                seen: HashSet::new(),
                adaptive: AdaptiveState::default(),
                occupied: 0,
                occupied_bytes: 0,
                max_user_score: 0.0,
                rng_state: 0x9e37_79b9_7f4a_7c15,
                config,
            }
        }

        pub fn len(&self) -> usize {
            self.occupied
        }

        pub fn occupied_bytes(&self) -> usize {
            self.occupied_bytes
        }

        fn probe_slots(&self, key: &EntryKey) -> ([usize; WAYS], usize) {
            let n = self.slots.len();
            let base = key.slot(n);
            let count = WAYS.min(n);
            let mut probes = [0usize; WAYS];
            for (i, probe) in probes.iter_mut().take(count).enumerate() {
                *probe = (base + i) % n;
            }
            (probes, count)
        }

        pub fn lookup(&mut self, key: EntryKey) -> Option<Arc<[u32]>> {
            self.clock += 1;
            self.adaptive.record_access();
            let clock = self.clock;
            let mut hit = None;
            let (probes, ways) = self.probe_slots(&key);
            for &slot in &probes[..ways] {
                if let Some(entry) = &mut self.slots[slot] {
                    if entry.key == key {
                        entry.last_access = clock;
                        hit = Some(Arc::clone(&entry.data));
                        break;
                    }
                }
            }
            if let Some(data) = &hit {
                self.stats.hits += 1;
                self.stats.bytes_from_cache += (data.len() * std::mem::size_of::<u32>()) as u64;
            } else {
                self.stats.misses += 1;
                if self.seen.insert(key) {
                    self.stats.compulsory_misses += 1;
                }
            }
            self.maybe_adapt();
            hit
        }

        pub fn insert(&mut self, key: EntryKey, data: Vec<u32>, user_score: f64) -> RefOutcome {
            let data: Arc<[u32]> = data.into();
            let bytes = data.len() * std::mem::size_of::<u32>();
            self.stats.bytes_from_network += bytes as u64;
            if bytes > self.freelist.capacity() {
                self.stats.uncacheable += 1;
                return RefOutcome::NotCached;
            }
            self.max_user_score = self.max_user_score.max(user_score);
            let mut evicted = 0usize;
            let (probes, ways) = self.probe_slots(&key);
            let probes = &probes[..ways];
            let mut slot = None;
            for &s in probes {
                match &self.slots[s] {
                    Some(resident) if resident.key == key => {
                        let resident = self.slots[s].as_mut().expect("checked above");
                        resident.data = data;
                        resident.last_access = self.clock;
                        resident.user_score = user_score;
                        return RefOutcome::Inserted;
                    }
                    None if slot.is_none() => slot = Some(s),
                    _ => {}
                }
            }
            let slot = match slot {
                Some(s) => s,
                None => {
                    let victim = probes
                        .iter()
                        .copied()
                        .max_by(|&a, &b| {
                            let sa = self.victim_score(self.slots[a].as_ref().expect("occupied"));
                            let sb = self.victim_score(self.slots[b].as_ref().expect("occupied"));
                            sa.partial_cmp(&sb).expect("scores are not NaN")
                        })
                        .expect("probe sequence is never empty");
                    self.evict_slot(victim);
                    self.stats.conflict_evictions += 1;
                    self.adaptive.record_conflict();
                    evicted += 1;
                    victim
                }
            };
            let addr = loop {
                if let Some(addr) = self.freelist.allocate(bytes) {
                    break addr;
                }
                match self.pick_victim_slot(slot) {
                    Some(victim_slot) => {
                        if self.config.scoring == ScorePolicy::ApplicationScore {
                            let victim_score = self.slots[victim_slot]
                                .as_ref()
                                .map(|e| e.user_score)
                                .unwrap_or(0.0);
                            if user_score < victim_score {
                                self.stats.uncacheable += 1;
                                return RefOutcome::NotCached;
                            }
                        }
                        self.evict_slot(victim_slot);
                        self.stats.capacity_evictions += 1;
                        self.adaptive.record_space_eviction();
                        evicted += 1;
                    }
                    None => {
                        self.stats.uncacheable += 1;
                        return RefOutcome::NotCached;
                    }
                }
            };
            self.slots[slot] = Some(RefEntry {
                key,
                data,
                addr,
                bytes,
                last_access: self.clock,
                user_score,
            });
            self.occupied += 1;
            self.occupied_bytes += bytes;
            if evicted == 0 {
                RefOutcome::Inserted
            } else {
                RefOutcome::InsertedAfterEvicting(evicted)
            }
        }

        pub fn flush(&mut self) {
            for slot in 0..self.slots.len() {
                if self.slots[slot].is_some() {
                    self.evict_slot(slot);
                }
            }
            self.stats.flushes += 1;
        }

        pub fn end_epoch(&mut self) {
            if self.config.mode == ConsistencyMode::Transparent {
                self.flush();
            }
        }

        fn victim_score(&self, entry: &RefEntry) -> f64 {
            let age =
                (self.clock.saturating_sub(entry.last_access)) as f64 / (self.clock.max(1)) as f64;
            match self.config.scoring {
                ScorePolicy::LruPositional => {
                    let (before, after) = self.freelist.adjacency_to_free(entry.addr, entry.bytes);
                    let positional = (before as u8 + after as u8) as f64 / 2.0;
                    self.config.lru_weight * age + self.config.positional_weight * positional
                }
                ScorePolicy::ApplicationScore => {
                    let norm = if self.max_user_score > 0.0 {
                        entry.user_score / self.max_user_score
                    } else {
                        0.0
                    };
                    self.config.lru_weight * age - self.config.user_weight * norm
                }
            }
        }

        fn pick_victim_slot(&mut self, protect: usize) -> Option<usize> {
            if self.occupied == 0 || (self.occupied == 1 && self.slots[protect].is_some()) {
                return None;
            }
            const SAMPLES: usize = 16;
            let nslots = self.slots.len();
            let mut best: Option<(usize, f64)> = None;
            let mut inspected = 0usize;
            let mut attempts = 0usize;
            while inspected < SAMPLES && attempts < nslots.saturating_mul(8).max(64) {
                attempts += 1;
                let idx = self.next_random() % nslots;
                if idx == protect {
                    continue;
                }
                if let Some(entry) = &self.slots[idx] {
                    inspected += 1;
                    let score = self.victim_score(entry);
                    if best.map(|(_, s)| score > s).unwrap_or(true) {
                        best = Some((idx, score));
                    }
                }
            }
            if best.is_none() {
                for idx in 0..nslots {
                    if idx == protect {
                        continue;
                    }
                    if let Some(entry) = &self.slots[idx] {
                        let score = self.victim_score(entry);
                        if best.map(|(_, s)| score > s).unwrap_or(true) {
                            best = Some((idx, score));
                        }
                    }
                }
            }
            best.map(|(idx, _)| idx)
        }

        fn evict_slot(&mut self, slot: usize) {
            if let Some(entry) = self.slots[slot].take() {
                self.freelist.free(entry.addr, entry.bytes);
                self.occupied -= 1;
                self.occupied_bytes -= entry.bytes;
            }
        }

        fn maybe_adapt(&mut self) {
            let Some(adaptive_cfg) = self.config.adaptive else {
                return;
            };
            let action =
                self.adaptive
                    .decide(&adaptive_cfg, self.slots.len(), self.freelist.capacity());
            match action {
                Some(AdaptiveAction::GrowTable { new_slots }) => {
                    self.flush();
                    self.slots = Vec::new();
                    self.slots.resize_with(new_slots, || None);
                    self.config.table_slots = new_slots;
                    self.stats.table_resizes += 1;
                }
                Some(AdaptiveAction::GrowCapacity { new_capacity }) => {
                    self.freelist.grow(new_capacity);
                    self.config.capacity_bytes = new_capacity;
                    self.stats.capacity_resizes += 1;
                }
                None => {}
            }
        }

        fn next_random(&mut self) -> usize {
            let mut x = self.rng_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.rng_state = x;
            (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as usize
        }
    }
}

/// One step of a replayed trace.
#[derive(Debug, Clone)]
enum Op {
    /// Lookup `key(offset, len)`; on a miss, insert `len` words with `score`.
    Access {
        offset: usize,
        len: usize,
        score: f64,
    },
    /// Close the epoch.
    EndEpoch,
    /// Explicit flush.
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // 80% accesses, 10% epoch closures, 10% flushes (the vendored proptest
    // stub has no `prop_oneof!`, so the selector is mapped by hand).
    (0u32..10, 0usize..48, 1usize..12, 0u32..1000).prop_map(|(sel, offset, len, score)| match sel {
        8 => Op::EndEpoch,
        9 => Op::Flush,
        _ => Op::Access {
            offset,
            len,
            score: score as f64,
        },
    })
}

fn key(offset: usize, len: usize) -> EntryKey {
    EntryKey::new(WindowId(0), 1, offset, len)
}

fn assert_stats_match(
    live: &rmatc_clampi::CacheStats,
    reference: &reference::RefStats,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(live.hits, reference.hits);
    prop_assert_eq!(live.misses, reference.misses);
    prop_assert_eq!(live.compulsory_misses, reference.compulsory_misses);
    prop_assert_eq!(live.capacity_evictions, reference.capacity_evictions);
    prop_assert_eq!(live.conflict_evictions, reference.conflict_evictions);
    prop_assert_eq!(live.uncacheable, reference.uncacheable);
    prop_assert_eq!(live.bytes_from_cache, reference.bytes_from_cache);
    prop_assert_eq!(live.bytes_from_network, reference.bytes_from_network);
    prop_assert_eq!(live.flushes, reference.flushes);
    prop_assert_eq!(live.table_resizes, reference.table_resizes);
    prop_assert_eq!(live.capacity_resizes, reference.capacity_resizes);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole guarantee: `PaperScore` through the trait is
    /// decision-for-decision identical to the pre-refactor cache, under both
    /// score policies, with and without the adaptive heuristic.
    #[test]
    fn paper_score_is_bit_identical_to_pre_refactor_cache(
        ops in prop::collection::vec(op_strategy(), 1..400),
        capacity in 32usize..2048,
        slots in 1usize..96,
        use_scores in any::<bool>(),
        adaptive in any::<bool>(),
    ) {
        let mut cfg = ClampiConfig::always_cache(capacity, slots);
        if use_scores {
            cfg = cfg.with_application_scores();
        }
        if adaptive {
            cfg = cfg.with_adaptive();
            // Small window so the heuristic actually fires inside the trace.
            cfg.adaptive.as_mut().unwrap().interval = 32;
            cfg.adaptive.as_mut().unwrap().max_capacity_bytes = capacity * 4;
        }
        let mut live: Clampi<u32> = Clampi::new(cfg);
        let mut reference = reference::ReferenceCache::new(cfg);
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Access { offset, len, score } => {
                    let k = key(offset, len);
                    let live_hit = live.lookup(k);
                    let ref_hit = reference.lookup(k);
                    prop_assert_eq!(live_hit.is_some(), ref_hit.is_some(), "lookup {} diverged", i);
                    if let (Some(a), Some(b)) = (&live_hit, &ref_hit) {
                        prop_assert_eq!(&**a, &**b);
                    }
                    if live_hit.is_none() {
                        let data: Vec<u32> = (0..len as u32).map(|x| x + offset as u32).collect();
                        let live_out = live.insert(k, data.clone(), score);
                        let ref_out = reference.insert(k, data, score);
                        let matches = matches!(
                            (live_out, ref_out),
                            (CacheInsertOutcome::Inserted, reference::RefOutcome::Inserted)
                                | (CacheInsertOutcome::NotCached, reference::RefOutcome::NotCached)
                        ) || matches!(
                            (live_out, ref_out),
                            (
                                CacheInsertOutcome::InsertedAfterEvicting(a),
                                reference::RefOutcome::InsertedAfterEvicting(b)
                            ) if a == b
                        );
                        prop_assert!(matches, "insert {} diverged: {:?} vs {:?}", i, live_out, ref_out);
                    }
                }
                Op::EndEpoch => {
                    live.end_epoch();
                    reference.end_epoch();
                }
                Op::Flush => {
                    live.flush();
                    reference.flush();
                }
            }
            prop_assert_eq!(live.len(), reference.len(), "entry count diverged at op {}", i);
            prop_assert_eq!(live.occupied_bytes(), reference.occupied_bytes());
        }
        assert_stats_match(live.stats(), &reference.stats)?;
    }

    /// `ShardedClampi` with one shard is the identity split: it must match a
    /// plain `Clampi` on every observable, for every policy kind.
    #[test]
    fn single_shard_matches_plain_cache(
        ops in prop::collection::vec(op_strategy(), 1..300),
        capacity in 32usize..2048,
        slots in 1usize..96,
        policy_idx in 0usize..4,
        use_scores in any::<bool>(),
    ) {
        let mut cfg = ClampiConfig::always_cache(capacity, slots)
            .with_policy(rmatc_clampi::EvictionPolicyKind::ALL[policy_idx]);
        if use_scores {
            cfg = cfg.with_application_scores();
        }
        let mut plain: Clampi<u32> = Clampi::new(cfg);
        let sharded: ShardedClampi<u32> = ShardedClampi::new(cfg, 1);
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Access { offset, len, score } => {
                    let k = key(offset, len);
                    let plain_hit = plain.lookup(k);
                    let sharded_hit = sharded.lookup(k);
                    prop_assert_eq!(
                        plain_hit.is_some(),
                        sharded_hit.is_some(),
                        "lookup {} diverged",
                        i
                    );
                    if plain_hit.is_none() {
                        let data: Vec<u32> = (0..len as u32).collect();
                        let a = plain.insert(k, data.clone(), score);
                        let b = sharded.insert(k, data, score);
                        prop_assert_eq!(a, b, "insert {} diverged", i);
                    }
                }
                Op::EndEpoch => {
                    plain.end_epoch();
                    sharded.end_epoch();
                }
                Op::Flush => {
                    plain.flush();
                    sharded.flush();
                }
            }
            prop_assert_eq!(plain.len(), sharded.len());
            prop_assert_eq!(plain.occupied_bytes(), sharded.occupied_bytes());
        }
        prop_assert_eq!(plain.stats(), &sharded.stats());
    }
}
