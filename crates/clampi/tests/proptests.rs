//! Property-based tests of the CLaMPI reproduction: the free-region manager never
//! loses or double-books space, and the cache behaves like a correct (if bounded)
//! memoisation of the window under arbitrary access patterns and configurations.

use proptest::prelude::*;
use rmatc_clampi::freelist::FreeList;
use rmatc_clampi::{CachedWindow, ClampiConfig, ConsistencyMode, ScorePolicy};
use rmatc_rma::{Endpoint, NetworkModel, Window};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn freelist_conserves_bytes(capacity in 1usize..4096,
                                sizes in prop::collection::vec(1usize..128, 1..64)) {
        let mut fl = FreeList::new(capacity);
        let mut allocated: Vec<(usize, usize)> = Vec::new();
        for size in sizes {
            if let Some(addr) = fl.allocate(size) {
                // No overlap with existing allocations.
                for &(a, s) in &allocated {
                    prop_assert!(addr + size <= a || a + s <= addr,
                        "allocation [{addr},{}) overlaps [{a},{})", addr + size, a + s);
                }
                allocated.push((addr, size));
            }
            let used: usize = allocated.iter().map(|&(_, s)| s).sum();
            prop_assert_eq!(fl.total_free() + used, capacity);
            prop_assert!(fl.largest_free() <= fl.total_free());
        }
        // Free everything (in insertion order) and verify full coalescing.
        for (addr, size) in allocated.drain(..) {
            fl.free(addr, size);
        }
        prop_assert_eq!(fl.total_free(), capacity);
        prop_assert!(fl.fragments() <= 1);
    }

    #[test]
    fn cached_window_is_a_transparent_memoisation(
        accesses in prop::collection::vec((0usize..64, 1usize..16), 1..300),
        capacity in 32usize..4096,
        slots in 1usize..128,
        use_scores in any::<bool>(),
        mode_transparent in any::<bool>(),
    ) {
        // Exposed data: rank 1 exposes 128 known values.
        let window = Window::from_parts(vec![Vec::new(), (0..128u32).map(|x| x * 7).collect()]);
        let mut cfg = ClampiConfig::always_cache(capacity, slots);
        if use_scores {
            cfg = cfg.with_application_scores();
        }
        if mode_transparent {
            cfg.mode = ConsistencyMode::Transparent;
        }
        let mut cached = CachedWindow::new(window, cfg);
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        ep.lock_all();
        for (i, (offset, len)) in accesses.into_iter().enumerate() {
            let offset = offset.min(128 - len.min(128));
            let got = cached
                .get_scored(&mut ep, 1, offset, len, len as f64)
                .expect("no faults injected")
                .to_vec();
            let expected: Vec<u32> = (offset..offset + len).map(|x| x as u32 * 7).collect();
            prop_assert_eq!(got, expected, "access {}", i);
            if i % 17 == 0 {
                cached.end_epoch();
            }
        }
        ep.unlock_all();
        let stats = cached.stats();
        prop_assert_eq!(stats.lookups(), stats.hits + stats.misses);
        prop_assert!(stats.compulsory_misses <= stats.misses);
        if mode_transparent {
            // Transparent mode can only hit within an epoch, never across flushes.
            prop_assert!(stats.flushes > 0 || stats.lookups() < 17);
        }
        let _ = ScorePolicy::LruPositional;
    }

    #[test]
    fn table_size_one_still_works(accesses in prop::collection::vec(0usize..32, 1..100)) {
        // The degenerate single-slot table turns every distinct key into a conflict;
        // data correctness must be unaffected.
        let window = Window::from_parts(vec![Vec::new(), (0..64u32).collect()]);
        let mut cached = CachedWindow::new(window, ClampiConfig::always_cache(1024, 1));
        let mut ep = Endpoint::new(0, 2, NetworkModel::zero());
        ep.lock_all();
        for offset in accesses {
            let got = cached.get(&mut ep, 1, offset, 1).expect("no faults injected");
            prop_assert_eq!(got[0], offset as u32);
        }
        ep.unlock_all();
        prop_assert!(cached.cache().len() <= 1);
    }
}
