//! Cache entries and their keys.

use rmatc_rma::WindowId;
use std::sync::Arc;

/// Key identifying one cached remote region: which window, which target rank, and
/// which `[offset, offset + len)` element range. This mirrors CLaMPI's indexing of
/// gets by their `(window, target, displacement, size)` tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct EntryKey {
    /// Window the get targeted.
    pub window: WindowId,
    /// Target rank of the get.
    pub target: usize,
    /// Element offset within the target's exposed region.
    pub offset: usize,
    /// Number of elements.
    pub len: usize,
}

impl EntryKey {
    /// Creates a key.
    pub fn new(window: WindowId, target: usize, offset: usize, len: usize) -> Self {
        Self {
            window,
            target,
            offset,
            len,
        }
    }

    /// Hash-table slot for this key given `slots` total slots. A simple multiplicative
    /// hash is sufficient and deterministic across runs.
    pub fn slot(&self, slots: usize) -> usize {
        debug_assert!(slots > 0);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [
            self.window.0,
            self.target as u64,
            self.offset as u64,
            self.len as u64,
        ] {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        (h % slots as u64) as usize
    }
}

/// One cached entry: the transferred data plus the bookkeeping needed for victim
/// selection (placement in the buffer, recency, application score).
#[derive(Debug, Clone)]
pub struct Entry<T> {
    /// The key this entry answers.
    pub key: EntryKey,
    /// Cached data. The shared slice is the *same allocation* the RMA transfer
    /// landed in — inserting is a refcount bump, and hits hand out further
    /// bumps — so the payload is copied exactly once, off the wire.
    pub data: Arc<[T]>,
    /// Start address of the entry in the simulated memory buffer.
    pub addr: usize,
    /// Size in bytes occupied in the memory buffer.
    pub bytes: usize,
    /// Logical timestamp of the last access (for LRU).
    pub last_access: u64,
    /// Application-defined score; `0.0` when the application passes none.
    pub user_score: f64,
    /// Hash-table slot occupied by this entry.
    pub slot: usize,
    /// Integrity stamp of the transfer this entry retains, computed at the
    /// source window when fault injection is enabled; `None` on fault-free
    /// runs (verification is skipped entirely).
    pub checksum: Option<u64>,
    /// Number of accesses this entry has served, counting the insert itself
    /// (the frequency term of the LFU and GDSF eviction policies).
    pub hits: u64,
    /// Policy-private scalar maintained by the active
    /// [`EvictionPolicy`](crate::policy::EvictionPolicy) (GDSF stores its
    /// priority `H` here); `0.0` for policies that do not use it.
    pub priority: f64,
}

impl<T> Entry<T> {
    /// Borrow-free snapshot of the fields eviction policies may consult.
    pub fn view(&self) -> crate::policy::EntryView {
        crate::policy::EntryView {
            bytes: self.bytes,
            addr: self.addr,
            last_access: self.last_access,
            user_score: self.user_score,
            hits: self.hits,
            priority: self.priority,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(offset: usize) -> EntryKey {
        EntryKey::new(WindowId(3), 1, offset, 10)
    }

    #[test]
    fn keys_compare_by_all_fields() {
        assert_eq!(key(5), key(5));
        assert_ne!(key(5), key(6));
        assert_ne!(key(5), EntryKey::new(WindowId(4), 1, 5, 10));
        assert_ne!(key(5), EntryKey::new(WindowId(3), 2, 5, 10));
    }

    #[test]
    fn slot_is_stable_and_in_range() {
        for slots in [1usize, 7, 64, 1023] {
            for off in 0..100 {
                let s = key(off).slot(slots);
                assert!(s < slots);
                assert_eq!(s, key(off).slot(slots));
            }
        }
    }

    #[test]
    fn slot_distributes_keys() {
        // With a reasonable table size, 1000 distinct keys should not all collide.
        let slots = 256;
        let mut used = std::collections::HashSet::new();
        for off in 0..1000 {
            used.insert(key(off).slot(slots));
        }
        assert!(
            used.len() > slots / 2,
            "hash too degenerate: {} slots used",
            used.len()
        );
    }
}
