//! Zero-copy views of window regions returned by cached reads.
//!
//! The original read API materialized an owned `Vec` for every read — local
//! reads copied the window slice, hits cloned out of the cache, and misses
//! cloned the fetched buffer a second time on insert. [`RowRef`] removes all
//! of those copies: a read now resolves to a *view* of wherever the row
//! already lives — the local window part, the cache entry, or the single
//! transfer buffer of a miss — and intersection kernels run directly over it.

use std::ops::Deref;
use std::sync::Arc;

/// A zero-copy view of one read region (e.g. an adjacency row).
///
/// Dereferences to `[T]`, so it drops straight into slice-based kernels such
/// as `rmatc-core`'s intersection suite. The variant records where the data
/// came from, which the allocation tests and statistics assertions rely on:
///
/// * [`Window`](RowRef::Window) — borrowed from the local window part
///   (local-rank read): no allocation, no copy.
/// * [`Cached`](RowRef::Cached) — a cache hit: shares the cached entry's
///   buffer via a refcount bump.
/// * [`Fetched`](RowRef::Fetched) — a miss (or a read on a non-cached
///   window): the transfer buffer itself. When the entry was cacheable the
///   *same* allocation was handed to the cache, so no second copy exists.
#[derive(Debug, Clone)]
pub enum RowRef<'a, T> {
    /// Borrowed straight from the local window part.
    Window(&'a [T]),
    /// Cache hit sharing the cached entry's buffer.
    Cached(Arc<[T]>),
    /// The freshly fetched transfer buffer of a miss or uncached read.
    Fetched(Arc<[T]>),
}

impl<T> RowRef<'_, T> {
    /// The row as a plain slice.
    pub fn as_slice(&self) -> &[T] {
        match self {
            RowRef::Window(slice) => slice,
            RowRef::Cached(arc) | RowRef::Fetched(arc) => arc,
        }
    }

    /// The shared buffer behind a [`Cached`](RowRef::Cached) or
    /// [`Fetched`](RowRef::Fetched) row; `None` for borrowed window slices.
    pub fn arc(&self) -> Option<&Arc<[T]>> {
        match self {
            RowRef::Window(_) => None,
            RowRef::Cached(arc) | RowRef::Fetched(arc) => Some(arc),
        }
    }

    /// Whether this row borrows the local window (no shared buffer involved).
    pub fn is_borrowed(&self) -> bool {
        matches!(self, RowRef::Window(_))
    }
}

impl<T> Deref for RowRef<'_, T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> AsRef<[T]> for RowRef<'_, T> {
    fn as_ref(&self) -> &[T] {
        self.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_deref_to_their_data() {
        let data = [1u32, 2, 3];
        let arc: Arc<[u32]> = Arc::from(&data[..]);
        let window: RowRef<'_, u32> = RowRef::Window(&data);
        let cached: RowRef<'_, u32> = RowRef::Cached(Arc::clone(&arc));
        let fetched: RowRef<'_, u32> = RowRef::Fetched(arc);
        for row in [&window, &cached, &fetched] {
            assert_eq!(row.as_slice(), &[1, 2, 3]);
            assert_eq!(row.len(), 3);
            assert_eq!(row[1], 2);
        }
        assert!(window.is_borrowed());
        assert!(window.arc().is_none());
        assert!(!cached.is_borrowed());
        assert!(cached.arc().is_some());
    }

    #[test]
    fn cached_and_fetched_share_the_buffer() {
        let arc: Arc<[u32]> = Arc::from(&[7u32, 8][..]);
        let fetched: RowRef<'static, u32> = RowRef::Fetched(Arc::clone(&arc));
        let cached: RowRef<'static, u32> = RowRef::Cached(arc);
        assert!(Arc::ptr_eq(fetched.arc().unwrap(), cached.arc().unwrap()));
    }
}
