//! CLaMPI configuration: buffer capacity, hash-table size, consistency mode,
//! victim-selection policy and adaptive-tuning parameters.

use crate::policy::EvictionPolicyKind;

/// Consistency modes offered by CLaMPI (Section II-F of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ConsistencyMode {
    /// No assumption on the cached data: the cache is flushed at every epoch closure.
    /// Hits are only possible within one epoch.
    Transparent,
    /// Data accessed through RMA is read-only, so the cache is never flushed. This is
    /// the mode the LCC application uses for both windows, because the graph is not
    /// modified during the computation.
    AlwaysCache,
    /// The application decides when to flush.
    UserDefined,
}

/// Victim-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ScorePolicy {
    /// CLaMPI's default: least-recently-used weighted by a positional score that
    /// prefers evicting entries whose removal merges adjacent free regions.
    LruPositional,
    /// The paper's extension: the application passes a score with each entry (for
    /// LCC, the out-degree of the cached vertex). Higher scores are protected; the
    /// positional component is dropped, as the paper notes ("we lose the spatial
    /// effect of the score").
    ApplicationScore,
}

/// Tuning knobs of the adaptive heuristic.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AdaptiveConfig {
    /// Re-evaluate the configuration every this many accesses.
    pub interval: u64,
    /// Grow the hash table (×2, flushing the cache) when the fraction of accesses
    /// that hit a hash conflict exceeds this threshold.
    pub conflict_threshold: f64,
    /// Grow the memory buffer (×1.5, no flush) when the fraction of misses caused by
    /// lack of space exceeds this threshold, up to `max_capacity_bytes`.
    pub eviction_threshold: f64,
    /// Upper bound for adaptive capacity growth.
    pub max_capacity_bytes: usize,
    /// Upper bound for adaptive hash-table growth.
    pub max_table_slots: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            interval: 4096,
            conflict_threshold: 0.05,
            eviction_threshold: 0.5,
            max_capacity_bytes: usize::MAX,
            max_table_slots: 1 << 24,
        }
    }
}

/// Full CLaMPI configuration for one cached window.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClampiConfig {
    /// Capacity of the memory buffer reserved for cached data, in bytes.
    pub capacity_bytes: usize,
    /// Number of slots in the hash-table index. The paper discusses how to size this:
    /// for the offsets cache one slot per expected entry (entries are fixed-size), for
    /// the adjacency cache a power-law-aware estimate (`n · 0.5^α` entries with α≈2
    /// when the cache holds half the graph).
    pub table_slots: usize,
    /// Consistency mode.
    pub mode: ConsistencyMode,
    /// Victim-selection policy family. [`EvictionPolicyKind::PaperScore`]
    /// (the default) reproduces the paper's weighted-score selection and is
    /// the only kind that reads the [`ClampiConfig::scoring`] field; the
    /// other kinds (LRU, LFU, GDSF) ignore it.
    pub policy: EvictionPolicyKind,
    /// Score variant used by the [`EvictionPolicyKind::PaperScore`] policy.
    pub scoring: ScorePolicy,
    /// Weight of the recency component in victim selection.
    pub lru_weight: f64,
    /// Weight of the positional (fragmentation) component in victim selection.
    pub positional_weight: f64,
    /// Weight of the application score in victim selection.
    pub user_weight: f64,
    /// Adaptive tuning; `None` disables it.
    pub adaptive: Option<AdaptiveConfig>,
    /// Number of checksum-failed (corrupted) entries after which the cache is
    /// quarantined: it stops serving and storing entries, and every read falls
    /// back to the plain RMA path — the paper's non-cached baseline — instead
    /// of risking wrong answers. Only reachable under fault injection.
    pub quarantine_threshold: u32,
}

impl ClampiConfig {
    /// A reasonable always-cache configuration for read-only graph data.
    pub fn always_cache(capacity_bytes: usize, table_slots: usize) -> Self {
        Self {
            capacity_bytes,
            table_slots: table_slots.max(1),
            mode: ConsistencyMode::AlwaysCache,
            policy: EvictionPolicyKind::PaperScore,
            scoring: ScorePolicy::LruPositional,
            lru_weight: 1.0,
            positional_weight: 0.5,
            user_weight: 2.0,
            adaptive: None,
            quarantine_threshold: 3,
        }
    }

    /// Sets the corruption count at which the cache quarantines itself.
    pub fn with_quarantine_threshold(mut self, threshold: u32) -> Self {
        self.quarantine_threshold = threshold.max(1);
        self
    }

    /// Switches victim selection to application-defined scores (degree centrality in
    /// the paper's LCC use case).
    pub fn with_application_scores(mut self) -> Self {
        self.scoring = ScorePolicy::ApplicationScore;
        self
    }

    /// Selects the eviction-policy family (see [`crate::policy`]).
    pub fn with_policy(mut self, policy: EvictionPolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Enables the adaptive tuning heuristic with default thresholds.
    pub fn with_adaptive(mut self) -> Self {
        self.adaptive = Some(AdaptiveConfig::default());
        self
    }

    /// Sizes the hash table for an offsets cache per the paper's guidance: entries
    /// are fixed-size (`entry_bytes` each), so the expected number of entries is the
    /// capacity divided by the entry size. The slot count is doubled because this
    /// reproduction indexes entries directly in the table (set-associative probing):
    /// at a load factor near 1 it would suffer conflict evictions that the original
    /// CLaMPI's chained hash table does not.
    pub fn offsets_table_slots(capacity_bytes: usize, entry_bytes: usize) -> usize {
        (2 * capacity_bytes / entry_bytes.max(1)).max(1)
    }

    /// Sizes the hash table for an adjacencies cache per the paper's guidance: with a
    /// power-law degree distribution and a cache of `capacity_fraction` of the graph,
    /// expect about `n · capacity_fraction^α` entries, with `α = 2` found to be a
    /// good approximation. Doubled for the same load-factor reason as
    /// [`ClampiConfig::offsets_table_slots`].
    pub fn adjacency_table_slots(n: usize, capacity_fraction: f64) -> usize {
        let alpha = 2.0;
        (2.0 * (n as f64) * capacity_fraction.clamp(0.0, 1.0).powf(alpha))
            .ceil()
            .max(16.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_cache_defaults_are_sane() {
        let c = ClampiConfig::always_cache(1 << 20, 1024);
        assert_eq!(c.mode, ConsistencyMode::AlwaysCache);
        assert_eq!(c.scoring, ScorePolicy::LruPositional);
        assert!(c.adaptive.is_none());
        assert_eq!(c.capacity_bytes, 1 << 20);
    }

    #[test]
    fn builder_style_modifiers() {
        let c = ClampiConfig::always_cache(1024, 64)
            .with_application_scores()
            .with_adaptive();
        assert_eq!(c.scoring, ScorePolicy::ApplicationScore);
        assert!(c.adaptive.is_some());
    }

    #[test]
    fn policy_defaults_to_paper_score_and_is_selectable() {
        let c = ClampiConfig::always_cache(1024, 64);
        assert_eq!(c.policy, EvictionPolicyKind::PaperScore);
        let c = c.with_policy(EvictionPolicyKind::Gdsf);
        assert_eq!(c.policy, EvictionPolicyKind::Gdsf);
    }

    #[test]
    fn table_slots_never_zero() {
        let c = ClampiConfig::always_cache(1024, 0);
        assert_eq!(c.table_slots, 1);
        assert_eq!(ClampiConfig::offsets_table_slots(0, 16), 1);
    }

    #[test]
    fn offsets_table_matches_paper_rule() {
        // "if the cache size equals n/2 bytes, the optimal size of the hash table for
        // C_offsets will roughly equal n/2" — the expected entry count is
        // capacity/16 with the real 16-byte (start, end) entries; the slot count is
        // twice that to keep the direct-indexed table's load factor low.
        assert_eq!(
            ClampiConfig::offsets_table_slots(1 << 20, 16),
            2 * (1 << 20) / 16
        );
    }

    #[test]
    fn adjacency_table_follows_power_law_estimate() {
        // Cache half the graph, α = 2 → expect n · 0.25 entries (× 2 slots).
        let slots = ClampiConfig::adjacency_table_slots(1_000_000, 0.5);
        assert_eq!(slots, 500_000);
        // Degenerate fractions clamp cleanly.
        assert!(ClampiConfig::adjacency_table_slots(100, 0.0) >= 16);
        assert_eq!(
            ClampiConfig::adjacency_table_slots(1_000_000, 1.0),
            2_000_000
        );
    }
}
