//! Lock-sharded concurrent CLaMPI.
//!
//! The paper runs one single-threaded cache per rank; a future multi-threaded
//! rank would serialize every lookup and miss on one lock. [`ShardedClampi`]
//! splits the configured budget across `N` independently locked [`Clampi`]
//! shards, each with its own freelist, hash table, statistics and eviction
//! policy instance, so concurrent misses on different shards proceed in
//! parallel. Keys are routed to shards by a hash that is independent of the
//! in-shard slot hash (so sharding does not skew slot occupancy), and the
//! routing is deterministic: replayed runs hit the same shards.
//!
//! With one shard the split is the identity — capacity, slot count and every
//! decision match a plain [`Clampi`] exactly (proved by a differential
//! proptest in `tests/proptests.rs`). With `N` shards each gets
//! `capacity / N` bytes and `⌈slots / N⌉` slots, so total table capacity
//! never shrinks below the configured value.
//!
//! Shard sizing guidance lives in `docs/CACHE_POLICIES.md`: more shards mean
//! less lock contention but smaller per-shard buffers, which raises the
//! per-shard miss rate on skewed traces — a handful of shards per expected
//! concurrent thread is plenty.

use crate::cache::{CacheInsertOutcome, Clampi};
use crate::config::ClampiConfig;
use crate::entry::EntryKey;
use crate::policy::EvictionPolicyKind;
use crate::stats::CacheStats;
use std::sync::{Arc, Mutex, MutexGuard};

/// A concurrent cache: `N` independently locked [`Clampi`] shards behind
/// `&self` methods. All shards run the same configuration (scaled to their
/// share of the budget) and the same eviction-policy kind, each with its own
/// policy instance and statistics.
#[derive(Debug)]
pub struct ShardedClampi<T> {
    shards: Vec<Mutex<Clampi<T>>>,
    /// The *unsplit* configuration the cache was built from.
    config: ClampiConfig,
}

impl<T: Clone> ShardedClampi<T> {
    /// Creates a cache with `shards` shards splitting `config`'s budget:
    /// each shard gets `capacity_bytes / shards` buffer bytes and
    /// `⌈table_slots / shards⌉` index slots. `shards` is clamped to at
    /// least 1; with exactly 1 the shard is configured identically to
    /// `Clampi::new(config)`.
    pub fn new(config: ClampiConfig, shards: usize) -> Self {
        let n = shards.max(1);
        let shard_config = ClampiConfig {
            capacity_bytes: config.capacity_bytes / n,
            table_slots: config.table_slots.max(1).div_ceil(n),
            ..config
        };
        let shards = (0..n)
            .map(|_| Mutex::new(Clampi::new(shard_config)))
            .collect();
        Self { shards, config }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configuration the cache was built from (pre-split; per-shard
    /// capacities are this divided across [`ShardedClampi::shard_count`]).
    pub fn config(&self) -> &ClampiConfig {
        &self.config
    }

    /// Which eviction-policy family every shard runs.
    pub fn policy_kind(&self) -> EvictionPolicyKind {
        self.config.policy
    }

    /// Deterministic shard of a key. Uses a splitmix64-style mix over the key
    /// fields — deliberately *not* [`EntryKey::slot`]'s FNV hash, so the
    /// shard index and the in-shard slot index stay uncorrelated.
    pub fn shard_for(&self, key: &EntryKey) -> usize {
        let mut h: u64 = 0x243f_6a88_85a3_08d3;
        for v in [
            key.window.0,
            key.target as u64,
            key.offset as u64,
            key.len as u64,
        ] {
            h = h.wrapping_add(v).wrapping_add(0x9e37_79b9_7f4a_7c15);
            h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            h ^= h >> 31;
        }
        (h % self.shards.len() as u64) as usize
    }

    /// Locks a shard, recovering from poisoning: a panicking thread may leave
    /// a shard mid-operation only between `Clampi` method calls (the shard's
    /// own invariants are re-established before each call returns), so the
    /// inner cache is still usable.
    fn lock(&self, shard: usize) -> MutexGuard<'_, Clampi<T>> {
        self.shards[shard]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Runs `f` with the shard owning `key` locked for the whole call. This
    /// is the coalescing primitive for concurrent misses on the *same* key:
    /// holding the shard across lookup → fetch → insert makes the second
    /// thread block on the shard mutex and then find a hit, instead of both
    /// fetching. Keys on other shards proceed in parallel throughout. Do not
    /// call [`ShardedClampi`] methods for the same shard from inside `f`.
    pub fn with_shard<R>(&self, key: &EntryKey, f: impl FnOnce(&mut Clampi<T>) -> R) -> R {
        f(&mut self.lock(self.shard_for(key)))
    }

    /// Looks up a region in its shard. See [`Clampi::lookup`].
    pub fn lookup(&self, key: EntryKey) -> Option<Arc<[T]>> {
        self.lock(self.shard_for(&key)).lookup(key)
    }

    /// Like [`ShardedClampi::lookup`], also returning the integrity stamp.
    /// See [`Clampi::lookup_entry`].
    pub fn lookup_entry(&self, key: EntryKey) -> Option<(Arc<[T]>, Option<u64>)> {
        self.lock(self.shard_for(&key)).lookup_entry(key)
    }

    /// Inserts data fetched after a miss into the key's shard.
    /// See [`Clampi::insert`].
    pub fn insert(
        &self,
        key: EntryKey,
        data: impl Into<Arc<[T]>>,
        user_score: f64,
    ) -> CacheInsertOutcome {
        self.lock(self.shard_for(&key))
            .insert(key, data, user_score)
    }

    /// Inserts with an integrity stamp. See [`Clampi::insert_with_checksum`].
    pub fn insert_with_checksum(
        &self,
        key: EntryKey,
        data: impl Into<Arc<[T]>>,
        user_score: f64,
        checksum: Option<u64>,
    ) -> CacheInsertOutcome {
        self.lock(self.shard_for(&key))
            .insert_with_checksum(key, data, user_score, checksum)
    }

    /// Removes the entry for `key`, if resident. See [`Clampi::invalidate`].
    pub fn invalidate(&self, key: EntryKey) -> bool {
        self.lock(self.shard_for(&key)).invalidate(key)
    }

    /// Flushes every shard.
    pub fn flush(&self) {
        for shard in 0..self.shards.len() {
            self.lock(shard).flush();
        }
    }

    /// Signals the closure of an access epoch to every shard.
    /// See [`Clampi::end_epoch`].
    pub fn end_epoch(&self) {
        for shard in 0..self.shards.len() {
            self.lock(shard).end_epoch();
        }
    }

    /// Records one compressed row moving through the cache on the shard that
    /// owns `key` (`logical` decoded bytes stored as `stored` compressed
    /// bytes). See [`Clampi::record_compression`].
    pub fn record_compression(&self, key: &EntryKey, logical: u64, stored: u64) {
        self.lock(self.shard_for(key))
            .record_compression(logical, stored);
    }

    /// Statistics merged across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut merged = CacheStats::default();
        for shard in 0..self.shards.len() {
            merged.merge(self.lock(shard).stats());
        }
        merged
    }

    /// Per-shard statistics snapshots, in shard order (for spotting routing
    /// skew: a hot shard shows up as an outlier hit/eviction count).
    pub fn per_shard_stats(&self) -> Vec<CacheStats> {
        (0..self.shards.len())
            .map(|shard| self.lock(shard).stats().clone())
            .collect()
    }

    /// Total number of cached entries across shards.
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|s| self.lock(s).len()).sum()
    }

    /// Whether no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes occupied across shard buffers.
    pub fn occupied_bytes(&self) -> usize {
        (0..self.shards.len())
            .map(|s| self.lock(s).occupied_bytes())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmatc_rma::WindowId;

    fn key(offset: usize, len: usize) -> EntryKey {
        EntryKey::new(WindowId(0), 1, offset, len)
    }

    fn sharded(capacity: usize, slots: usize, shards: usize) -> ShardedClampi<u32> {
        ShardedClampi::new(ClampiConfig::always_cache(capacity, slots), shards)
    }

    #[test]
    fn single_shard_matches_plain_clampi_config() {
        let cfg = ClampiConfig::always_cache(1024, 64);
        let s: ShardedClampi<u32> = ShardedClampi::new(cfg, 1);
        assert_eq!(s.shard_count(), 1);
        let inner = s.lock(0);
        assert_eq!(inner.config().capacity_bytes, 1024);
        assert_eq!(inner.config().table_slots, 64);
    }

    #[test]
    fn budget_splits_across_shards_without_losing_slots() {
        let s = sharded(1024, 70, 4);
        assert_eq!(s.shard_count(), 4);
        let total_slots: usize = (0..4).map(|i| s.lock(i).config().table_slots).sum();
        assert!(
            total_slots >= 70,
            "div_ceil split must not shrink the table"
        );
        assert_eq!(s.lock(0).config().capacity_bytes, 256);
        // Zero shards clamps to one.
        let s = sharded(1024, 64, 0);
        assert_eq!(s.shard_count(), 1);
    }

    #[test]
    fn shard_routing_is_deterministic_and_spread() {
        let s = sharded(4096, 256, 8);
        let mut used = std::collections::HashSet::new();
        for off in 0..1000 {
            let k = key(off, 4);
            let shard = s.shard_for(&k);
            assert!(shard < 8);
            assert_eq!(shard, s.shard_for(&k));
            used.insert(shard);
        }
        assert_eq!(used.len(), 8, "1000 keys should touch every shard");
    }

    #[test]
    fn miss_then_hit_through_shards() {
        let s = sharded(4096, 256, 4);
        assert!(s.lookup(key(0, 4)).is_none());
        assert_eq!(
            s.insert(key(0, 4), vec![1, 2, 3, 4], 0.0),
            CacheInsertOutcome::Inserted
        );
        assert_eq!(*s.lookup(key(0, 4)).unwrap(), vec![1, 2, 3, 4]);
        let stats = s.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.occupied_bytes(), 16);
    }

    #[test]
    fn stats_merge_across_shards() {
        let s = sharded(4096, 256, 4);
        for off in 0..32 {
            let k = key(off * 4, 4);
            assert!(s.lookup(k).is_none());
            s.insert(k, vec![0u32; 4], 0.0);
            assert!(s.lookup(k).is_some());
        }
        let merged = s.stats();
        assert_eq!(merged.hits, 32);
        assert_eq!(merged.misses, 32);
        let per_shard = s.per_shard_stats();
        assert_eq!(per_shard.len(), 4);
        assert_eq!(per_shard.iter().map(|st| st.hits).sum::<u64>(), 32);
        assert!(
            per_shard.iter().filter(|st| st.lookups() > 0).count() > 1,
            "32 keys should not all route to one shard"
        );
    }

    #[test]
    fn flush_and_invalidate_reach_the_right_shards() {
        let s = sharded(4096, 256, 4);
        for off in 0..16 {
            s.insert(key(off * 4, 4), vec![0u32; 4], 0.0);
        }
        assert!(s.invalidate(key(0, 4)));
        assert!(!s.invalidate(key(0, 4)));
        assert_eq!(s.len(), 15);
        s.flush();
        assert!(s.is_empty());
        assert_eq!(s.occupied_bytes(), 0);
        assert_eq!(s.stats().flushes, 4, "every shard flushed once");
    }

    #[test]
    fn checksums_roundtrip_through_shards() {
        let s = sharded(4096, 256, 2);
        s.insert_with_checksum(key(0, 2), vec![1, 2], 0.0, Some(0xfeed));
        assert_eq!(
            s.lookup_entry(key(0, 2)),
            Some((Arc::from(vec![1u32, 2]), Some(0xfeed)))
        );
    }

    #[test]
    fn policy_kind_threads_through_every_shard() {
        let cfg = ClampiConfig::always_cache(4096, 256).with_policy(EvictionPolicyKind::Gdsf);
        let s: ShardedClampi<u32> = ShardedClampi::new(cfg, 4);
        assert_eq!(s.policy_kind(), EvictionPolicyKind::Gdsf);
        for i in 0..4 {
            assert_eq!(s.lock(i).policy_kind(), EvictionPolicyKind::Gdsf);
        }
    }

    #[test]
    fn concurrent_readers_and_writers_smoke() {
        let s = std::sync::Arc::new(sharded(1 << 16, 1024, 8));
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    for i in 0..200usize {
                        let k = key((t * 1000 + i) * 4, 4);
                        if s.lookup(k).is_none() {
                            s.insert(k, vec![t as u32; 4], 0.0);
                        }
                        assert!(s.lookup(k).is_some() || s.stats().evictions() > 0);
                    }
                });
            }
        });
        let stats = s.stats();
        assert_eq!(stats.lookups(), 4 * 200 * 2);
        assert!(!s.is_empty());
    }
}
