//! The CLaMPI cache proper: slot-indexed variable-size entries over a managed memory
//! buffer, with pluggable victim selection (see [`crate::policy`]) and optional
//! adaptive resizing.

use crate::adaptive::{AdaptiveAction, AdaptiveState};
use crate::config::{ClampiConfig, ConsistencyMode};
use crate::entry::{Entry, EntryKey};
use crate::freelist::FreeList;
use crate::policy::{EntryView, EvictionPolicy, EvictionPolicyKind, PolicyContext};
use crate::stats::CacheStats;
use std::collections::HashSet;
use std::sync::Arc;

/// Result of trying to insert a missed region into the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheInsertOutcome {
    /// The entry was stored without evicting anything.
    Inserted,
    /// The entry was stored after evicting this many victims.
    InsertedAfterEvicting(usize),
    /// The entry could not be stored (larger than the whole buffer, or eviction
    /// could not make room).
    NotCached,
}

/// Number of hash-table slots probed per key (set associativity). A purely
/// direct-mapped index evicts on every collision even when the table is sized to
/// the expected entry count; a small probe sequence removes those artificial
/// conflict evictions, matching the behaviour the paper relies on when it sizes
/// the hash tables (Section III-B1).
const WAYS: usize = 4;

/// One CLaMPI cache instance: in the paper there are two per rank, `C_offsets` over
/// the offsets window and `C_adj` over the adjacencies window.
#[derive(Debug)]
pub struct Clampi<T> {
    config: ClampiConfig,
    /// Hash-table slots; each occupied slot owns its entry, as in CLaMPI where the
    /// hash table indexes the cached regions directly.
    slots: Vec<Option<Entry<T>>>,
    freelist: FreeList,
    clock: u64,
    stats: CacheStats,
    /// Keys ever requested, for compulsory-miss accounting.
    seen: HashSet<EntryKey>,
    adaptive: AdaptiveState,
    occupied: usize,
    occupied_bytes: usize,
    max_user_score: f64,
    /// Deterministic internal RNG state for sampled victim selection.
    rng_state: u64,
    /// The active eviction policy, built from [`ClampiConfig::policy`]. Every
    /// victim score, admission decision and eviction notification goes
    /// through it; the default [`PaperScore`](crate::policy::PaperScore)
    /// reproduces the paper's behaviour bit-for-bit.
    policy: Box<dyn EvictionPolicy>,
}

impl<T: Clone> Clampi<T> {
    /// Creates a cache with the given configuration.
    pub fn new(config: ClampiConfig) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(config.table_slots.max(1), || None);
        Self {
            freelist: FreeList::new(config.capacity_bytes),
            slots,
            clock: 0,
            stats: CacheStats::default(),
            seen: HashSet::new(),
            adaptive: AdaptiveState::default(),
            occupied: 0,
            occupied_bytes: 0,
            max_user_score: 0.0,
            rng_state: 0x9e37_79b9_7f4a_7c15,
            policy: config.policy.build(),
            config,
        }
    }

    /// Which eviction-policy family this cache runs.
    pub fn policy_kind(&self) -> EvictionPolicyKind {
        self.policy.kind()
    }

    /// The active configuration (capacity and table size reflect adaptive resizes).
    pub fn config(&self) -> &ClampiConfig {
        &self.config
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Records one compressed row moving through this cache (`logical`
    /// decoded bytes stored as `stored` compressed bytes). The cache is
    /// format-agnostic, so the reader that knows the row encoding reports the
    /// sizes (see [`CacheStats::logical_bytes`]).
    pub fn record_compression(&mut self, logical: u64, stored: u64) {
        self.stats.record_compression(logical, stored);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.occupied
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Bytes currently occupied in the memory buffer.
    pub fn occupied_bytes(&self) -> usize {
        self.occupied_bytes
    }

    /// External fragmentation of the memory buffer, in `[0, 1]`.
    pub fn fragmentation(&self) -> f64 {
        self.freelist.fragmentation()
    }

    /// The probe sequence of a key: up to [`WAYS`] consecutive slots starting at its
    /// hash, returned in a fixed-size array (the lookup hot path must not allocate).
    fn probe_slots(&self, key: &EntryKey) -> ([usize; WAYS], usize) {
        let n = self.slots.len();
        let base = key.slot(n);
        let count = WAYS.min(n);
        let mut probes = [0usize; WAYS];
        for (i, probe) in probes.iter_mut().take(count).enumerate() {
            *probe = (base + i) % n;
        }
        (probes, count)
    }

    /// Looks up a region. On a hit the entry's recency is refreshed and its data is
    /// returned (a refcount bump — the hit path performs no heap allocation); on a
    /// miss the caller is expected to perform the real RMA get and then call
    /// [`Clampi::insert`].
    pub fn lookup(&mut self, key: EntryKey) -> Option<Arc<[T]>> {
        self.lookup_entry(key).map(|(data, _checksum)| data)
    }

    /// Like [`Clampi::lookup`], but also returns the integrity stamp recorded
    /// at insert time (if any) so the caller can verify the data before
    /// serving it — the hook of the self-healing cached read path.
    pub fn lookup_entry(&mut self, key: EntryKey) -> Option<(Arc<[T]>, Option<u64>)> {
        self.clock += 1;
        self.adaptive.record_access();
        let clock = self.clock;
        let mut hit = None;
        let (probes, ways) = self.probe_slots(&key);
        for &slot in &probes[..ways] {
            if let Some(entry) = &mut self.slots[slot] {
                if entry.key == key {
                    entry.last_access = clock;
                    entry.hits += 1;
                    let ctx = PolicyContext {
                        clock,
                        max_user_score: self.max_user_score,
                        config: &self.config,
                        freelist: &self.freelist,
                    };
                    entry.priority = self.policy.priority_on_hit(entry.view(), &ctx);
                    hit = Some((Arc::clone(&entry.data), entry.checksum));
                    break;
                }
            }
        }
        if let Some((data, _)) = &hit {
            self.stats.hits += 1;
            self.stats.bytes_from_cache += (data.len() * std::mem::size_of::<T>()) as u64;
        } else {
            self.stats.misses += 1;
            if self.seen.insert(key) {
                self.stats.compulsory_misses += 1;
            }
        }
        self.maybe_adapt();
        hit
    }

    /// Inserts data fetched after a miss. The shared buffer is retained as-is — an
    /// `Arc` refcount bump, never a payload copy — so callers hand the cache the
    /// very allocation the RMA transfer landed in (a `Vec` is also accepted for
    /// convenience and converted once). `user_score` is the application-defined
    /// score (the paper passes the out-degree of the vertex whose adjacency list was
    /// fetched); pass `0.0` when not using application scores.
    pub fn insert(
        &mut self,
        key: EntryKey,
        data: impl Into<Arc<[T]>>,
        user_score: f64,
    ) -> CacheInsertOutcome {
        self.insert_with_checksum(key, data, user_score, None)
    }

    /// Like [`Clampi::insert`], additionally recording an integrity stamp the
    /// caller computed over the clean transfer; later hits hand it back via
    /// [`Clampi::lookup_entry`] for verification. `None` (the fault-free path)
    /// disables verification for this entry.
    pub fn insert_with_checksum(
        &mut self,
        key: EntryKey,
        data: impl Into<Arc<[T]>>,
        user_score: f64,
        checksum: Option<u64>,
    ) -> CacheInsertOutcome {
        let data: Arc<[T]> = data.into();
        let bytes = data.len() * std::mem::size_of::<T>();
        self.stats.bytes_from_network += bytes as u64;
        if bytes > self.freelist.capacity() {
            self.stats.uncacheable += 1;
            return CacheInsertOutcome::NotCached;
        }
        self.max_user_score = self.max_user_score.max(user_score);
        let mut evicted = 0usize;
        // Index handling: within the key's probe sequence, reuse the slot holding the
        // same key, else take an empty slot, else this is a hash conflict and CLaMPI's
        // eviction procedure picks a victim among the residents of the set.
        let (probes, ways) = self.probe_slots(&key);
        let probes = &probes[..ways];
        let mut slot = None;
        for &s in probes {
            match &self.slots[s] {
                Some(resident) if resident.key == key => {
                    // Re-inserting an already-cached key (e.g. after a racing fetch):
                    // refresh the data in place. The refresh counts as an access for
                    // frequency-aware policies.
                    let resident = self.slots[s].as_mut().expect("checked above");
                    resident.data = data;
                    resident.last_access = self.clock;
                    resident.user_score = user_score;
                    resident.checksum = checksum;
                    resident.hits += 1;
                    let ctx = PolicyContext {
                        clock: self.clock,
                        max_user_score: self.max_user_score,
                        config: &self.config,
                        freelist: &self.freelist,
                    };
                    resident.priority = self.policy.priority_on_hit(resident.view(), &ctx);
                    return CacheInsertOutcome::Inserted;
                }
                None if slot.is_none() => slot = Some(s),
                _ => {}
            }
        }
        let slot = match slot {
            Some(s) => s,
            None => {
                // Every slot of the set is occupied by a different key: conflict.
                let victim = probes
                    .iter()
                    .copied()
                    .max_by(|&a, &b| {
                        let sa = self.victim_score(self.slots[a].as_ref().expect("occupied"));
                        let sb = self.victim_score(self.slots[b].as_ref().expect("occupied"));
                        sa.partial_cmp(&sb).expect("scores are not NaN")
                    })
                    .expect("probe sequence is never empty");
                self.evict_chosen_victim(victim);
                self.stats.conflict_evictions += 1;
                self.adaptive.record_conflict();
                evicted += 1;
                victim
            }
        };
        // Space handling: evict until a contiguous region of `bytes` is available.
        let addr = loop {
            if let Some(addr) = self.freelist.allocate(bytes) {
                break addr;
            }
            match self.pick_victim_slot(slot) {
                Some(victim_slot) => {
                    // Admission control: the policy may refuse to displace the
                    // prospective victim (PaperScore under application-defined
                    // scores rejects entries scoring below the victim, to "avoid
                    // storing a high number of low-degree vertices" instead of
                    // churning the cache).
                    let victim_view = self.slots[victim_slot]
                        .as_ref()
                        .map(|e| e.view())
                        .expect("pick_victim_slot only returns occupied slots");
                    let ctx = PolicyContext {
                        clock: self.clock,
                        max_user_score: self.max_user_score,
                        config: &self.config,
                        freelist: &self.freelist,
                    };
                    if !self.policy.admits(user_score, bytes, victim_view, &ctx) {
                        self.stats.uncacheable += 1;
                        self.stats.admission_rejections += 1;
                        return CacheInsertOutcome::NotCached;
                    }
                    self.evict_chosen_victim(victim_slot);
                    self.stats.capacity_evictions += 1;
                    self.adaptive.record_space_eviction();
                    evicted += 1;
                }
                None => {
                    self.stats.uncacheable += 1;
                    return CacheInsertOutcome::NotCached;
                }
            }
        };
        let view = EntryView {
            bytes,
            addr,
            last_access: self.clock,
            user_score,
            hits: 1,
            priority: 0.0,
        };
        let ctx = PolicyContext {
            clock: self.clock,
            max_user_score: self.max_user_score,
            config: &self.config,
            freelist: &self.freelist,
        };
        let priority = self.policy.priority_on_insert(view, &ctx);
        self.slots[slot] = Some(Entry {
            key,
            data,
            addr,
            bytes,
            last_access: self.clock,
            user_score,
            slot,
            checksum,
            hits: 1,
            priority,
        });
        self.occupied += 1;
        self.occupied_bytes += bytes;
        if evicted == 0 {
            CacheInsertOutcome::Inserted
        } else {
            CacheInsertOutcome::InsertedAfterEvicting(evicted)
        }
    }

    /// Removes the entry for `key`, if resident, counting an invalidation.
    /// Used by the self-healing read path when a hit fails checksum
    /// verification: the rotten entry is dropped so the next read refetches.
    /// Returns whether an entry was removed.
    pub fn invalidate(&mut self, key: EntryKey) -> bool {
        let (probes, ways) = self.probe_slots(&key);
        for &slot in &probes[..ways] {
            if self.slots[slot].as_ref().is_some_and(|e| e.key == key) {
                self.evict_slot(slot);
                self.stats.invalidations += 1;
                return true;
            }
        }
        false
    }

    /// Removes every entry (the cache flush CLaMPI performs at epoch closures in
    /// transparent mode, on hash-table resizes, or on user request).
    pub fn flush(&mut self) {
        for slot in 0..self.slots.len() {
            if self.slots[slot].is_some() {
                self.evict_slot(slot);
            }
        }
        self.policy.on_flush();
        self.stats.flushes += 1;
    }

    /// Signals the closure of an access epoch. In `Transparent` mode this flushes the
    /// cache; in the other modes it is a no-op.
    pub fn end_epoch(&mut self) {
        if self.config.mode == ConsistencyMode::Transparent {
            self.flush();
        }
    }

    /// Victim score of an entry, as judged by the active policy: larger means
    /// more evictable.
    fn victim_score(&self, entry: &Entry<T>) -> f64 {
        let ctx = PolicyContext {
            clock: self.clock,
            max_user_score: self.max_user_score,
            config: &self.config,
            freelist: &self.freelist,
        };
        self.policy.victim_score(entry.view(), &ctx)
    }

    /// Chooses a victim among occupied slots, excluding `protect` (the slot about to
    /// receive the new entry). CLaMPI scans its index for the best victim; at the
    /// scale of the LCC experiments an exhaustive scan per eviction is too slow, so
    /// we sample a bounded number of occupied slots and evict the best-scoring one —
    /// the standard approximation of weighted-LRU victim selection.
    fn pick_victim_slot(&mut self, protect: usize) -> Option<usize> {
        if self.occupied == 0 || (self.occupied == 1 && self.slots[protect].is_some()) {
            return None;
        }
        const SAMPLES: usize = 16;
        let nslots = self.slots.len();
        let mut best: Option<(usize, f64)> = None;
        let mut inspected = 0usize;
        let mut attempts = 0usize;
        // Bounded sampling: at most 16 occupied candidates or 8·slots probes.
        while inspected < SAMPLES && attempts < nslots.saturating_mul(8).max(64) {
            attempts += 1;
            let idx = self.next_random() % nslots;
            if idx == protect {
                continue;
            }
            if let Some(entry) = &self.slots[idx] {
                inspected += 1;
                let score = self.victim_score(entry);
                if best.map(|(_, s)| score > s).unwrap_or(true) {
                    best = Some((idx, score));
                }
            }
        }
        if best.is_none() {
            // Sampling failed (extremely sparse occupancy); fall back to a scan.
            for idx in 0..nslots {
                if idx == protect {
                    continue;
                }
                if let Some(entry) = &self.slots[idx] {
                    let score = self.victim_score(entry);
                    if best.map(|(_, s)| score > s).unwrap_or(true) {
                        best = Some((idx, score));
                    }
                }
            }
        }
        best.map(|(idx, _)| idx)
    }

    /// Evicts a slot the policy *chose* (conflict or capacity victim): the
    /// policy is notified and the freed bytes are attributed to it. Flushes
    /// and invalidations are not victim selections and go through
    /// [`Clampi::evict_slot`] directly.
    fn evict_chosen_victim(&mut self, slot: usize) {
        if let Some(entry) = &self.slots[slot] {
            let view = entry.view();
            self.stats.evicted_bytes += view.bytes as u64;
            self.policy.on_evict(view);
        }
        self.evict_slot(slot);
    }

    fn evict_slot(&mut self, slot: usize) {
        if let Some(entry) = self.slots[slot].take() {
            self.freelist.free(entry.addr, entry.bytes);
            self.occupied -= 1;
            self.occupied_bytes -= entry.bytes;
        }
    }

    fn maybe_adapt(&mut self) {
        let Some(adaptive_cfg) = self.config.adaptive else {
            return;
        };
        let action =
            self.adaptive
                .decide(&adaptive_cfg, self.slots.len(), self.freelist.capacity());
        match action {
            Some(AdaptiveAction::GrowTable { new_slots }) => {
                // Growing the hash table invalidates slot assignments: flush, as the
                // real CLaMPI does.
                self.flush();
                self.slots = Vec::new();
                self.slots.resize_with(new_slots, || None);
                self.config.table_slots = new_slots;
                self.stats.table_resizes += 1;
            }
            Some(AdaptiveAction::GrowCapacity { new_capacity }) => {
                self.freelist.grow(new_capacity);
                self.config.capacity_bytes = new_capacity;
                self.stats.capacity_resizes += 1;
            }
            None => {}
        }
    }

    /// Fault injection: replaces the resident entry's data for `key` with a
    /// byte-flipped copy (the stamp recorded at insert time is left alone, so
    /// verification will catch the rot). The shared buffer handed out to
    /// earlier readers is never mutated — corruption builds a fresh `Arc`.
    /// Returns whether a non-empty entry was corrupted.
    pub fn corrupt_entry(&mut self, key: EntryKey, salt: u64) -> bool
    where
        T: Copy,
    {
        let (probes, ways) = self.probe_slots(&key);
        for &slot in &probes[..ways] {
            if let Some(entry) = &mut self.slots[slot] {
                if entry.key == key && !entry.data.is_empty() {
                    entry.data = rmatc_rma::fault::corrupt_copy(&entry.data, salt);
                    return true;
                }
            }
        }
        false
    }

    /// xorshift64* — deterministic, cheap, good enough for victim sampling.
    fn next_random(&mut self) -> usize {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmatc_rma::WindowId;

    fn key(offset: usize, len: usize) -> EntryKey {
        EntryKey::new(WindowId(0), 1, offset, len)
    }

    fn cache(capacity: usize, slots: usize) -> Clampi<u32> {
        Clampi::new(ClampiConfig::always_cache(capacity, slots))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache(1024, 64);
        assert!(c.lookup(key(0, 4)).is_none());
        assert_eq!(
            c.insert(key(0, 4), vec![1, 2, 3, 4], 0.0),
            CacheInsertOutcome::Inserted
        );
        let hit = c.lookup(key(0, 4)).expect("must hit after insert");
        assert_eq!(*hit, vec![1, 2, 3, 4]);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().compulsory_misses, 1);
    }

    #[test]
    fn different_regions_do_not_alias() {
        let mut c = cache(1024, 64);
        c.insert(key(0, 2), vec![1, 2], 0.0);
        c.insert(key(2, 2), vec![3, 4], 0.0);
        assert_eq!(*c.lookup(key(0, 2)).unwrap(), vec![1, 2]);
        assert_eq!(*c.lookup(key(2, 2)).unwrap(), vec![3, 4]);
        assert!(
            c.lookup(key(0, 4)).is_none(),
            "a different length is a different region"
        );
    }

    #[test]
    fn compulsory_misses_counted_once_per_key() {
        let mut c = cache(16, 4);
        for _ in 0..3 {
            let _ = c.lookup(key(0, 2));
        }
        assert_eq!(c.stats().misses, 3);
        assert_eq!(c.stats().compulsory_misses, 1);
    }

    #[test]
    fn entry_larger_than_buffer_is_uncacheable() {
        let mut c = cache(8, 4);
        assert_eq!(
            c.insert(key(0, 100), vec![0u32; 100], 0.0),
            CacheInsertOutcome::NotCached
        );
        assert_eq!(c.stats().uncacheable, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_pressure_evicts_old_entries() {
        // Buffer fits exactly two 4-element (16-byte) entries.
        let mut c = cache(32, 64);
        c.insert(key(0, 4), vec![0; 4], 0.0);
        c.insert(key(4, 4), vec![1; 4], 0.0);
        assert_eq!(c.len(), 2);
        let outcome = c.insert(key(8, 4), vec![2; 4], 0.0);
        assert!(matches!(
            outcome,
            CacheInsertOutcome::InsertedAfterEvicting(_)
        ));
        assert_eq!(c.len(), 2);
        assert!(c.stats().capacity_evictions >= 1);
        assert_eq!(c.occupied_bytes(), 32);
    }

    #[test]
    fn lru_prefers_evicting_stale_entries() {
        let mut c = cache(32, 64);
        c.insert(key(0, 4), vec![0; 4], 0.0);
        c.insert(key(4, 4), vec![1; 4], 0.0);
        // Touch the first entry many times so the second is the LRU victim.
        for _ in 0..50 {
            assert!(c.lookup(key(0, 4)).is_some());
        }
        c.insert(key(8, 4), vec![2; 4], 0.0);
        assert!(c.lookup(key(0, 4)).is_some(), "hot entry should survive");
    }

    #[test]
    fn application_scores_protect_high_degree_entries() {
        let cfg = ClampiConfig::always_cache(32, 64).with_application_scores();
        let mut c: Clampi<u32> = Clampi::new(cfg);
        // Entry with a high application score (a high-degree vertex)...
        c.insert(key(0, 4), vec![0; 4], 1_000.0);
        // ...and one with a low score, accessed more recently.
        c.insert(key(4, 4), vec![1; 4], 1.0);
        let _ = c.lookup(key(4, 4));
        // Under plain LRU the high-score entry would be the victim; with application
        // scores the low-score entry goes instead.
        c.insert(key(8, 4), vec![2; 4], 1.0);
        assert!(
            c.lookup(key(0, 4)).is_some(),
            "high-score entry must be protected"
        );
    }

    #[test]
    fn application_scores_reject_low_value_entries_when_full() {
        let cfg = ClampiConfig::always_cache(32, 64).with_application_scores();
        let mut c: Clampi<u32> = Clampi::new(cfg);
        // Fill the buffer with two high-score (high-degree) entries.
        c.insert(key(0, 4), vec![0; 4], 500.0);
        c.insert(key(4, 4), vec![1; 4], 400.0);
        // A low-degree entry should not displace them (admission control)...
        assert_eq!(
            c.insert(key(8, 4), vec![2; 4], 3.0),
            CacheInsertOutcome::NotCached
        );
        assert!(c.lookup(key(0, 4)).is_some());
        assert!(c.lookup(key(4, 4)).is_some());
        // ...but a higher-degree entry still evicts its way in.
        let outcome = c.insert(key(12, 4), vec![3; 4], 900.0);
        assert!(matches!(
            outcome,
            CacheInsertOutcome::InsertedAfterEvicting(_)
        ));
        assert!(c.lookup(key(12, 4)).is_some());
    }

    #[test]
    fn admission_rejections_are_counted_separately() {
        let cfg = ClampiConfig::always_cache(32, 64).with_application_scores();
        let mut c: Clampi<u32> = Clampi::new(cfg);
        c.insert(key(0, 4), vec![0; 4], 500.0);
        c.insert(key(4, 4), vec![1; 4], 400.0);
        assert_eq!(
            c.insert(key(8, 4), vec![2; 4], 3.0),
            CacheInsertOutcome::NotCached
        );
        assert_eq!(c.stats().admission_rejections, 1);
        assert_eq!(c.stats().uncacheable, 1);
        // An entry larger than the whole buffer is uncacheable but not an
        // admission rejection — no victim was ever consulted.
        let _ = c.insert(key(50, 100), vec![0u32; 100], 900.0);
        assert_eq!(c.stats().admission_rejections, 1);
        assert_eq!(c.stats().uncacheable, 2);
    }

    #[test]
    fn evicted_bytes_attributed_to_policy_victims_only() {
        let mut c = cache(32, 64);
        c.insert(key(0, 4), vec![0; 4], 0.0); // 16 B
        c.insert(key(4, 4), vec![1; 4], 0.0); // 16 B
        c.insert(key(8, 4), vec![2; 4], 0.0); // evicts one 16 B victim
        assert_eq!(c.stats().evicted_bytes, 16);
        // Flush frees everything but chose no victims: counter unchanged.
        c.flush();
        assert_eq!(c.stats().evicted_bytes, 16);
        // Invalidation likewise.
        c.insert(key(12, 4), vec![3; 4], 0.0);
        assert!(c.invalidate(key(12, 4)));
        assert_eq!(c.stats().evicted_bytes, 16);
    }

    #[test]
    fn lfu_policy_protects_frequent_entries_over_recent_ones() {
        let cfg = ClampiConfig::always_cache(32, 64).with_policy(EvictionPolicyKind::Lfu);
        let mut c: Clampi<u32> = Clampi::new(cfg);
        assert_eq!(c.policy_kind(), EvictionPolicyKind::Lfu);
        c.insert(key(0, 4), vec![0; 4], 0.0);
        c.insert(key(4, 4), vec![1; 4], 0.0);
        // Make the first entry frequent, then touch the second once so it is
        // the more *recent* one: LFU must still evict it.
        for _ in 0..10 {
            assert!(c.lookup(key(0, 4)).is_some());
        }
        assert!(c.lookup(key(4, 4)).is_some());
        c.insert(key(8, 4), vec![2; 4], 0.0);
        assert!(c.lookup(key(0, 4)).is_some(), "frequent entry must survive");
    }

    #[test]
    fn gdsf_policy_prefers_keeping_small_frequent_entries() {
        // Buffer fits one 24-element entry or several 2-element ones.
        let cfg = ClampiConfig::always_cache(96, 64).with_policy(EvictionPolicyKind::Gdsf);
        let mut c: Clampi<u32> = Clampi::new(cfg);
        assert_eq!(c.policy_kind(), EvictionPolicyKind::Gdsf);
        // Two small entries, re-hit to earn priority.
        c.insert(key(0, 2), vec![0; 2], 0.0);
        c.insert(key(2, 2), vec![1; 2], 0.0);
        for _ in 0..5 {
            assert!(c.lookup(key(0, 2)).is_some());
            assert!(c.lookup(key(2, 2)).is_some());
        }
        // One big cold entry fills most of the buffer...
        c.insert(key(100, 20), vec![9; 20], 0.0);
        // ...and a new entry forces an eviction: the big cold entry must go.
        c.insert(key(200, 2), vec![7; 2], 0.0);
        assert!(c.lookup(key(0, 2)).is_some(), "small hot entries survive");
        assert!(c.lookup(key(2, 2)).is_some(), "small hot entries survive");
        assert!(c.lookup(key(100, 20)).is_none(), "big cold entry evicted");
    }

    #[test]
    fn conflict_on_same_slot_evicts_resident() {
        // A single-slot table forces every distinct key to conflict.
        let mut c = cache(1024, 1);
        c.insert(key(0, 2), vec![1, 2], 0.0);
        c.insert(key(100, 2), vec![3, 4], 0.0);
        assert_eq!(c.stats().conflict_evictions, 1);
        assert_eq!(c.len(), 1);
        assert!(c.lookup(key(0, 2)).is_none());
        assert_eq!(*c.lookup(key(100, 2)).unwrap(), vec![3, 4]);
    }

    #[test]
    fn reinserting_same_key_refreshes_data() {
        let mut c = cache(1024, 16);
        c.insert(key(0, 2), vec![1, 2], 0.0);
        assert_eq!(
            c.insert(key(0, 2), vec![9, 9], 5.0),
            CacheInsertOutcome::Inserted
        );
        assert_eq!(c.len(), 1);
        assert_eq!(*c.lookup(key(0, 2)).unwrap(), vec![9, 9]);
    }

    #[test]
    fn flush_empties_the_cache_and_counts() {
        let mut c = cache(1024, 16);
        c.insert(key(0, 2), vec![1, 2], 0.0);
        c.insert(key(2, 2), vec![3, 4], 0.0);
        c.flush();
        assert!(c.is_empty());
        assert_eq!(c.occupied_bytes(), 0);
        assert_eq!(c.stats().flushes, 1);
        assert!(c.lookup(key(0, 2)).is_none());
    }

    #[test]
    fn transparent_mode_flushes_on_epoch_end() {
        let cfg = ClampiConfig {
            mode: ConsistencyMode::Transparent,
            ..ClampiConfig::always_cache(1024, 16)
        };
        let mut c: Clampi<u32> = Clampi::new(cfg);
        c.insert(key(0, 2), vec![1, 2], 0.0);
        c.end_epoch();
        assert!(c.is_empty());

        let mut always: Clampi<u32> = Clampi::new(ClampiConfig::always_cache(1024, 16));
        always.insert(key(0, 2), vec![1, 2], 0.0);
        always.end_epoch();
        assert_eq!(
            always.len(),
            1,
            "always-cache mode must persist across epochs"
        );
    }

    #[test]
    fn adaptive_grows_table_under_conflicts() {
        let mut cfg = ClampiConfig::always_cache(4096, 2).with_adaptive();
        cfg.adaptive.as_mut().unwrap().interval = 32;
        cfg.adaptive.as_mut().unwrap().conflict_threshold = 0.05;
        let mut c: Clampi<u32> = Clampi::new(cfg);
        // Many distinct keys over a 2-slot table: constant conflicts.
        for i in 0..200usize {
            let k = key(i * 2, 2);
            if c.lookup(k).is_none() {
                c.insert(k, vec![i as u32; 2], 0.0);
            }
        }
        assert!(c.stats().table_resizes >= 1, "table should have grown");
        assert!(c.config().table_slots > 2);
        assert!(c.stats().flushes >= 1, "growing the table must flush");
    }

    #[test]
    fn adaptive_grows_capacity_under_space_pressure() {
        let mut cfg = ClampiConfig::always_cache(64, 256).with_adaptive();
        let a = cfg.adaptive.as_mut().unwrap();
        a.interval = 64;
        a.eviction_threshold = 0.2;
        a.max_capacity_bytes = 1024;
        let mut c: Clampi<u32> = Clampi::new(cfg);
        for i in 0..300usize {
            let k = key(i * 4, 4);
            if c.lookup(k).is_none() {
                c.insert(k, vec![0u32; 4], 0.0);
            }
        }
        assert!(c.stats().capacity_resizes >= 1);
        assert!(c.config().capacity_bytes > 64);
        assert!(c.config().capacity_bytes <= 1024);
    }

    #[test]
    fn hit_and_network_bytes_are_tracked() {
        let mut c = cache(1024, 16);
        let _ = c.lookup(key(0, 4));
        c.insert(key(0, 4), vec![1, 2, 3, 4], 0.0);
        let _ = c.lookup(key(0, 4));
        assert_eq!(c.stats().bytes_from_network, 16);
        assert_eq!(c.stats().bytes_from_cache, 16);
    }

    #[test]
    fn checksummed_inserts_roundtrip_their_stamp() {
        let mut c = cache(1024, 16);
        c.insert_with_checksum(key(0, 2), vec![1, 2], 0.0, Some(0xfeed));
        c.insert(key(2, 2), vec![3, 4], 0.0);
        assert_eq!(
            c.lookup_entry(key(0, 2)),
            Some((Arc::from(vec![1u32, 2]), Some(0xfeed)))
        );
        assert_eq!(
            c.lookup_entry(key(2, 2)),
            Some((Arc::from(vec![3u32, 4]), None))
        );
        assert!(c.lookup_entry(key(4, 2)).is_none());
    }

    #[test]
    fn invalidate_removes_the_entry_and_counts() {
        let mut c = cache(1024, 16);
        c.insert(key(0, 2), vec![1, 2], 0.0);
        assert!(c.invalidate(key(0, 2)));
        assert!(!c.invalidate(key(0, 2)), "already gone");
        assert!(c.is_empty());
        assert_eq!(c.occupied_bytes(), 0);
        assert_eq!(c.stats().invalidations, 1);
        assert!(c.lookup(key(0, 2)).is_none());
    }

    #[test]
    fn corrupt_entry_replaces_data_without_mutating_shared_buffers() {
        let mut c = cache(1024, 16);
        let stamp = rmatc_rma::fault::checksum(&[1u32, 2]);
        c.insert_with_checksum(key(0, 2), vec![1, 2], 0.0, Some(stamp));
        let before = c.lookup(key(0, 2)).expect("resident");
        assert!(c.corrupt_entry(key(0, 2), 99));
        let (after, checksum) = c.lookup_entry(key(0, 2)).expect("still resident");
        assert!(!Arc::ptr_eq(&before, &after), "corruption must not alias");
        assert_eq!(&*before, &[1, 2], "handed-out buffers stay clean");
        assert_ne!(&*after, &[1, 2]);
        assert_eq!(checksum, Some(stamp), "the stamp stays, exposing the rot");
        assert_ne!(rmatc_rma::fault::checksum(&after), stamp);
        assert!(!c.corrupt_entry(key(50, 2), 1), "absent keys are a no-op");
    }

    #[test]
    fn eviction_loop_handles_fragmentation() {
        // Buffer of 40 bytes; insert 8-byte and 12-byte entries to fragment it, then
        // require a 24-byte entry which only fits after multiple evictions.
        let mut c = cache(40, 64);
        c.insert(key(0, 2), vec![0; 2], 0.0); // 8 B
        c.insert(key(10, 3), vec![0; 3], 0.0); // 12 B
        c.insert(key(20, 2), vec![0; 2], 0.0); // 8 B
        c.insert(key(30, 1), vec![0; 1], 0.0); // 4 B
        let outcome = c.insert(key(40, 6), vec![0; 6], 0.0); // 24 B
        assert!(matches!(
            outcome,
            CacheInsertOutcome::InsertedAfterEvicting(_)
        ));
        assert!(c.lookup(key(40, 6)).is_some());
        assert!(c.occupied_bytes() <= 40);
    }
}
