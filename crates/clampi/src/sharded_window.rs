//! Concurrent get interception: the [`crate::CachedWindow`] logic behind
//! `&self` methods over a lock-sharded [`ShardedClampi`], so the worker
//! threads of a multi-threaded rank intercept gets through *one* shared cache
//! instead of thrashing private ones.
//!
//! Two read styles are offered:
//!
//! * **Synchronous** ([`ShardedCachedWindow::get_scored`] /
//!   [`ShardedCachedWindow::get_fused`]) — the full lookup → fetch → insert
//!   round with the key's shard held across all three steps, so concurrent
//!   misses on the *same* key coalesce: the second thread blocks on the shard
//!   mutex and then finds a hit instead of fetching twice. Keys on other
//!   shards proceed in parallel throughout.
//! * **Split** ([`ShardedCachedWindow::probe`] +
//!   [`ShardedCachedWindow::admit`]) — the software-pipelined worker's path:
//!   probe at issue time, keep the get in flight while computing, insert at
//!   completion. No shard is held while a get is in flight.
//!
//! Quarantine state (corruption counter + degraded flag) is atomic and
//! cache-global, mirroring the single-threaded wrapper's semantics: after
//! [`crate::ClampiConfig::quarantine_threshold`] hit-verification failures
//! every read bypasses the cache over the plain RMA path. With one shard and
//! one thread, every decision and statistic matches [`crate::CachedWindow`]
//! bit for bit (the shard split is the identity, proved by the equivalence
//! proptests).

use crate::cache::Clampi;
use crate::config::ClampiConfig;
use crate::entry::EntryKey;
use crate::row::RowRef;
use crate::sharded::ShardedClampi;
use crate::stats::CacheStats;
use rmatc_rma::fault;
use rmatc_rma::{Endpoint, RmaError, Window};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

/// Outcome of a pipelined cache probe (the issue-time half of a split read).
#[derive(Debug)]
pub enum CacheProbe<T> {
    /// Served from the cache (verified when faults are enabled); the hit has
    /// been recorded on the endpoint.
    Hit(Arc<[T]>),
    /// Not resident: the caller should issue the get and
    /// [`ShardedCachedWindow::admit`] the landed buffer at completion.
    Miss,
    /// The cache is quarantined: the caller should issue the get over the
    /// plain path and must *not* admit the result. The bypass has been
    /// counted.
    Bypass,
}

/// A concurrent caching wrapper around an RMA [`Window`], shared by every
/// worker thread of one rank (`&self` methods; each thread brings its own
/// [`Endpoint`]).
#[derive(Debug)]
pub struct ShardedCachedWindow<T> {
    window: Window<T>,
    cache: ShardedClampi<T>,
    /// Checksum-verification failures observed on hits so far (cache-global,
    /// like the single-threaded wrapper's counter).
    corruptions: AtomicU32,
    /// Degraded mode: the cache is no longer consulted or filled.
    quarantined: AtomicBool,
}

/// What a shard-held lookup decided; drives the post-lock steps.
enum Looked<R> {
    Done(Result<R, RmaError>),
    /// Verification tripped the quarantine threshold: flush (outside the
    /// lock — flushing all shards from under one shard's lock would
    /// self-deadlock) and take the bypass path.
    NewlyQuarantined,
    /// Probe-only: not resident (or invalidated without quarantining).
    ProbeMiss,
}

impl<T: Copy + Send + Sync> ShardedCachedWindow<T> {
    /// Wraps `window` with a cache configured by `config`, split over
    /// `shards` independently locked shards (clamped to ≥ 1; see
    /// [`ShardedClampi::new`] for the budget split).
    pub fn new(window: Window<T>, config: ClampiConfig, shards: usize) -> Self {
        Self {
            window,
            cache: ShardedClampi::new(config, shards),
            corruptions: AtomicU32::new(0),
            quarantined: AtomicBool::new(false),
        }
    }

    /// The underlying window.
    pub fn window(&self) -> &Window<T> {
        &self.window
    }

    /// The sharded cache itself (for inspection in tests and reports).
    pub fn cache(&self) -> &ShardedClampi<T> {
        &self.cache
    }

    /// Statistics merged across all shards.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Whether the cache has been quarantined after repeated corruption
    /// (every read now takes the plain, non-cached RMA path).
    pub fn quarantined(&self) -> bool {
        self.quarantined.load(Ordering::Acquire)
    }

    /// The cache key of a `(target, offset, len)` region on this window.
    fn key_for(&self, target: usize, offset: usize, len: usize) -> EntryKey {
        EntryKey::new(self.window.id(), target, offset, len)
    }

    /// Concurrent equivalent of [`crate::CachedWindow::get_scored`]: resolves
    /// a read through the cache with the key's shard held across
    /// lookup → fetch → insert, so concurrent same-key misses coalesce into
    /// one fetch.
    ///
    /// # Errors
    ///
    /// [`RmaError::RetriesExhausted`] when a miss's network read failed every
    /// attempt allowed by the endpoint's retry policy.
    pub fn get_scored(
        &self,
        ep: &mut Endpoint,
        target: usize,
        offset: usize,
        len: usize,
        score: f64,
    ) -> Result<RowRef<'_, T>, RmaError> {
        if target == ep.rank() {
            return Ok(RowRef::Window(ep.local_read(&self.window, offset, len)));
        }
        let key = self.key_for(target, offset, len);
        if !self.quarantined() {
            let looked = self.cache.with_shard(&key, |shard| {
                if let Some(salt) = ep.fault_roll_cache_corrupt() {
                    shard.corrupt_entry(key, salt);
                }
                if let Some((data, stored)) = shard.lookup_entry(key) {
                    if self.verify_hit_locked(ep, shard, key, &data, stored) {
                        ep.record_cache_hit(len * std::mem::size_of::<T>());
                        return Looked::Done(Ok(RowRef::Cached(data)));
                    }
                    if self.quarantined() {
                        return Looked::NewlyQuarantined;
                    }
                    // Invalidated without quarantining: refetch below, still
                    // holding the shard.
                }
                // Miss: fetch with the shard held, so a concurrent same-key
                // miss waits on the mutex and then finds a hit.
                match ep.get_with_retry(&self.window, target, offset, len) {
                    Ok(arc) => {
                        self.admit_locked(ep, shard, key, Arc::clone(&arc), score);
                        Looked::Done(Ok(RowRef::Fetched(arc)))
                    }
                    Err(e) => Looked::Done(Err(e)),
                }
            });
            match looked {
                Looked::Done(done) => return done,
                Looked::NewlyQuarantined => self.cache.flush(),
                Looked::ProbeMiss => unreachable!("synchronous reads resolve under the lock"),
            }
        }
        ep.record_cache_bypass_read();
        let arc = ep.get_with_retry(&self.window, target, offset, len)?;
        Ok(RowRef::Fetched(arc))
    }

    /// Concurrent equivalent of [`crate::CachedWindow::get_fused`]: hits and
    /// local reads run `on_row` on the in-place slice, misses hand the
    /// exposed source region to `on_transfer` (landing buffer + result in one
    /// pass) and insert the landed buffer — with the key's shard held across
    /// the whole miss round, so concurrent same-key misses coalesce.
    ///
    /// # Errors
    ///
    /// As for [`ShardedCachedWindow::get_scored`].
    #[allow(clippy::too_many_arguments)]
    pub fn get_fused<R>(
        &self,
        ep: &mut Endpoint,
        target: usize,
        offset: usize,
        len: usize,
        score: f64,
        on_row: impl FnOnce(&[T]) -> R,
        mut on_transfer: impl FnMut(&[T]) -> (Arc<[T]>, R),
    ) -> Result<R, RmaError> {
        if target == ep.rank() {
            return Ok(on_row(ep.local_read(&self.window, offset, len)));
        }
        let key = self.key_for(target, offset, len);
        if !self.quarantined() {
            let looked = self.cache.with_shard(&key, |shard| {
                if let Some(salt) = ep.fault_roll_cache_corrupt() {
                    shard.corrupt_entry(key, salt);
                }
                if let Some((data, stored)) = shard.lookup_entry(key) {
                    if self.verify_hit_locked(ep, shard, key, &data, stored) {
                        ep.record_cache_hit(len * std::mem::size_of::<T>());
                        return Looked::Done(Ok(on_row(&data)));
                    }
                    if self.quarantined() {
                        return Looked::NewlyQuarantined;
                    }
                }
                match ep.get_map_with_retry(&self.window, target, offset, len, &mut on_transfer) {
                    Ok((arc, result)) => {
                        self.admit_locked(ep, shard, key, arc, score);
                        Looked::Done(Ok(result))
                    }
                    Err(e) => Looked::Done(Err(e)),
                }
            });
            match looked {
                Looked::Done(done) => return done,
                Looked::NewlyQuarantined => self.cache.flush(),
                Looked::ProbeMiss => unreachable!("synchronous reads resolve under the lock"),
            }
        }
        ep.record_cache_bypass_read();
        let (_arc, result) =
            ep.get_map_with_retry(&self.window, target, offset, len, &mut on_transfer)?;
        Ok(result)
    }

    /// Issue-time half of a split (pipelined) read: rolls resident-entry
    /// corruption, looks the key up, verifies hits, and reports what the
    /// caller should do — compute from the returned buffer now, or issue the
    /// get and [`ShardedCachedWindow::admit`] the buffer at completion. Holds
    /// the shard only for the lookup; the flight window runs lock-free.
    pub fn probe(
        &self,
        ep: &mut Endpoint,
        target: usize,
        offset: usize,
        len: usize,
    ) -> CacheProbe<T> {
        debug_assert_ne!(target, ep.rank(), "local reads never reach the cache");
        if self.quarantined() {
            ep.record_cache_bypass_read();
            return CacheProbe::Bypass;
        }
        let key = self.key_for(target, offset, len);
        let looked = self.cache.with_shard(&key, |shard| {
            if let Some(salt) = ep.fault_roll_cache_corrupt() {
                shard.corrupt_entry(key, salt);
            }
            match shard.lookup_entry(key) {
                Some((data, stored)) => {
                    if self.verify_hit_locked(ep, shard, key, &data, stored) {
                        ep.record_cache_hit(len * std::mem::size_of::<T>());
                        Looked::Done(Ok(data))
                    } else if self.quarantined() {
                        Looked::NewlyQuarantined
                    } else {
                        Looked::ProbeMiss
                    }
                }
                None => Looked::ProbeMiss,
            }
        });
        match looked {
            Looked::Done(Ok(data)) => CacheProbe::Hit(data),
            Looked::Done(Err(_)) => unreachable!("probes never issue gets"),
            Looked::NewlyQuarantined => {
                self.cache.flush();
                ep.record_cache_bypass_read();
                CacheProbe::Bypass
            }
            Looked::ProbeMiss => CacheProbe::Miss,
        }
    }

    /// Completion-time half of a split read: inserts a buffer whose transfer
    /// has completed (and, under fault injection, verified clean), honouring
    /// injected insert rejections and stamping a checksum exactly like the
    /// synchronous miss path. A no-op if the cache was quarantined while the
    /// get was in flight.
    pub fn admit(
        &self,
        ep: &mut Endpoint,
        target: usize,
        offset: usize,
        len: usize,
        arc: Arc<[T]>,
        score: f64,
    ) {
        if self.quarantined() {
            return;
        }
        let key = self.key_for(target, offset, len);
        self.cache
            .with_shard(&key, |shard| self.admit_locked(ep, shard, key, arc, score));
    }

    /// The shared insert tail: injected-rejection roll, checksum stamp,
    /// insert into the already locked shard.
    fn admit_locked(
        &self,
        ep: &mut Endpoint,
        shard: &mut Clampi<T>,
        key: EntryKey,
        arc: Arc<[T]>,
        score: f64,
    ) {
        if ep.fault_roll_cache_reject() {
            ep.record_cache_rejection();
            return;
        }
        let checksum = ep.faults_enabled().then(|| fault::checksum(&arc));
        shard.insert_with_checksum(key, arc, score, checksum);
    }

    /// Verifies a hit against its insert-time stamp, with the entry's shard
    /// already locked. Returns `true` when the data may be served; on a
    /// mismatch the entry is invalidated in place and reaching the threshold
    /// sets the quarantine flag — the *caller* flushes after releasing the
    /// shard (flushing all shards from under one shard's lock would
    /// self-deadlock).
    fn verify_hit_locked(
        &self,
        ep: &mut Endpoint,
        shard: &mut Clampi<T>,
        key: EntryKey,
        data: &[T],
        stored: Option<u64>,
    ) -> bool {
        if !ep.faults_enabled() {
            return true;
        }
        let Some(stamp) = stored else {
            return true;
        };
        if fault::checksum(data) == stamp {
            return true;
        }
        shard.invalidate(key);
        ep.record_cache_invalidation();
        let seen = self.corruptions.fetch_add(1, Ordering::AcqRel) + 1;
        if seen >= shard.config().quarantine_threshold {
            self.quarantined.store(true, Ordering::Release);
        }
        false
    }

    /// Records one compressed row moving through the cache (`logical`
    /// decoded bytes stored as `stored` compressed bytes), attributed to the
    /// shard that owns the `(target, offset, len)` region's key.
    pub fn record_compression(
        &self,
        target: usize,
        offset: usize,
        len: usize,
        logical: u64,
        stored: u64,
    ) {
        let key = self.key_for(target, offset, len);
        self.cache.record_compression(&key, logical, stored);
    }

    /// Signals the closure of an access epoch to every shard (flushes in
    /// transparent mode only).
    pub fn end_epoch(&self) {
        self.cache.end_epoch();
    }

    /// Flushes every shard (user-defined consistency mode).
    pub fn flush(&self) {
        self.cache.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmatc_rma::fault::{FaultPlan, RetryPolicy};
    use rmatc_rma::NetworkModel;

    fn setup() -> (Window<u32>, Endpoint) {
        let window = Window::from_parts(vec![(0..100u32).collect(), (1000..1100u32).collect()]);
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        ep.lock_all();
        (window, ep)
    }

    fn faulted_endpoint(plan: FaultPlan) -> Endpoint {
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries())
            .with_retry(RetryPolicy {
                max_attempts: 32,
                ..RetryPolicy::default()
            })
            .with_faults(plan.injector(0));
        ep.lock_all();
        ep
    }

    #[test]
    fn one_shard_matches_the_single_threaded_wrapper_exactly() {
        let (window, mut ep) = setup();
        let scw = ShardedCachedWindow::new(window.clone(), ClampiConfig::always_cache(4096, 64), 1);
        let mut cw = crate::CachedWindow::new(window, ClampiConfig::always_cache(4096, 64));
        let mut ep2 = Endpoint::new(0, 2, NetworkModel::aries());
        ep2.lock_all();
        for round in 0..2 {
            let a = scw.get_scored(&mut ep, 1, 10, 5, 0.0).unwrap().to_vec();
            let b = cw.get(&mut ep2, 1, 10, 5).unwrap().to_vec();
            assert_eq!(a, b, "round {round}");
            // Local reads bypass both caches identically.
            let la = scw.get_scored(&mut ep, 0, 3, 4, 0.0).unwrap().to_vec();
            let lb = cw.get(&mut ep2, 0, 3, 4).unwrap().to_vec();
            assert_eq!(la, lb);
        }
        assert_eq!(scw.stats(), *cw.stats(), "1 shard ≡ plain wrapper");
        assert_eq!(ep.stats(), ep2.stats());
    }

    #[test]
    fn probe_admit_split_reads_serve_hits_after_admission() {
        let (window, mut ep) = setup();
        let scw = ShardedCachedWindow::new(window.clone(), ClampiConfig::always_cache(4096, 64), 4);
        assert!(matches!(scw.probe(&mut ep, 1, 10, 5), CacheProbe::Miss));
        // Simulate the pipelined flight: issue, wait, admit at completion.
        let pending = ep.get(&window, 1, 10, 5).unwrap();
        let arc = pending.wait(&mut ep).unwrap();
        scw.admit(&mut ep, 1, 10, 5, Arc::clone(&arc), 0.0);
        match scw.probe(&mut ep, 1, 10, 5) {
            CacheProbe::Hit(data) => assert!(Arc::ptr_eq(&data, &arc), "zero-copy handover"),
            other => panic!("expected a hit after admit, got {other:?}"),
        }
        let stats = scw.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        ep.unlock_all();
    }

    #[test]
    fn concurrent_same_key_misses_coalesce_into_one_fetch() {
        let (window, _) = setup();
        let scw = Arc::new(ShardedCachedWindow::new(
            window,
            ClampiConfig::always_cache(1 << 16, 256),
            8,
        ));
        let total_gets = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let scw = Arc::clone(&scw);
                let total_gets = &total_gets;
                scope.spawn(move || {
                    let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
                    ep.lock_all();
                    for _ in 0..50 {
                        // All threads hammer the same key: the shard-held
                        // fetch means exactly one get can ever be issued.
                        let row = scw.get_scored(&mut ep, 1, 0, 8, 0.0).unwrap();
                        assert_eq!(row[0], 1000);
                    }
                    ep.unlock_all();
                    total_gets.fetch_add(ep.stats().gets, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            total_gets.load(Ordering::Relaxed),
            1,
            "same-key concurrent misses must coalesce into a single fetch"
        );
        let stats = scw.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4 * 50 - 1);
    }

    #[test]
    fn corrupted_hits_quarantine_and_degrade_to_bypass() {
        let (window, _) = setup();
        let plan = FaultPlan {
            cache_corrupt_p: 1.0,
            ..FaultPlan::reliable(21)
        };
        let mut ep = faulted_endpoint(plan);
        let cfg = ClampiConfig::always_cache(4096, 64).with_quarantine_threshold(3);
        let scw = ShardedCachedWindow::new(window, cfg, 4);
        let clean = scw.get_scored(&mut ep, 1, 0, 8, 0.0).unwrap().to_vec();
        let mut reads = 0;
        while !scw.quarantined() {
            let again = scw.get_scored(&mut ep, 1, 0, 8, 0.0).unwrap().to_vec();
            assert_eq!(again, clean, "corrupted data must never be served");
            reads += 1;
            assert!(reads < 100, "three corruptions must quarantine");
        }
        assert!(scw.cache().is_empty(), "quarantine flushes every shard");
        let bypasses = ep.stats().cache_bypass_reads;
        assert_eq!(
            scw.get_scored(&mut ep, 1, 0, 8, 0.0).unwrap().to_vec(),
            clean
        );
        assert_eq!(ep.stats().cache_bypass_reads, bypasses + 1);
        // Probes report bypass too, and admit becomes a no-op.
        assert!(matches!(scw.probe(&mut ep, 1, 0, 8), CacheProbe::Bypass));
        scw.admit(&mut ep, 1, 0, 8, Arc::from(vec![0u32; 8]), 0.0);
        assert!(scw.cache().is_empty());
        ep.unlock_all();
    }

    #[test]
    fn fused_reads_intersect_in_place_on_hits() {
        let (window, mut ep) = setup();
        let scw = ShardedCachedWindow::new(window, ClampiConfig::always_cache(4096, 64), 2);
        let expected: u32 = (1000..1004).sum();
        let sum = scw
            .get_fused(
                &mut ep,
                1,
                0,
                4,
                0.0,
                |row| row.iter().copied().sum::<u32>(),
                |src| (Arc::from(src), src.iter().copied().sum::<u32>()),
            )
            .unwrap();
        assert_eq!(sum, expected);
        let gets = ep.stats().gets;
        let sum2 = scw
            .get_fused(
                &mut ep,
                1,
                0,
                4,
                0.0,
                |row| row.iter().copied().sum::<u32>(),
                |_| unreachable!("second read must hit"),
            )
            .unwrap();
        assert_eq!(sum2, sum);
        assert_eq!(ep.stats().gets, gets, "hits stay off the network");
        ep.unlock_all();
    }
}
