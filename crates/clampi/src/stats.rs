//! Cache statistics: the quantities plotted in Figures 7 and 8 of the paper
//! (miss rates, compulsory misses) plus the counters the adaptive heuristic observes.

/// Counters kept by one CLaMPI cache instance.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups that found the requested region in the cache.
    pub hits: u64,
    /// Lookups that did not (for any reason).
    pub misses: u64,
    /// Misses on keys never requested before — unavoidable ("compulsory") misses,
    /// shown as the grey area in Figures 7 and 8.
    pub compulsory_misses: u64,
    /// Evictions performed because the memory buffer had no suitable free region.
    pub capacity_evictions: u64,
    /// Evictions performed because the hash-table slot was already occupied.
    pub conflict_evictions: u64,
    /// Misses whose data could not be inserted (e.g. entry larger than the buffer).
    pub uncacheable: u64,
    /// Bytes served from the cache.
    pub bytes_from_cache: u64,
    /// Bytes fetched over the network (misses).
    pub bytes_from_network: u64,
    /// Number of times the cache was flushed (epoch closures in transparent mode,
    /// adaptive resizes, or user flushes).
    pub flushes: u64,
    /// Number of adaptive resizes of the hash table.
    pub table_resizes: u64,
    /// Number of adaptive resizes of the memory buffer.
    pub capacity_resizes: u64,
    /// Entries removed because their data failed checksum verification.
    pub invalidations: u64,
    /// Bytes freed by policy-chosen evictions (capacity and conflict victims;
    /// flushes and invalidations are not victim selections and do not count).
    /// Together with `bytes_from_network` this attributes byte churn to the
    /// active eviction policy in the policy-shootout bench.
    pub evicted_bytes: u64,
    /// Inserts the eviction policy refused to admit (the paper-score
    /// admission rule, counted within `uncacheable`, which keeps its
    /// pre-policy-layer meaning of "miss whose data was not stored").
    pub admission_rejections: u64,
    /// Decoded (logical) bytes represented by the compressed rows transferred
    /// on adjacency misses — what a plain-storage run would have moved for the
    /// same reads. Zero unless the window stores compressed rows
    /// (`GraphStorage::Compressed` in `rmatc-core`).
    pub logical_bytes: u64,
    /// Stored (compressed) bytes actually transferred and cached for those
    /// same rows. Together with `logical_bytes` this measures the compression
    /// win end to end: entries occupy `stored_bytes` of cache capacity while
    /// standing in for `logical_bytes` of adjacency data.
    pub stored_bytes: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; `0` when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.misses as f64 / self.lookups() as f64
        }
    }

    /// Miss rate in parts per million, rounded — an integer form stable enough
    /// for deterministic benchmark metric rows and threshold gates.
    pub fn miss_rate_ppm(&self) -> u64 {
        (self.miss_rate() * 1e6).round() as u64
    }

    /// Fraction of lookups that are compulsory misses — the floor below which no
    /// cache configuration can push the miss rate.
    pub fn compulsory_miss_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.compulsory_misses as f64 / self.lookups() as f64
        }
    }

    /// Total evictions.
    pub fn evictions(&self) -> u64 {
        self.capacity_evictions + self.conflict_evictions
    }

    /// Logical-to-stored ratio of the compressed rows that moved through the
    /// cache (`1.0` when nothing compressed was recorded — a plain-storage
    /// run neither wins nor loses).
    pub fn compression_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.stored_bytes as f64
        }
    }

    /// Records one compressed row moving through the cache: `logical` decoded
    /// bytes stored as `stored` compressed bytes.
    pub fn record_compression(&mut self, logical: u64, stored: u64) {
        self.logical_bytes += logical;
        self.stored_bytes += stored;
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.compulsory_misses += other.compulsory_misses;
        self.capacity_evictions += other.capacity_evictions;
        self.conflict_evictions += other.conflict_evictions;
        self.uncacheable += other.uncacheable;
        self.bytes_from_cache += other.bytes_from_cache;
        self.bytes_from_network += other.bytes_from_network;
        self.flushes += other.flushes;
        self.table_resizes += other.table_resizes;
        self.capacity_resizes += other.capacity_resizes;
        self.invalidations += other.invalidations;
        self.evicted_bytes += other.evicted_bytes;
        self.admission_rejections += other.admission_rejections;
        self.logical_bytes += other.logical_bytes;
        self.stored_bytes += other.stored_bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_lookups() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.compulsory_miss_rate(), 0.0);
    }

    #[test]
    fn rates_sum_to_one() {
        let s = CacheStats {
            hits: 30,
            misses: 70,
            compulsory_misses: 20,
            ..Default::default()
        };
        assert!((s.hit_rate() + s.miss_rate() - 1.0).abs() < 1e-12);
        assert!((s.compulsory_miss_rate() - 0.2).abs() < 1e-12);
        assert_eq!(s.lookups(), 100);
    }

    #[test]
    fn evictions_sum_both_kinds() {
        let s = CacheStats {
            capacity_evictions: 3,
            conflict_evictions: 4,
            ..Default::default()
        };
        assert_eq!(s.evictions(), 7);
    }

    #[test]
    fn merge_adds_all_counters() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            bytes_from_cache: 10,
            ..Default::default()
        };
        let b = CacheStats {
            hits: 5,
            misses: 1,
            bytes_from_network: 3,
            flushes: 1,
            evicted_bytes: 7,
            admission_rejections: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.hits, 6);
        assert_eq!(a.misses, 3);
        assert_eq!(a.bytes_from_cache, 10);
        assert_eq!(a.bytes_from_network, 3);
        assert_eq!(a.flushes, 1);
        assert_eq!(a.evicted_bytes, 7);
        assert_eq!(a.admission_rejections, 2);
    }

    #[test]
    fn compression_ratio_defaults_to_one_and_accumulates() {
        let mut s = CacheStats::default();
        assert_eq!(s.compression_ratio(), 1.0, "plain runs record nothing");
        s.record_compression(1024, 256);
        s.record_compression(1024, 256);
        assert_eq!(s.logical_bytes, 2048);
        assert_eq!(s.stored_bytes, 512);
        assert!((s.compression_ratio() - 4.0).abs() < 1e-12);
        let mut merged = CacheStats::default();
        merged.merge(&s);
        assert_eq!(merged.logical_bytes, 2048);
        assert_eq!(merged.stored_bytes, 512);
    }
}
