//! Reproduction of CLaMPI — a software caching layer for MPI RMA — extended with
//! application-defined scores, as used by the paper.
//!
//! CLaMPI (Di Girolamo, Vella, Hoefler, IPDPS'17) transparently caches data
//! retrieved through `MPI_Get`. The original is a C library layered over MPI
//! profiling hooks; it is reimplemented here from the description in Section II-F
//! and III-B of the paper on top of the [`rmatc_rma`] substrate:
//!
//! * **Variable-size entries.** Applications issue arbitrary-size gets, so the cache
//!   manages a byte buffer of fixed capacity with a free-region manager
//!   ([`freelist::FreeList`]) and an index ([`cache::Clampi`]) keyed by
//!   `(window, target rank, offset, length)`.
//! * **Hash-table index with conflicts.** The index has a fixed number of slots;
//!   two different regions hashing to the same slot is a *conflict* and triggers the
//!   eviction procedure, exactly like running out of buffer space does.
//! * **Eviction by weighted scores.** The default victim selection is LRU weighted
//!   by a positional score that prefers evicting entries whose removal merges free
//!   regions (reducing external fragmentation). The paper's extension adds an
//!   *application-defined score* — for LCC, the degree of the cached vertex — which
//!   protects entries that are likely to be reused ([`config::ScorePolicy`]).
//! * **Consistency modes.** `Transparent` flushes at every epoch closure,
//!   `AlwaysCache` never flushes (the graph is read-only during LCC computation),
//!   and `UserDefined` leaves flushing to the application.
//! * **Adaptive tuning.** An optional heuristic observes misses, conflicts and
//!   evictions and resizes the hash table (flushing the cache, as the paper warns)
//!   or the memory buffer.
//!
//! The integration point is [`CachedWindow`], which wraps an RMA [`rmatc_rma::Window`]
//! and intercepts gets exactly where CLaMPI's PMPI layer would: on a hit it charges
//! the local access cost, on a miss it issues the real RMA get, waits for it, and
//! inserts the result.
//!
//! Reads are zero-copy end to end: entries store the transfer buffer itself
//! (`Arc<[T]>` — an insert is a refcount bump, never a payload clone), reads
//! resolve to a borrowed [`RowRef`] view of wherever the row already lives,
//! and [`CachedWindow::get_fused`] lets callers compute over the data in
//! place — or, on a miss, *during* the transfer (the copy+intersect kernel of
//! `rmatc-core`). Cache hits and local-rank reads perform no heap
//! allocations; a miss performs exactly one.
//!
//! # Paper map
//!
//! | Module | Paper location | What it reproduces |
//! |---|---|---|
//! | [`cached_window`] | Fig. 3 steps 5–6; §II-F | Get interception: lookup before the network, insert after the miss |
//! | [`cache`] | §III-B | The cache proper: slot index, weighted victim selection, admission control |
//! | [`policy`] | §III-B (generalized) | Pluggable eviction policies: the paper's score rule plus LRU/LFU/GDSF |
//! | [`sharded`] | beyond the paper | Lock-sharded concurrent cache backing multi-threaded ranks |
//! | [`sharded_window`] | beyond the paper | Concurrent get interception shared by a rank's worker threads, with split probe/admit reads for the pipelined path |
//! | [`entry`] | §III-B1 | `(window, target, offset, len)` keys and the slot hash |
//! | [`freelist`] | §II-F / §III-B | Variable-size entry storage with first-fit allocation and coalescing |
//! | [`config`] | §II-F, §III-B1 | Consistency modes, score policies, and the hash-table sizing rules |
//! | [`row`] | this reproduction | The zero-copy read views ([`RowRef`]) |
//! | [`adaptive`] | §II-F (CLaMPI) | The adaptive resizing heuristic (observe, grow table / grow buffer) |
//! | [`stats`] | Figs. 7–8 | Hit/miss/compulsory counters the evaluation plots |

pub mod adaptive;
pub mod cache;
pub mod cached_window;
pub mod config;
pub mod entry;
pub mod freelist;
pub mod policy;
pub mod row;
pub mod sharded;
pub mod sharded_window;
pub mod stats;

pub use cache::{CacheInsertOutcome, Clampi};
pub use cached_window::CachedWindow;
pub use config::{ClampiConfig, ConsistencyMode, ScorePolicy};
pub use entry::EntryKey;
pub use policy::{EntryView, EvictionPolicy, EvictionPolicyKind, PolicyContext};
pub use row::RowRef;
pub use sharded::ShardedClampi;
pub use sharded_window::{CacheProbe, ShardedCachedWindow};
pub use stats::CacheStats;
