//! Reproduction of CLaMPI — a software caching layer for MPI RMA — extended with
//! application-defined scores, as used by the paper.
//!
//! CLaMPI (Di Girolamo, Vella, Hoefler, IPDPS'17) transparently caches data
//! retrieved through `MPI_Get`. The original is a C library layered over MPI
//! profiling hooks; it is reimplemented here from the description in Section II-F
//! and III-B of the paper on top of the [`rmatc_rma`] substrate:
//!
//! * **Variable-size entries.** Applications issue arbitrary-size gets, so the cache
//!   manages a byte buffer of fixed capacity with a free-region manager
//!   ([`freelist::FreeList`]) and an index ([`cache::Clampi`]) keyed by
//!   `(window, target rank, offset, length)`.
//! * **Hash-table index with conflicts.** The index has a fixed number of slots;
//!   two different regions hashing to the same slot is a *conflict* and triggers the
//!   eviction procedure, exactly like running out of buffer space does.
//! * **Eviction by weighted scores.** The default victim selection is LRU weighted
//!   by a positional score that prefers evicting entries whose removal merges free
//!   regions (reducing external fragmentation). The paper's extension adds an
//!   *application-defined score* — for LCC, the degree of the cached vertex — which
//!   protects entries that are likely to be reused ([`config::ScorePolicy`]).
//! * **Consistency modes.** `Transparent` flushes at every epoch closure,
//!   `AlwaysCache` never flushes (the graph is read-only during LCC computation),
//!   and `UserDefined` leaves flushing to the application.
//! * **Adaptive tuning.** An optional heuristic observes misses, conflicts and
//!   evictions and resizes the hash table (flushing the cache, as the paper warns)
//!   or the memory buffer.
//!
//! The integration point is [`CachedWindow`], which wraps an RMA [`rmatc_rma::Window`]
//! and intercepts gets exactly where CLaMPI's PMPI layer would: on a hit it charges
//! the local access cost, on a miss it issues the real RMA get, waits for it, and
//! inserts the result.

pub mod adaptive;
pub mod cache;
pub mod cached_window;
pub mod config;
pub mod entry;
pub mod freelist;
pub mod stats;

pub use cache::{CacheInsertOutcome, Clampi};
pub use cached_window::CachedWindow;
pub use config::{ClampiConfig, ConsistencyMode, ScorePolicy};
pub use entry::EntryKey;
pub use stats::CacheStats;
