//! Interception of RMA gets: the equivalent of linking CLaMPI into an MPI
//! application so that `MPI_Get`s on an enabled window are looked up in the cache
//! before touching the network (steps 5–6 in Figure 3 of the paper).
//!
//! The read methods are fallible since the robustness layer landed: misses go
//! through the endpoint's self-healing retry path, hits are verified against
//! the checksum stamped at insert time (when fault injection is enabled), and
//! a cache that keeps serving corrupted entries is **quarantined** — after
//! [`crate::ClampiConfig::quarantine_threshold`] verification failures every
//! read bypasses the cache over the plain RMA path, degrading to the paper's
//! non-cached baseline instead of wrong answers. On fault-free runs no
//! checksum is ever computed and the hot path is unchanged.

use crate::cache::Clampi;
use crate::config::ClampiConfig;
use crate::entry::EntryKey;
use crate::row::RowRef;
use crate::stats::CacheStats;
use rmatc_rma::fault;
use rmatc_rma::{Endpoint, RmaError, Window};
use std::sync::Arc;

/// A caching wrapper around an RMA [`Window`], owned by one rank.
///
/// Every rank constructs its own `CachedWindow` over the shared window (the cache is
/// process-local state, exactly as in CLaMPI). Reads targeting the owner's own rank
/// bypass the cache — they are local memory accesses, not RMA.
#[derive(Debug)]
pub struct CachedWindow<T> {
    window: Window<T>,
    cache: Clampi<T>,
    /// Checksum-verification failures observed on hits so far.
    corruptions: u32,
    /// Degraded mode: the cache is no longer consulted or filled.
    quarantined: bool,
}

impl<T: Copy + Send + Sync> CachedWindow<T> {
    /// Wraps `window` with a cache configured by `config`.
    pub fn new(window: Window<T>, config: ClampiConfig) -> Self {
        Self {
            window,
            cache: Clampi::new(config),
            corruptions: 0,
            quarantined: false,
        }
    }

    /// The underlying window.
    pub fn window(&self) -> &Window<T> {
        &self.window
    }

    /// Cache statistics.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// The cache itself (for inspection in tests and reports).
    pub fn cache(&self) -> &Clampi<T> {
        &self.cache
    }

    /// Whether the cache has been quarantined after repeated corruption (every
    /// read now takes the plain, non-cached RMA path).
    pub fn quarantined(&self) -> bool {
        self.quarantined
    }

    /// Reads `len` elements at `offset` from `target`'s exposed region, using the
    /// cache. Equivalent to [`CachedWindow::get_scored`] with a zero score.
    ///
    /// # Errors
    ///
    /// [`RmaError::RetriesExhausted`] when a miss's network read failed every
    /// attempt allowed by the endpoint's retry policy.
    pub fn get(
        &mut self,
        ep: &mut Endpoint,
        target: usize,
        offset: usize,
        len: usize,
    ) -> Result<RowRef<'_, T>, RmaError> {
        self.get_scored(ep, target, offset, len, 0.0)
    }

    /// Reads `len` elements at `offset` from `target`, passing an application-defined
    /// score for the entry (the paper's extension: for LCC, the degree of the vertex
    /// whose adjacency list is being fetched). On a hit only the local access cost is
    /// charged to the endpoint; on a miss the real RMA get is issued, waited for, and
    /// the fetched buffer itself is inserted into the cache with the given score.
    ///
    /// The read is zero-copy end to end: local-rank reads borrow the window
    /// ([`RowRef::Window`]), hits share the cached buffer ([`RowRef::Cached`]),
    /// and a miss performs exactly one allocation — the transfer buffer, which
    /// is handed to the cache by refcount and returned as [`RowRef::Fetched`]
    /// (so it stays valid even if the entry is evicted immediately, e.g. when
    /// it does not fit).
    ///
    /// Under fault injection, hits are checksum-verified: a corrupted entry is
    /// invalidated (never served), refetched over the network, and counted
    /// towards the quarantine threshold.
    ///
    /// # Errors
    ///
    /// As for [`CachedWindow::get`].
    pub fn get_scored(
        &mut self,
        ep: &mut Endpoint,
        target: usize,
        offset: usize,
        len: usize,
        score: f64,
    ) -> Result<RowRef<'_, T>, RmaError> {
        if target == ep.rank() {
            // Local partition: served from local memory, never cached (caching it
            // would only duplicate memory the rank already holds).
            return Ok(RowRef::Window(ep.local_read(&self.window, offset, len)));
        }
        let key = EntryKey::new(self.window.id(), target, offset, len);
        if !self.quarantined {
            if let Some(salt) = ep.fault_roll_cache_corrupt() {
                self.cache.corrupt_entry(key, salt);
            }
            if let Some((data, stored)) = self.cache.lookup_entry(key) {
                if self.verify_hit(ep, key, &data, stored) {
                    ep.record_cache_hit(len * std::mem::size_of::<T>());
                    return Ok(RowRef::Cached(data));
                }
                // Verification failed: the entry is gone; fall through to a
                // refetch (possibly now quarantined).
            }
        }
        if self.quarantined {
            ep.record_cache_bypass_read();
            let arc = ep.get_with_retry(&self.window, target, offset, len)?;
            return Ok(RowRef::Fetched(arc));
        }
        let arc = ep.get_with_retry(&self.window, target, offset, len)?;
        self.admit(ep, key, Arc::clone(&arc), score);
        Ok(RowRef::Fetched(arc))
    }

    /// The fused read: resolves the row like [`CachedWindow::get_scored`], but
    /// lets the caller compute over the data *where it already is* instead of
    /// receiving a buffer.
    ///
    /// * Local-rank reads and cache hits call `on_row` on the in-place slice.
    /// * A miss hands the exposed source region to `on_transfer`, which must
    ///   land it in a shared buffer and may compute its result in the same
    ///   pass (the copy+intersect kernel of `rmatc-core`); the landed buffer
    ///   is then inserted into the cache with `score`.
    ///
    /// This is how the LCC hot path intersects a remote row against the local
    /// row in the same pass that lands it in the cache, with identical hit /
    /// miss / uncacheable accounting to the plain read.
    ///
    /// `on_transfer` is `FnMut` because a faulted attempt discards its result
    /// and re-runs the transfer on retry; the returned value always comes from
    /// a verified-clean pass.
    ///
    /// # Errors
    ///
    /// As for [`CachedWindow::get`].
    #[allow(clippy::too_many_arguments)]
    pub fn get_fused<R>(
        &mut self,
        ep: &mut Endpoint,
        target: usize,
        offset: usize,
        len: usize,
        score: f64,
        on_row: impl FnOnce(&[T]) -> R,
        on_transfer: impl FnMut(&[T]) -> (Arc<[T]>, R),
    ) -> Result<R, RmaError> {
        if target == ep.rank() {
            return Ok(on_row(ep.local_read(&self.window, offset, len)));
        }
        let key = EntryKey::new(self.window.id(), target, offset, len);
        if !self.quarantined {
            if let Some(salt) = ep.fault_roll_cache_corrupt() {
                self.cache.corrupt_entry(key, salt);
            }
            if let Some((data, stored)) = self.cache.lookup_entry(key) {
                if self.verify_hit(ep, key, &data, stored) {
                    ep.record_cache_hit(len * std::mem::size_of::<T>());
                    return Ok(on_row(&data));
                }
            }
        }
        if self.quarantined {
            ep.record_cache_bypass_read();
            let (_arc, result) =
                ep.get_map_with_retry(&self.window, target, offset, len, on_transfer)?;
            return Ok(result);
        }
        let (arc, result) =
            ep.get_map_with_retry(&self.window, target, offset, len, on_transfer)?;
        self.admit(ep, key, arc, score);
        Ok(result)
    }

    /// Verifies a hit against its insert-time stamp. Returns `true` when the
    /// data may be served. On a mismatch the entry is invalidated, the failure
    /// is counted, and reaching the configured threshold quarantines the cache.
    fn verify_hit(
        &mut self,
        ep: &mut Endpoint,
        key: EntryKey,
        data: &[T],
        stored: Option<u64>,
    ) -> bool {
        if !ep.faults_enabled() {
            return true;
        }
        let Some(stamp) = stored else {
            // Inserted before faults were enabled (or by a caller that did not
            // stamp): nothing to verify against.
            return true;
        };
        if fault::checksum(data) == stamp {
            return true;
        }
        self.cache.invalidate(key);
        ep.record_cache_invalidation();
        self.corruptions += 1;
        if self.corruptions >= self.cache.config().quarantine_threshold {
            self.quarantined = true;
            self.cache.flush();
        }
        false
    }

    /// Inserts a freshly fetched buffer, honouring injected insert rejections
    /// and stamping a checksum when fault injection is enabled.
    fn admit(&mut self, ep: &mut Endpoint, key: EntryKey, arc: Arc<[T]>, score: f64) {
        if ep.fault_roll_cache_reject() {
            ep.record_cache_rejection();
            return;
        }
        let checksum = ep.faults_enabled().then(|| fault::checksum(&arc));
        self.cache.insert_with_checksum(key, arc, score, checksum);
    }

    /// Records one compressed row moving through the cache (`logical`
    /// decoded bytes stored as `stored` compressed bytes); the caller that
    /// knows the row encoding reports the sizes after a miss transfer.
    pub fn record_compression(&mut self, logical: u64, stored: u64) {
        self.cache.record_compression(logical, stored);
    }

    /// Signals the closure of an access epoch to the cache (flushes in transparent
    /// mode only).
    pub fn end_epoch(&mut self) {
        self.cache.end_epoch();
    }

    /// Flushes the cache (user-defined consistency mode).
    pub fn flush(&mut self) {
        self.cache.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmatc_rma::fault::{FaultPlan, RetryPolicy};
    use rmatc_rma::NetworkModel;

    fn setup() -> (Window<u32>, Endpoint) {
        let window = Window::from_parts(vec![(0..100u32).collect(), (1000..1100u32).collect()]);
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        ep.lock_all();
        (window, ep)
    }

    fn faulted_endpoint(plan: FaultPlan) -> Endpoint {
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries())
            .with_retry(RetryPolicy {
                max_attempts: 32,
                ..RetryPolicy::default()
            })
            .with_faults(plan.injector(0));
        ep.lock_all();
        ep
    }

    #[test]
    fn first_get_misses_second_hits() {
        let (window, mut ep) = setup();
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(4096, 64));
        let a = cw.get(&mut ep, 1, 10, 5).unwrap().to_vec();
        assert_eq!(a, vec![1010, 1011, 1012, 1013, 1014]);
        let gets_after_first = ep.stats().gets;
        let b = cw.get(&mut ep, 1, 10, 5).unwrap().to_vec();
        assert_eq!(a, b);
        assert_eq!(
            ep.stats().gets,
            gets_after_first,
            "second read must not hit the network"
        );
        assert_eq!(cw.stats().hits, 1);
        assert_eq!(cw.stats().misses, 1);
    }

    #[test]
    fn miss_buffer_is_handed_to_the_cache_without_a_copy() {
        let (window, mut ep) = setup();
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(4096, 64));
        let fetched = match cw.get(&mut ep, 1, 10, 5).unwrap() {
            RowRef::Fetched(arc) => arc,
            other => panic!("first read must be a miss, got {other:?}"),
        };
        let cached = match cw.get(&mut ep, 1, 10, 5).unwrap() {
            RowRef::Cached(arc) => arc,
            other => panic!("second read must be a hit, got {other:?}"),
        };
        assert!(
            Arc::ptr_eq(&fetched, &cached),
            "the cache must retain the transfer buffer itself, not a copy"
        );
    }

    #[test]
    fn fused_reads_match_plain_reads_and_stats() {
        let (window, mut ep) = setup();
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(4096, 64));
        // Miss: the transfer closure computes during the copy.
        let sum = cw
            .get_fused(
                &mut ep,
                1,
                0,
                4,
                0.0,
                |row| row.iter().copied().sum::<u32>(),
                |src| (Arc::from(src), src.iter().copied().sum::<u32>()),
            )
            .unwrap();
        assert_eq!(sum, 1000 + 1001 + 1002 + 1003);
        // Hit: served in place, no network get.
        let gets = ep.stats().gets;
        let sum2 = cw
            .get_fused(
                &mut ep,
                1,
                0,
                4,
                0.0,
                |row| row.iter().copied().sum::<u32>(),
                |_| unreachable!("second read must hit"),
            )
            .unwrap();
        assert_eq!(sum2, sum);
        assert_eq!(ep.stats().gets, gets);
        // Local-rank read: served from the window, cache untouched.
        let local = cw
            .get_fused(
                &mut ep,
                0,
                5,
                3,
                0.0,
                |row| row.to_vec(),
                |_| unreachable!("local reads never transfer"),
            )
            .unwrap();
        assert_eq!(local, vec![5, 6, 7]);
        assert_eq!(cw.stats().hits, 1);
        assert_eq!(cw.stats().misses, 1);
    }

    #[test]
    fn cache_hits_are_cheaper_than_misses() {
        let (window, mut ep) = setup();
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(4096, 64));
        let _ = cw.get(&mut ep, 1, 0, 50).unwrap();
        let miss_time = ep.stats().comm_time_ns;
        let _ = cw.get(&mut ep, 1, 0, 50).unwrap();
        assert_eq!(
            ep.stats().comm_time_ns,
            miss_time,
            "hits charge no network time"
        );
        assert!(ep.stats().local_time_ns > 0.0);
    }

    #[test]
    fn local_rank_reads_bypass_the_cache() {
        let (window, mut ep) = setup();
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(4096, 64));
        {
            let data = cw.get(&mut ep, 0, 5, 3).unwrap();
            assert_eq!(&*data, &[5, 6, 7]);
            assert!(data.is_borrowed(), "local reads must borrow the window");
        }
        assert_eq!(cw.stats().lookups(), 0);
        assert_eq!(ep.stats().gets, 0);
    }

    #[test]
    fn data_is_correct_even_when_not_cacheable() {
        let (window, mut ep) = setup();
        // 8-byte capacity: a 50-element read can never be cached.
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(8, 4));
        let a = cw.get(&mut ep, 1, 0, 50).unwrap().to_vec();
        assert_eq!(a.len(), 50);
        assert_eq!(a[0], 1000);
        let b = cw.get(&mut ep, 1, 0, 50).unwrap().to_vec();
        assert_eq!(a, b);
        assert_eq!(cw.stats().uncacheable, 2);
        assert_eq!(ep.stats().gets, 2, "both reads go to the network");
    }

    #[test]
    fn scored_gets_record_scores() {
        let (window, mut ep) = setup();
        let cfg = ClampiConfig::always_cache(4096, 64).with_application_scores();
        let mut cw = CachedWindow::new(window, cfg);
        let _ = cw.get_scored(&mut ep, 1, 0, 10, 42.0).unwrap();
        assert_eq!(cw.cache().len(), 1);
    }

    #[test]
    fn epoch_end_respects_mode() {
        let (window, mut ep) = setup();
        let mut cw = CachedWindow::new(window.clone(), ClampiConfig::always_cache(4096, 64));
        let _ = cw.get(&mut ep, 1, 0, 4).unwrap();
        cw.end_epoch();
        let _ = cw.get(&mut ep, 1, 0, 4).unwrap();
        assert_eq!(cw.stats().hits, 1, "always-cache persists across epochs");

        let transparent = ClampiConfig {
            mode: crate::config::ConsistencyMode::Transparent,
            ..ClampiConfig::always_cache(4096, 64)
        };
        let mut cw2 = CachedWindow::new(window, transparent);
        let _ = cw2.get(&mut ep, 1, 0, 4).unwrap();
        cw2.end_epoch();
        let _ = cw2.get(&mut ep, 1, 0, 4).unwrap();
        assert_eq!(cw2.stats().hits, 0, "transparent mode flushes at epoch end");
    }

    #[test]
    fn flush_forces_refetch() {
        let (window, mut ep) = setup();
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(4096, 64));
        let _ = cw.get(&mut ep, 1, 0, 4).unwrap();
        cw.flush();
        let _ = cw.get(&mut ep, 1, 0, 4).unwrap();
        assert_eq!(ep.stats().gets, 2);
    }

    #[test]
    fn corrupted_hits_are_invalidated_and_refetched() {
        let (window, _) = setup();
        // Every lookup rots the resident entry; a high threshold keeps the
        // cache out of quarantine for this test.
        let plan = FaultPlan {
            cache_corrupt_p: 1.0,
            ..FaultPlan::reliable(11)
        };
        let mut ep = faulted_endpoint(plan);
        let cfg = ClampiConfig::always_cache(4096, 64).with_quarantine_threshold(1_000);
        let mut cw = CachedWindow::new(window, cfg);
        let clean = cw.get(&mut ep, 1, 10, 5).unwrap().to_vec();
        assert_eq!(clean, vec![1010, 1011, 1012, 1013, 1014]);
        for _ in 0..5 {
            // The hit is corrupted every time: never served, always refetched.
            let again = cw.get(&mut ep, 1, 10, 5).unwrap().to_vec();
            assert_eq!(again, clean, "corrupted data must never be served");
        }
        assert_eq!(ep.stats().cache_invalidations, 5);
        assert_eq!(cw.stats().invalidations, 5);
        assert_eq!(ep.stats().gets as usize, 6, "each invalidation refetches");
        assert!(!cw.quarantined());
    }

    #[test]
    fn repeated_corruption_quarantines_the_cache() {
        let (window, _) = setup();
        let plan = FaultPlan {
            cache_corrupt_p: 1.0,
            ..FaultPlan::reliable(12)
        };
        let mut ep = faulted_endpoint(plan);
        let cfg = ClampiConfig::always_cache(4096, 64).with_quarantine_threshold(3);
        let mut cw = CachedWindow::new(window, cfg);
        let clean = cw.get(&mut ep, 1, 0, 8).unwrap().to_vec();
        let mut reads = 0u64;
        while !cw.quarantined() {
            assert_eq!(cw.get(&mut ep, 1, 0, 8).unwrap().to_vec(), clean);
            reads += 1;
            assert!(reads < 100, "three corruptions must quarantine");
        }
        assert_eq!(ep.stats().cache_invalidations, 3);
        assert!(cw.cache().is_empty(), "quarantine flushes the sick cache");
        // Degraded mode: the paper's non-cached baseline — every read is a
        // plain RMA get, still correct, with bypasses counted. (The read that
        // tripped the threshold already completed through the bypass path.)
        let bypasses_at_quarantine = ep.stats().cache_bypass_reads;
        let lookups_frozen = cw.stats().lookups();
        for _ in 0..4 {
            assert_eq!(cw.get(&mut ep, 1, 0, 8).unwrap().to_vec(), clean);
        }
        assert_eq!(ep.stats().cache_bypass_reads, bypasses_at_quarantine + 4);
        assert_eq!(cw.stats().lookups(), lookups_frozen, "cache not consulted");
    }

    #[test]
    fn injected_insert_rejections_keep_data_correct() {
        let (window, _) = setup();
        let plan = FaultPlan {
            cache_reject_p: 1.0,
            ..FaultPlan::reliable(13)
        };
        let mut ep = faulted_endpoint(plan);
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(4096, 64));
        for _ in 0..3 {
            let data = cw.get(&mut ep, 1, 20, 4).unwrap().to_vec();
            assert_eq!(data, vec![1020, 1021, 1022, 1023]);
        }
        assert!(cw.cache().is_empty(), "every insert was rejected");
        assert_eq!(ep.stats().cache_rejections, 3);
        assert_eq!(ep.stats().gets, 3, "every read went to the network");
    }

    #[test]
    fn fused_reads_heal_corrupted_hits_too() {
        let (window, _) = setup();
        let plan = FaultPlan {
            cache_corrupt_p: 1.0,
            ..FaultPlan::reliable(14)
        };
        let mut ep = faulted_endpoint(plan);
        let cfg = ClampiConfig::always_cache(4096, 64).with_quarantine_threshold(1_000);
        let mut cw = CachedWindow::new(window, cfg);
        let expected: u32 = (1000..1008).sum();
        for _ in 0..4 {
            let sum = cw
                .get_fused(
                    &mut ep,
                    1,
                    0,
                    8,
                    0.0,
                    |row| row.iter().copied().sum::<u32>(),
                    |src| (Arc::from(src), src.iter().copied().sum::<u32>()),
                )
                .unwrap();
            assert_eq!(sum, expected, "fused result must come from clean data");
        }
        assert!(ep.stats().cache_invalidations >= 3);
    }
}
