//! Interception of RMA gets: the equivalent of linking CLaMPI into an MPI
//! application so that `MPI_Get`s on an enabled window are looked up in the cache
//! before touching the network (steps 5–6 in Figure 3 of the paper).

use crate::cache::Clampi;
use crate::config::ClampiConfig;
use crate::entry::EntryKey;
use crate::row::RowRef;
use crate::stats::CacheStats;
use rmatc_rma::{Endpoint, Window};
use std::sync::Arc;

/// A caching wrapper around an RMA [`Window`], owned by one rank.
///
/// Every rank constructs its own `CachedWindow` over the shared window (the cache is
/// process-local state, exactly as in CLaMPI). Reads targeting the owner's own rank
/// bypass the cache — they are local memory accesses, not RMA.
#[derive(Debug)]
pub struct CachedWindow<T> {
    window: Window<T>,
    cache: Clampi<T>,
}

impl<T: Copy + Send + Sync> CachedWindow<T> {
    /// Wraps `window` with a cache configured by `config`.
    pub fn new(window: Window<T>, config: ClampiConfig) -> Self {
        Self {
            window,
            cache: Clampi::new(config),
        }
    }

    /// The underlying window.
    pub fn window(&self) -> &Window<T> {
        &self.window
    }

    /// Cache statistics.
    pub fn stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// The cache itself (for inspection in tests and reports).
    pub fn cache(&self) -> &Clampi<T> {
        &self.cache
    }

    /// Reads `len` elements at `offset` from `target`'s exposed region, using the
    /// cache. Equivalent to [`CachedWindow::get_scored`] with a zero score.
    pub fn get(
        &mut self,
        ep: &mut Endpoint,
        target: usize,
        offset: usize,
        len: usize,
    ) -> RowRef<'_, T> {
        self.get_scored(ep, target, offset, len, 0.0)
    }

    /// Reads `len` elements at `offset` from `target`, passing an application-defined
    /// score for the entry (the paper's extension: for LCC, the degree of the vertex
    /// whose adjacency list is being fetched). On a hit only the local access cost is
    /// charged to the endpoint; on a miss the real RMA get is issued, waited for, and
    /// the fetched buffer itself is inserted into the cache with the given score.
    ///
    /// The read is zero-copy end to end: local-rank reads borrow the window
    /// ([`RowRef::Window`]), hits share the cached buffer ([`RowRef::Cached`]),
    /// and a miss performs exactly one allocation — the transfer buffer, which
    /// is handed to the cache by refcount and returned as [`RowRef::Fetched`]
    /// (so it stays valid even if the entry is evicted immediately, e.g. when
    /// it does not fit).
    pub fn get_scored(
        &mut self,
        ep: &mut Endpoint,
        target: usize,
        offset: usize,
        len: usize,
        score: f64,
    ) -> RowRef<'_, T> {
        if target == ep.rank() {
            // Local partition: served from local memory, never cached (caching it
            // would only duplicate memory the rank already holds).
            return RowRef::Window(ep.local_read(&self.window, offset, len));
        }
        let key = EntryKey::new(self.window.id(), target, offset, len);
        if let Some(hit) = self.cache.lookup(key) {
            ep.record_cache_hit(len * std::mem::size_of::<T>());
            return RowRef::Cached(hit);
        }
        let arc = ep.get(&self.window, target, offset, len).wait(ep);
        self.cache.insert(key, Arc::clone(&arc), score);
        RowRef::Fetched(arc)
    }

    /// The fused read: resolves the row like [`CachedWindow::get_scored`], but
    /// lets the caller compute over the data *where it already is* instead of
    /// receiving a buffer.
    ///
    /// * Local-rank reads and cache hits call `on_row` on the in-place slice.
    /// * A miss hands the exposed source region to `on_transfer`, which must
    ///   land it in a shared buffer and may compute its result in the same
    ///   pass (the copy+intersect kernel of `rmatc-core`); the landed buffer
    ///   is then inserted into the cache with `score`.
    ///
    /// This is how the LCC hot path intersects a remote row against the local
    /// row in the same pass that lands it in the cache, with identical hit /
    /// miss / uncacheable accounting to the plain read.
    #[allow(clippy::too_many_arguments)]
    pub fn get_fused<R>(
        &mut self,
        ep: &mut Endpoint,
        target: usize,
        offset: usize,
        len: usize,
        score: f64,
        on_row: impl FnOnce(&[T]) -> R,
        on_transfer: impl FnOnce(&[T]) -> (Arc<[T]>, R),
    ) -> R {
        if target == ep.rank() {
            return on_row(ep.local_read(&self.window, offset, len));
        }
        let key = EntryKey::new(self.window.id(), target, offset, len);
        if let Some(hit) = self.cache.lookup(key) {
            ep.record_cache_hit(len * std::mem::size_of::<T>());
            return on_row(&hit);
        }
        let (pending, result) = ep.get_map(&self.window, target, offset, len, on_transfer);
        let arc = pending.wait(ep);
        self.cache.insert(key, arc, score);
        result
    }

    /// Signals the closure of an access epoch to the cache (flushes in transparent
    /// mode only).
    pub fn end_epoch(&mut self) {
        self.cache.end_epoch();
    }

    /// Flushes the cache (user-defined consistency mode).
    pub fn flush(&mut self) {
        self.cache.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmatc_rma::NetworkModel;

    fn setup() -> (Window<u32>, Endpoint) {
        let window = Window::from_parts(vec![(0..100u32).collect(), (1000..1100u32).collect()]);
        let mut ep = Endpoint::new(0, 2, NetworkModel::aries());
        ep.lock_all();
        (window, ep)
    }

    #[test]
    fn first_get_misses_second_hits() {
        let (window, mut ep) = setup();
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(4096, 64));
        let a = cw.get(&mut ep, 1, 10, 5).to_vec();
        assert_eq!(a, vec![1010, 1011, 1012, 1013, 1014]);
        let gets_after_first = ep.stats().gets;
        let b = cw.get(&mut ep, 1, 10, 5).to_vec();
        assert_eq!(a, b);
        assert_eq!(
            ep.stats().gets,
            gets_after_first,
            "second read must not hit the network"
        );
        assert_eq!(cw.stats().hits, 1);
        assert_eq!(cw.stats().misses, 1);
    }

    #[test]
    fn miss_buffer_is_handed_to_the_cache_without_a_copy() {
        let (window, mut ep) = setup();
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(4096, 64));
        let fetched = match cw.get(&mut ep, 1, 10, 5) {
            RowRef::Fetched(arc) => arc,
            other => panic!("first read must be a miss, got {other:?}"),
        };
        let cached = match cw.get(&mut ep, 1, 10, 5) {
            RowRef::Cached(arc) => arc,
            other => panic!("second read must be a hit, got {other:?}"),
        };
        assert!(
            Arc::ptr_eq(&fetched, &cached),
            "the cache must retain the transfer buffer itself, not a copy"
        );
    }

    #[test]
    fn fused_reads_match_plain_reads_and_stats() {
        let (window, mut ep) = setup();
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(4096, 64));
        // Miss: the transfer closure computes during the copy.
        let sum = cw.get_fused(
            &mut ep,
            1,
            0,
            4,
            0.0,
            |row| row.iter().copied().sum::<u32>(),
            |src| (Arc::from(src), src.iter().copied().sum::<u32>()),
        );
        assert_eq!(sum, 1000 + 1001 + 1002 + 1003);
        // Hit: served in place, no network get.
        let gets = ep.stats().gets;
        let sum2 = cw.get_fused(
            &mut ep,
            1,
            0,
            4,
            0.0,
            |row| row.iter().copied().sum::<u32>(),
            |_| unreachable!("second read must hit"),
        );
        assert_eq!(sum2, sum);
        assert_eq!(ep.stats().gets, gets);
        // Local-rank read: served from the window, cache untouched.
        let local = cw.get_fused(
            &mut ep,
            0,
            5,
            3,
            0.0,
            |row| row.to_vec(),
            |_| unreachable!("local reads never transfer"),
        );
        assert_eq!(local, vec![5, 6, 7]);
        assert_eq!(cw.stats().hits, 1);
        assert_eq!(cw.stats().misses, 1);
    }

    #[test]
    fn cache_hits_are_cheaper_than_misses() {
        let (window, mut ep) = setup();
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(4096, 64));
        let _ = cw.get(&mut ep, 1, 0, 50);
        let miss_time = ep.stats().comm_time_ns;
        let _ = cw.get(&mut ep, 1, 0, 50);
        assert_eq!(
            ep.stats().comm_time_ns,
            miss_time,
            "hits charge no network time"
        );
        assert!(ep.stats().local_time_ns > 0.0);
    }

    #[test]
    fn local_rank_reads_bypass_the_cache() {
        let (window, mut ep) = setup();
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(4096, 64));
        {
            let data = cw.get(&mut ep, 0, 5, 3);
            assert_eq!(&*data, &[5, 6, 7]);
            assert!(data.is_borrowed(), "local reads must borrow the window");
        }
        assert_eq!(cw.stats().lookups(), 0);
        assert_eq!(ep.stats().gets, 0);
    }

    #[test]
    fn data_is_correct_even_when_not_cacheable() {
        let (window, mut ep) = setup();
        // 8-byte capacity: a 50-element read can never be cached.
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(8, 4));
        let a = cw.get(&mut ep, 1, 0, 50).to_vec();
        assert_eq!(a.len(), 50);
        assert_eq!(a[0], 1000);
        let b = cw.get(&mut ep, 1, 0, 50).to_vec();
        assert_eq!(a, b);
        assert_eq!(cw.stats().uncacheable, 2);
        assert_eq!(ep.stats().gets, 2, "both reads go to the network");
    }

    #[test]
    fn scored_gets_record_scores() {
        let (window, mut ep) = setup();
        let cfg = ClampiConfig::always_cache(4096, 64).with_application_scores();
        let mut cw = CachedWindow::new(window, cfg);
        let _ = cw.get_scored(&mut ep, 1, 0, 10, 42.0);
        assert_eq!(cw.cache().len(), 1);
    }

    #[test]
    fn epoch_end_respects_mode() {
        let (window, mut ep) = setup();
        let mut cw = CachedWindow::new(window.clone(), ClampiConfig::always_cache(4096, 64));
        let _ = cw.get(&mut ep, 1, 0, 4);
        cw.end_epoch();
        let _ = cw.get(&mut ep, 1, 0, 4);
        assert_eq!(cw.stats().hits, 1, "always-cache persists across epochs");

        let transparent = ClampiConfig {
            mode: crate::config::ConsistencyMode::Transparent,
            ..ClampiConfig::always_cache(4096, 64)
        };
        let mut cw2 = CachedWindow::new(window, transparent);
        let _ = cw2.get(&mut ep, 1, 0, 4);
        cw2.end_epoch();
        let _ = cw2.get(&mut ep, 1, 0, 4);
        assert_eq!(cw2.stats().hits, 0, "transparent mode flushes at epoch end");
    }

    #[test]
    fn flush_forces_refetch() {
        let (window, mut ep) = setup();
        let mut cw = CachedWindow::new(window, ClampiConfig::always_cache(4096, 64));
        let _ = cw.get(&mut ep, 1, 0, 4);
        cw.flush();
        let _ = cw.get(&mut ep, 1, 0, 4);
        assert_eq!(ep.stats().gets, 2);
    }
}
