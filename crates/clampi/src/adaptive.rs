//! Adaptive parameter tuning.
//!
//! CLaMPI includes a heuristic that automatically resizes the hash table and the
//! memory buffer by observing indicators such as cache misses, conflicts in the hash
//! table, and evictions due to lack of space (Section II-F). The paper stresses one
//! operational consequence: resizing the hash table flushes the cache, so good
//! starting values matter (Section III-B1). This module implements the observation
//! window and the resize decisions; the cache applies them.

use crate::config::AdaptiveConfig;

/// A resize decision produced at the end of an observation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveAction {
    /// Double the hash table (requires flushing the cache).
    GrowTable {
        /// New slot count.
        new_slots: usize,
    },
    /// Grow the memory buffer (no flush required).
    GrowCapacity {
        /// New capacity in bytes.
        new_capacity: usize,
    },
}

/// Sliding observation window over cache events.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveState {
    accesses: u64,
    conflicts: u64,
    space_evictions: u64,
}

impl AdaptiveState {
    /// Records one lookup.
    pub fn record_access(&mut self) {
        self.accesses += 1;
    }

    /// Records a conflict eviction.
    pub fn record_conflict(&mut self) {
        self.conflicts += 1;
    }

    /// Records an eviction caused by lack of buffer space.
    pub fn record_space_eviction(&mut self) {
        self.space_evictions += 1;
    }

    /// Number of accesses observed in the current window.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// At the end of an observation window, decides whether to resize. Growing the
    /// hash table takes priority (conflicts waste hits even when space is plentiful).
    /// Returns `None` if the window is not complete yet or no threshold is exceeded.
    pub fn decide(
        &mut self,
        cfg: &AdaptiveConfig,
        current_slots: usize,
        current_capacity: usize,
    ) -> Option<AdaptiveAction> {
        if self.accesses < cfg.interval {
            return None;
        }
        let accesses = self.accesses as f64;
        let conflict_rate = self.conflicts as f64 / accesses;
        let eviction_rate = self.space_evictions as f64 / accesses;
        self.accesses = 0;
        self.conflicts = 0;
        self.space_evictions = 0;
        if conflict_rate > cfg.conflict_threshold && current_slots < cfg.max_table_slots {
            let new_slots = (current_slots * 2).min(cfg.max_table_slots);
            return Some(AdaptiveAction::GrowTable { new_slots });
        }
        if eviction_rate > cfg.eviction_threshold && current_capacity < cfg.max_capacity_bytes {
            let new_capacity = (current_capacity + current_capacity / 2)
                .min(cfg.max_capacity_bytes)
                .max(1);
            return Some(AdaptiveAction::GrowCapacity { new_capacity });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdaptiveConfig {
        AdaptiveConfig {
            interval: 10,
            conflict_threshold: 0.2,
            eviction_threshold: 0.5,
            max_capacity_bytes: 1_000,
            max_table_slots: 64,
        }
    }

    #[test]
    fn no_decision_before_interval() {
        let mut st = AdaptiveState::default();
        for _ in 0..9 {
            st.record_access();
            st.record_conflict();
        }
        assert_eq!(st.decide(&cfg(), 8, 100), None);
    }

    #[test]
    fn grows_table_on_high_conflict_rate() {
        let mut st = AdaptiveState::default();
        for _ in 0..10 {
            st.record_access();
        }
        for _ in 0..5 {
            st.record_conflict();
        }
        assert_eq!(
            st.decide(&cfg(), 8, 100),
            Some(AdaptiveAction::GrowTable { new_slots: 16 })
        );
        // The window resets after a decision.
        assert_eq!(st.accesses(), 0);
    }

    #[test]
    fn table_growth_respects_maximum() {
        let mut st = AdaptiveState::default();
        for _ in 0..10 {
            st.record_access();
            st.record_conflict();
        }
        assert_eq!(
            st.decide(&cfg(), 64, 100),
            None,
            "at the maximum table size, conflicts alone must not trigger growth"
        );
    }

    #[test]
    fn grows_capacity_on_heavy_space_evictions() {
        let mut st = AdaptiveState::default();
        for _ in 0..10 {
            st.record_access();
            st.record_space_eviction();
        }
        assert_eq!(
            st.decide(&cfg(), 64, 100),
            Some(AdaptiveAction::GrowCapacity { new_capacity: 150 })
        );
    }

    #[test]
    fn capacity_growth_clamps_to_maximum() {
        let mut st = AdaptiveState::default();
        for _ in 0..10 {
            st.record_access();
            st.record_space_eviction();
        }
        assert_eq!(
            st.decide(&cfg(), 64, 900),
            Some(AdaptiveAction::GrowCapacity {
                new_capacity: 1_000
            })
        );
    }

    #[test]
    fn quiet_window_makes_no_change() {
        let mut st = AdaptiveState::default();
        for _ in 0..10 {
            st.record_access();
        }
        assert_eq!(st.decide(&cfg(), 8, 100), None);
    }

    #[test]
    fn conflicts_take_priority_over_capacity() {
        let mut st = AdaptiveState::default();
        for _ in 0..10 {
            st.record_access();
            st.record_conflict();
            st.record_space_eviction();
        }
        assert!(matches!(
            st.decide(&cfg(), 8, 100),
            Some(AdaptiveAction::GrowTable { .. })
        ));
    }
}
