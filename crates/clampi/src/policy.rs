//! Pluggable eviction policies.
//!
//! The paper evaluates exactly one victim-selection rule: CLaMPI's weighted
//! LRU score, optionally biased by an application-defined score (for LCC, the
//! out-degree of the cached vertex — Figure 8). That rule is one point in a
//! much larger design space, so the cache routes every eviction decision
//! through the [`EvictionPolicy`] trait and ships four implementations:
//!
//! * [`PaperScore`] — the default. Bit-identical to the pre-trait cache: the
//!   same weighted-LRU / application-score arithmetic, the same admission
//!   control, evaluated in the same order (proved by differential proptests
//!   in `tests/policy_equivalence.rs`).
//! * [`Lru`] — pure recency, no positional or application component.
//! * [`Lfu`] — least frequently used, with an infinitesimal recency
//!   tie-break so victim selection stays deterministic.
//! * [`Gdsf`] — Greedy-Dual-Size-Frequency with aging: priority
//!   `H = L + frequency × miss_cost(size) / size`, the natural
//!   generalization of degree scoring to variable-length adjacency rows
//!   (a row's refetch cost is latency + bytes, its buffer footprint is
//!   bytes, and its observed frequency replaces the degree prior).
//!
//! Policies are selected by [`EvictionPolicyKind`] on
//! [`ClampiConfig::policy`](crate::ClampiConfig::policy); the cache owns one
//! boxed policy instance and reports its decisions through the usual
//! [`CacheStats`](crate::CacheStats) counters (plus the policy-attributed
//! `evicted_bytes` / `admission_rejections` counters added with this layer).

use crate::config::{ClampiConfig, ScorePolicy};
use crate::freelist::FreeList;

/// Selects which [`EvictionPolicy`] a cache instance runs.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum EvictionPolicyKind {
    /// The paper's weighted-score selection (the default): LRU + positional
    /// score, or LRU − application score under
    /// [`ScorePolicy::ApplicationScore`].
    #[default]
    PaperScore,
    /// Pure least-recently-used.
    Lru,
    /// Least-frequently-used with a deterministic recency tie-break.
    Lfu,
    /// Greedy-Dual-Size-Frequency with aging.
    Gdsf,
}

impl EvictionPolicyKind {
    /// Every selectable policy, in shootout order.
    pub const ALL: [EvictionPolicyKind; 4] = [
        EvictionPolicyKind::PaperScore,
        EvictionPolicyKind::Lru,
        EvictionPolicyKind::Lfu,
        EvictionPolicyKind::Gdsf,
    ];

    /// Stable lower-case name (bench records and reports key on it).
    pub fn name(&self) -> &'static str {
        match self {
            EvictionPolicyKind::PaperScore => "paper_score",
            EvictionPolicyKind::Lru => "lru",
            EvictionPolicyKind::Lfu => "lfu",
            EvictionPolicyKind::Gdsf => "gdsf",
        }
    }

    /// Builds a fresh policy instance of this kind.
    pub fn build(&self) -> Box<dyn EvictionPolicy> {
        match self {
            EvictionPolicyKind::PaperScore => Box::new(PaperScore),
            EvictionPolicyKind::Lru => Box::new(Lru),
            EvictionPolicyKind::Lfu => Box::new(Lfu),
            EvictionPolicyKind::Gdsf => Box::new(Gdsf::default()),
        }
    }
}

/// Borrow-free snapshot of the entry fields a policy may consult. The cache
/// builds one per decision; policies never see the payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryView {
    /// Bytes the entry occupies in the memory buffer.
    pub bytes: usize,
    /// Start address in the memory buffer (for positional scoring).
    pub addr: usize,
    /// Logical timestamp of the last access.
    pub last_access: u64,
    /// Application-defined score passed at insert time (vertex degree in the
    /// paper's LCC runs; `0.0` when unused).
    pub user_score: f64,
    /// Times this entry was accessed, counting the insert itself.
    pub hits: u64,
    /// Policy-private scalar stored on the entry (GDSF keeps its priority
    /// `H` here); `0.0` for policies that do not use it.
    pub priority: f64,
}

/// Cache-side state a policy decision may consult, passed by reference so the
/// hot path allocates nothing.
#[derive(Debug)]
pub struct PolicyContext<'a> {
    /// The cache's logical clock (monotonic access counter).
    pub clock: u64,
    /// Largest application score seen so far (for score normalisation).
    pub max_user_score: f64,
    /// The active configuration (scoring weights, score policy).
    pub config: &'a ClampiConfig,
    /// The buffer's free-region manager (for positional scoring).
    pub freelist: &'a FreeList,
}

impl PolicyContext<'_> {
    /// Relative age of an entry in `[0, 1]`: the recency component every
    /// shipped policy shares, computed exactly as the pre-trait cache did.
    pub fn age(&self, last_access: u64) -> f64 {
        (self.clock.saturating_sub(last_access)) as f64 / (self.clock.max(1)) as f64
    }
}

/// A victim-selection (and admission) policy. The cache calls `victim_score`
/// when it must evict, the `priority_on_*` hooks when an entry is inserted or
/// hit (their return value is stored on the entry), `admits` before
/// displacing a chosen victim, `on_evict` when a victim it chose is removed,
/// and `on_flush` when the whole cache is dropped.
///
/// Implementations must be deterministic: given the same sequence of calls
/// they must return the same values, because replayed runs (chaos schedules,
/// differential tests) compare caches decision-for-decision.
pub trait EvictionPolicy: std::fmt::Debug + Send {
    /// Which [`EvictionPolicyKind`] built this policy.
    fn kind(&self) -> EvictionPolicyKind;

    /// Victim score of a resident entry: **larger means more evictable**.
    /// Must never return NaN.
    fn victim_score(&self, entry: EntryView, ctx: &PolicyContext<'_>) -> f64;

    /// Priority scalar to store on a freshly inserted entry.
    fn priority_on_insert(&mut self, entry: EntryView, ctx: &PolicyContext<'_>) -> f64 {
        let _ = (entry, ctx);
        0.0
    }

    /// Updated priority scalar after a hit (`entry.hits` already counts it).
    fn priority_on_hit(&mut self, entry: EntryView, ctx: &PolicyContext<'_>) -> f64 {
        let _ = (entry, ctx);
        0.0
    }

    /// Whether a new entry (with `candidate_score` and `candidate_bytes`) may
    /// displace `victim`. Returning `false` refuses admission: the fetched
    /// data is still handed to the caller, just not cached.
    fn admits(
        &self,
        candidate_score: f64,
        candidate_bytes: usize,
        victim: EntryView,
        ctx: &PolicyContext<'_>,
    ) -> bool {
        let _ = (candidate_score, candidate_bytes, victim, ctx);
        true
    }

    /// A victim chosen by this policy is about to be evicted.
    fn on_evict(&mut self, victim: EntryView) {
        let _ = victim;
    }

    /// The cache was flushed; reset any aging state.
    fn on_flush(&mut self) {}
}

/// The paper's weighted-score victim selection — the pre-trait behaviour,
/// preserved bit-for-bit.
///
/// Under [`ScorePolicy::LruPositional`] the score is
/// `lru_weight · age + positional_weight · positional` where `positional`
/// rewards evicting entries adjacent to free regions (reducing external
/// fragmentation). Under [`ScorePolicy::ApplicationScore`] it is
/// `lru_weight · age − user_weight · score/max_score`, plus the admission
/// rule that refuses entries scoring below the prospective victim.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperScore;

impl EvictionPolicy for PaperScore {
    fn kind(&self) -> EvictionPolicyKind {
        EvictionPolicyKind::PaperScore
    }

    fn victim_score(&self, entry: EntryView, ctx: &PolicyContext<'_>) -> f64 {
        let age = ctx.age(entry.last_access);
        match ctx.config.scoring {
            ScorePolicy::LruPositional => {
                let (before, after) = ctx.freelist.adjacency_to_free(entry.addr, entry.bytes);
                let positional = (before as u8 + after as u8) as f64 / 2.0;
                ctx.config.lru_weight * age + ctx.config.positional_weight * positional
            }
            ScorePolicy::ApplicationScore => {
                let norm = if ctx.max_user_score > 0.0 {
                    entry.user_score / ctx.max_user_score
                } else {
                    0.0
                };
                ctx.config.lru_weight * age - ctx.config.user_weight * norm
            }
        }
    }

    fn admits(
        &self,
        candidate_score: f64,
        _candidate_bytes: usize,
        victim: EntryView,
        ctx: &PolicyContext<'_>,
    ) -> bool {
        // Admission control under application-defined scores: the point of
        // the paper's extension is to "avoid storing a high number of
        // low-degree vertices" — a new entry whose score is lower than the
        // prospective victim's is not admitted at all, instead of churning
        // the cache.
        ctx.config.scoring != ScorePolicy::ApplicationScore || candidate_score >= victim.user_score
    }
}

/// Pure least-recently-used: the victim is the entry idle the longest,
/// ignoring position, frequency and application scores.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lru;

impl EvictionPolicy for Lru {
    fn kind(&self) -> EvictionPolicyKind {
        EvictionPolicyKind::Lru
    }

    fn victim_score(&self, entry: EntryView, ctx: &PolicyContext<'_>) -> f64 {
        ctx.age(entry.last_access)
    }
}

/// How much the recency tie-break may contribute to an [`Lfu`] victim score.
/// Ages live in `[0, 1]` and frequencies are integers, so any weight below 1
/// can only order entries of *equal* frequency.
const LFU_TIE_BREAK: f64 = 1e-3;

/// Least-frequently-used: the victim is the entry with the fewest accesses;
/// equal frequencies fall back to evicting the least recently used.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lfu;

impl EvictionPolicy for Lfu {
    fn kind(&self) -> EvictionPolicyKind {
        EvictionPolicyKind::Lfu
    }

    fn victim_score(&self, entry: EntryView, ctx: &PolicyContext<'_>) -> f64 {
        -(entry.hits as f64) + LFU_TIE_BREAK * ctx.age(entry.last_access)
    }
}

/// Greedy-Dual-Size-Frequency with aging.
///
/// Every access sets the entry's priority to `H = L + f · c(s) / s` where
/// `f` is the access count, `s` the entry size and `c(s) = latency_bytes + s`
/// the modeled refetch cost (an RMA get pays a latency term plus a byte
/// term, so small rows are proportionally more expensive to re-miss). The
/// victim is the lowest-priority entry; evicting it advances the aging level
/// `L` to its priority, so long-resident entries must keep earning hits to
/// stay above newly inserted ones — the classic inflation scheme that lets
/// GDSF adapt when the hot set drifts.
#[derive(Debug, Clone, Copy)]
pub struct Gdsf {
    /// Aging level `L`: the priority of the most recently evicted victim.
    inflation: f64,
    /// Byte-equivalent of the per-get latency in the cost term `c(s)`.
    latency_bytes: f64,
}

impl Gdsf {
    /// Default byte-equivalent latency: roughly one Aries-class get setup
    /// (~1 µs) at ~10 GB/s, i.e. the row size below which latency dominates
    /// the refetch cost.
    pub const DEFAULT_LATENCY_BYTES: f64 = 512.0;

    /// GDSF with an explicit latency/bandwidth crossover (in bytes).
    pub fn with_latency_bytes(latency_bytes: f64) -> Self {
        Self {
            inflation: 0.0,
            latency_bytes: latency_bytes.max(0.0),
        }
    }

    /// Current aging level `L`.
    pub fn inflation(&self) -> f64 {
        self.inflation
    }

    /// Priority `H` of an entry with `hits` accesses and `bytes` size.
    fn priority(&self, hits: u64, bytes: usize) -> f64 {
        let size = bytes.max(1) as f64;
        self.inflation + (hits as f64) * (self.latency_bytes + size) / size
    }
}

impl Default for Gdsf {
    fn default() -> Self {
        Self::with_latency_bytes(Self::DEFAULT_LATENCY_BYTES)
    }
}

impl EvictionPolicy for Gdsf {
    fn kind(&self) -> EvictionPolicyKind {
        EvictionPolicyKind::Gdsf
    }

    fn victim_score(&self, entry: EntryView, _ctx: &PolicyContext<'_>) -> f64 {
        // Lowest priority evicts first; the cache maximises victim scores.
        -entry.priority
    }

    fn priority_on_insert(&mut self, entry: EntryView, _ctx: &PolicyContext<'_>) -> f64 {
        self.priority(entry.hits, entry.bytes)
    }

    fn priority_on_hit(&mut self, entry: EntryView, _ctx: &PolicyContext<'_>) -> f64 {
        self.priority(entry.hits, entry.bytes)
    }

    fn on_evict(&mut self, victim: EntryView) {
        // Aging: future priorities start from the evicted entry's level, so
        // resident entries decay relative to new arrivals unless re-hit.
        if victim.priority > self.inflation {
            self.inflation = victim.priority;
        }
    }

    fn on_flush(&mut self) {
        self.inflation = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(config: &'a ClampiConfig, freelist: &'a FreeList, clock: u64) -> PolicyContext<'a> {
        PolicyContext {
            clock,
            max_user_score: 100.0,
            config,
            freelist,
        }
    }

    fn view(last_access: u64, bytes: usize, hits: u64, priority: f64) -> EntryView {
        EntryView {
            bytes,
            addr: 0,
            last_access,
            user_score: 0.0,
            hits,
            priority,
        }
    }

    #[test]
    fn kinds_build_matching_policies() {
        for kind in EvictionPolicyKind::ALL {
            assert_eq!(kind.build().kind(), kind);
        }
        assert_eq!(
            EvictionPolicyKind::default(),
            EvictionPolicyKind::PaperScore
        );
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let names: std::collections::HashSet<_> =
            EvictionPolicyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), EvictionPolicyKind::ALL.len());
        assert_eq!(EvictionPolicyKind::Gdsf.name(), "gdsf");
    }

    #[test]
    fn lru_prefers_older_entries() {
        let config = ClampiConfig::always_cache(1024, 16);
        let fl = FreeList::new(1024);
        let ctx = ctx(&config, &fl, 100);
        let lru = Lru;
        assert!(
            lru.victim_score(view(10, 64, 1, 0.0), &ctx)
                > lru.victim_score(view(90, 64, 1, 0.0), &ctx)
        );
    }

    #[test]
    fn lfu_prefers_rare_entries_with_recency_tie_break() {
        let config = ClampiConfig::always_cache(1024, 16);
        let fl = FreeList::new(1024);
        let ctx = ctx(&config, &fl, 100);
        let lfu = Lfu;
        // Frequency dominates: an old popular entry outlives a fresh rare one.
        assert!(
            lfu.victim_score(view(99, 64, 1, 0.0), &ctx)
                > lfu.victim_score(view(1, 64, 50, 0.0), &ctx)
        );
        // Equal frequency: older evicts first.
        assert!(
            lfu.victim_score(view(10, 64, 3, 0.0), &ctx)
                > lfu.victim_score(view(90, 64, 3, 0.0), &ctx)
        );
    }

    #[test]
    fn gdsf_priorities_scale_with_frequency_and_against_size() {
        let mut gdsf = Gdsf::default();
        let config = ClampiConfig::always_cache(1024, 16);
        let fl = FreeList::new(1024);
        let ctx = ctx(&config, &fl, 100);
        let small_hot = gdsf.priority_on_hit(view(0, 64, 10, 0.0), &ctx);
        let small_cold = gdsf.priority_on_hit(view(0, 64, 1, 0.0), &ctx);
        let large_cold = gdsf.priority_on_hit(view(0, 1 << 20, 1, 0.0), &ctx);
        assert!(small_hot > small_cold, "frequency raises priority");
        assert!(
            small_cold > large_cold,
            "per-byte value falls with size at equal frequency"
        );
        // Victim score is the negated priority.
        assert!(
            gdsf.victim_score(view(0, 1 << 20, 1, large_cold), &ctx)
                > gdsf.victim_score(view(0, 64, 10, small_hot), &ctx)
        );
    }

    #[test]
    fn gdsf_ages_on_eviction_and_resets_on_flush() {
        let mut gdsf = Gdsf::default();
        assert_eq!(gdsf.inflation(), 0.0);
        gdsf.on_evict(view(0, 64, 1, 7.5));
        assert_eq!(gdsf.inflation(), 7.5);
        // Aging never regresses.
        gdsf.on_evict(view(0, 64, 1, 2.0));
        assert_eq!(gdsf.inflation(), 7.5);
        // New priorities start from the aging level.
        let config = ClampiConfig::always_cache(1024, 16);
        let fl = FreeList::new(1024);
        let c = ctx(&config, &fl, 1);
        assert!(gdsf.priority_on_insert(view(0, 64, 1, 0.0), &c) > 7.5);
        gdsf.on_flush();
        assert_eq!(gdsf.inflation(), 0.0);
    }

    #[test]
    fn paper_score_admission_only_bites_under_application_scores() {
        let lru_cfg = ClampiConfig::always_cache(1024, 16);
        let app_cfg = ClampiConfig::always_cache(1024, 16).with_application_scores();
        let fl = FreeList::new(1024);
        let policy = PaperScore;
        let victim = EntryView {
            user_score: 50.0,
            ..view(0, 64, 1, 0.0)
        };
        let lru_ctx = ctx(&lru_cfg, &fl, 10);
        let app_ctx = ctx(&app_cfg, &fl, 10);
        assert!(policy.admits(0.0, 64, victim, &lru_ctx));
        assert!(!policy.admits(49.0, 64, victim, &app_ctx));
        assert!(policy.admits(50.0, 64, victim, &app_ctx));
    }
}
