//! Free-region manager for the cache's memory buffer.
//!
//! CLaMPI stores variable-size entries in a contiguous memory buffer and tracks free
//! regions in an AVL tree; allocating and freeing entries can leave the free space
//! externally fragmented (many small non-contiguous holes), which is what the
//! positional eviction score tries to counteract. We track free regions in a
//! `BTreeMap` keyed by start address (Rust's idiomatic balanced tree), with the same
//! observable behaviour: first-fit allocation, coalescing on free, and queries for
//! the largest hole and the total free space used to distinguish capacity misses
//! from fragmentation misses.

use std::collections::BTreeMap;

/// Allocator over a simulated buffer of `capacity` bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeList {
    capacity: usize,
    /// start address → length of the free region.
    free: BTreeMap<usize, usize>,
}

impl FreeList {
    /// Creates a free list covering an empty buffer of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        let mut free = BTreeMap::new();
        if capacity > 0 {
            free.insert(0, capacity);
        }
        Self { capacity, free }
    }

    /// Buffer capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total free bytes (possibly fragmented).
    pub fn total_free(&self) -> usize {
        self.free.values().sum()
    }

    /// Size of the largest contiguous free region.
    pub fn largest_free(&self) -> usize {
        self.free.values().copied().max().unwrap_or(0)
    }

    /// Number of disjoint free regions; more regions at the same total free space
    /// means more external fragmentation.
    pub fn fragments(&self) -> usize {
        self.free.len()
    }

    /// External fragmentation metric in `[0, 1]`: `1 - largest_free / total_free`.
    pub fn fragmentation(&self) -> f64 {
        let total = self.total_free();
        if total == 0 {
            return 0.0;
        }
        1.0 - self.largest_free() as f64 / total as f64
    }

    /// Allocates `size` bytes with first-fit. Returns the start address, or `None`
    /// if no single free region is large enough (even if the total free space is).
    pub fn allocate(&mut self, size: usize) -> Option<usize> {
        if size == 0 {
            return Some(0);
        }
        let addr = self
            .free
            .iter()
            .find(|(_, &len)| len >= size)
            .map(|(&addr, _)| addr)?;
        let len = self.free.remove(&addr).expect("region disappeared");
        if len > size {
            self.free.insert(addr + size, len - size);
        }
        Some(addr)
    }

    /// Frees the region `[addr, addr + size)`, coalescing with adjacent free regions.
    pub fn free(&mut self, addr: usize, size: usize) {
        if size == 0 {
            return;
        }
        assert!(addr + size <= self.capacity, "free out of buffer bounds");
        // Coalesce with the predecessor if it ends exactly at `addr`.
        let mut start = addr;
        let mut len = size;
        if let Some((&prev_addr, &prev_len)) = self.free.range(..addr).next_back() {
            assert!(
                prev_addr + prev_len <= addr,
                "double free / overlap detected"
            );
            if prev_addr + prev_len == addr {
                self.free.remove(&prev_addr);
                start = prev_addr;
                len += prev_len;
            }
        }
        // Coalesce with the successor if it starts exactly at the end.
        if let Some((&next_addr, &next_len)) = self.free.range(addr..).next() {
            assert!(addr + size <= next_addr, "double free / overlap detected");
            if addr + size == next_addr {
                self.free.remove(&next_addr);
                len += next_len;
            }
        }
        self.free.insert(start, len);
    }

    /// Whether the bytes adjacent to `[addr, addr + size)` (on either side) are free.
    /// Used by the positional eviction score: evicting an entry that touches free
    /// space merges regions and reduces fragmentation.
    pub fn adjacency_to_free(&self, addr: usize, size: usize) -> (bool, bool) {
        let before = self
            .free
            .range(..addr)
            .next_back()
            .map(|(&a, &l)| a + l == addr)
            .unwrap_or(false);
        let after = self.free.contains_key(&(addr + size));
        (before, after)
    }

    /// Grows the buffer to `new_capacity` bytes, making the added tail region
    /// available without disturbing existing allocations. Used by the adaptive
    /// heuristic when it enlarges the memory buffer (which, unlike growing the hash
    /// table, does not require flushing the cache).
    pub fn grow(&mut self, new_capacity: usize) {
        assert!(
            new_capacity >= self.capacity,
            "cannot shrink the buffer with grow()"
        );
        if new_capacity == self.capacity {
            return;
        }
        let added = new_capacity - self.capacity;
        let old_capacity = self.capacity;
        self.capacity = new_capacity;
        self.free(old_capacity, added);
    }

    /// Resets the free list to a (possibly larger) empty buffer.
    pub fn reset(&mut self, capacity: usize) {
        self.capacity = capacity;
        self.free.clear();
        if capacity > 0 {
            self.free.insert(0, capacity);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_buffer_is_one_big_region() {
        let fl = FreeList::new(1024);
        assert_eq!(fl.total_free(), 1024);
        assert_eq!(fl.largest_free(), 1024);
        assert_eq!(fl.fragments(), 1);
        assert_eq!(fl.fragmentation(), 0.0);
    }

    #[test]
    fn allocate_first_fit_and_split() {
        let mut fl = FreeList::new(100);
        assert_eq!(fl.allocate(30), Some(0));
        assert_eq!(fl.allocate(30), Some(30));
        assert_eq!(fl.total_free(), 40);
        assert_eq!(fl.allocate(50), None);
        assert_eq!(fl.allocate(40), Some(60));
        assert_eq!(fl.total_free(), 0);
        assert_eq!(fl.allocate(1), None);
    }

    #[test]
    fn zero_sized_allocations_always_succeed() {
        let mut fl = FreeList::new(0);
        assert_eq!(fl.allocate(0), Some(0));
        assert_eq!(fl.allocate(1), None);
    }

    #[test]
    fn free_coalesces_with_neighbours() {
        let mut fl = FreeList::new(100);
        let a = fl.allocate(20).unwrap();
        let b = fl.allocate(20).unwrap();
        let c = fl.allocate(20).unwrap();
        assert_eq!((a, b, c), (0, 20, 40));
        fl.free(a, 20);
        fl.free(c, 20);
        // Free regions: [0,20), [40,100) → fragmented.
        assert_eq!(fl.fragments(), 2);
        assert!(fl.fragmentation() > 0.0);
        fl.free(b, 20);
        // Everything coalesces back into one region.
        assert_eq!(fl.fragments(), 1);
        assert_eq!(fl.total_free(), 100);
        assert_eq!(fl.largest_free(), 100);
    }

    #[test]
    fn fragmentation_prevents_large_allocation_despite_total_space() {
        let mut fl = FreeList::new(90);
        let a = fl.allocate(30).unwrap();
        let _b = fl.allocate(30).unwrap();
        let c = fl.allocate(30).unwrap();
        fl.free(a, 30);
        fl.free(c, 30);
        assert_eq!(fl.total_free(), 60);
        // 60 bytes are free but not contiguous.
        assert_eq!(fl.allocate(60), None);
        assert_eq!(fl.largest_free(), 30);
    }

    #[test]
    fn adjacency_to_free_detects_mergeable_entries() {
        let mut fl = FreeList::new(100);
        let a = fl.allocate(20).unwrap(); // [0,20)
        let b = fl.allocate(20).unwrap(); // [20,40)
        let _c = fl.allocate(20).unwrap(); // [40,60)
        fl.free(a, 20);
        // Entry b has free space before it (region [0,20)) and none after.
        assert_eq!(fl.adjacency_to_free(b, 20), (true, false));
        // Entry c has free space after it (tail region [60,100)) and none before.
        assert_eq!(fl.adjacency_to_free(40, 20), (false, true));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn overlapping_free_is_detected() {
        let mut fl = FreeList::new(100);
        let a = fl.allocate(40).unwrap();
        fl.free(a, 40);
        fl.free(a + 10, 10);
    }

    #[test]
    fn reset_restores_an_empty_buffer() {
        let mut fl = FreeList::new(50);
        fl.allocate(20).unwrap();
        fl.reset(200);
        assert_eq!(fl.capacity(), 200);
        assert_eq!(fl.total_free(), 200);
        assert_eq!(fl.fragments(), 1);
    }

    #[test]
    fn grow_extends_the_tail_and_coalesces() {
        let mut fl = FreeList::new(64);
        let a = fl.allocate(64).unwrap();
        fl.grow(128);
        assert_eq!(fl.capacity(), 128);
        assert_eq!(fl.total_free(), 64);
        assert_eq!(fl.allocate(64), Some(64));
        fl.free(a, 64);
        fl.grow(256);
        // Tail [128,256) coalesces with nothing; [0,64) is separate.
        assert_eq!(fl.total_free(), 192);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_rejects_shrinking() {
        let mut fl = FreeList::new(64);
        fl.grow(32);
    }

    #[test]
    fn allocation_after_free_reuses_space() {
        let mut fl = FreeList::new(64);
        let a = fl.allocate(64).unwrap();
        assert_eq!(fl.allocate(1), None);
        fl.free(a, 64);
        assert_eq!(fl.allocate(64), Some(0));
    }
}
