//! Shared-memory edge-centric triangle counting and LCC over one CSR graph.
//!
//! This is the per-node computation kernel of the paper: for every vertex and every
//! incident edge, intersect the two adjacency lists (Section II-C), offsetting the
//! intersection on undirected graphs so each triangle is counted once per corner.
//!
//! Three parallelization strategies are available (see [`LocalParallelism`]):
//!
//! * [`IntersectionParallel`](LocalParallelism::IntersectionParallel) — the
//!   paper's Section III-C scheme: the *intersection* is what runs in parallel,
//!   not the edge loop, which keeps thread imbalance low at the price of frequent
//!   parallel-region entry — the effect measured in Figure 6 and Table III.
//! * [`VertexParallel`](LocalParallelism::VertexParallel) — a vertex-parallel
//!   outer loop: contiguous vertex ranges are mapped across threads, each range
//!   accumulating into its own partial `per_vertex_triangles` buffer, so the
//!   fork/join cost is paid once per run instead of once per edge.
//! * [`EdgeParallel`](LocalParallelism::EdgeParallel) — an edge-parallel outer
//!   loop: the directed-edge array is split into equal ranges regardless of row
//!   boundaries, the load-balance counterpart for skewed graphs where one hub
//!   row can be as large as another thread's whole range.
//!
//! The outer-loop strategies additionally take a [`RangeSchedule`]: with
//! [`DegreeWeighted`](RangeSchedule::DegreeWeighted) (the default), chunk
//! boundaries come from a prefix sum over `CsrGraph::offsets` so every chunk
//! carries the same *work* instead of the same *count* — the fix for hub-heavy
//! R-MAT degree skew, where one equal-count range can hold most of the edges.
//! All parallel loops run on the persistent work-stealing pool behind the
//! `rayon` facade; the pool is built once (sized by `RMATC_THREADS` or the
//! first configuration's thread count) and reused across calls, so repeated
//! small invocations pay a queue push instead of a `thread::spawn` per call.

use crate::intersect::compressed::compressed_count_closing;
use crate::intersect::{CostModel, IntersectMethod, ParallelIntersector};
use crate::lcc;
use rayon::prelude::*;
use rmatc_graph::compressed::{decode_row, CompressedCsr};
use rmatc_graph::split::balanced_vertex_bounds;
use rmatc_graph::types::{Direction, VertexId};
use rmatc_graph::{CsrGraph, GraphStorage};
use std::time::Instant;

/// How the shared-memory computation is spread across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LocalParallelism {
    /// Parallelize each intersection (the paper's Section III-C approach); the
    /// outer vertex/edge loop stays sequential.
    IntersectionParallel,
    /// Parallelize the outer loop over contiguous vertex ranges; every
    /// intersection runs sequentially on its owning thread.
    VertexParallel,
    /// Parallelize the outer loop over equal ranges of the directed-edge
    /// array; rows spanning a range boundary are split between threads.
    EdgeParallel,
}

/// How the outer-loop strategies cut their iteration space into chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RangeSchedule {
    /// Equal-count chunks: `n / chunks` vertices (or edges) each, degree skew
    /// ignored. Kept as the baseline the differential tests compare against.
    Static,
    /// Equal-work chunks via prefix sums: vertex chunks carry equal edge
    /// counts (a binary search per boundary over `CsrGraph::offsets`), edge
    /// chunks carry equal intersection mass (`deg(u) + deg(v)` per edge).
    DegreeWeighted,
}

/// Configuration for the shared-memory computation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LocalConfig {
    /// Intersection kernel selection.
    pub method: IntersectMethod,
    /// Cost model [`IntersectMethod::Hybrid`] resolves kernels through:
    /// the paper's analytic rule (default, deterministic across hosts) or a
    /// machine-calibrated [`CostProfile`](crate::intersect::CostProfile).
    /// Whichever model is set, only the kernel choice changes — LCC values
    /// are identical.
    pub cost_model: CostModel,
    /// Number of threads (1 = fully sequential regardless of `parallelism`).
    pub threads: usize,
    /// With [`LocalParallelism::IntersectionParallel`], intersections whose
    /// longer list is below this length run sequentially.
    pub parallel_cutoff: usize,
    /// Which loop is parallelized.
    pub parallelism: LocalParallelism,
    /// How the parallelized loop's range is cut into chunks.
    pub schedule: RangeSchedule,
    /// Adjacency representation the computation runs on. With
    /// [`GraphStorage::Compressed`] every row is delta/varint compressed and
    /// the fused decompress+intersect kernels replace the plain ones; scores
    /// are bit-identical either way. Constructors honour the `RMATC_STORAGE`
    /// environment variable (the CI compressed leg), defaulting to plain.
    pub storage: GraphStorage,
}

impl LocalConfig {
    /// Sequential hybrid configuration.
    pub fn sequential() -> Self {
        Self {
            method: IntersectMethod::Hybrid,
            cost_model: CostModel::Analytic,
            threads: 1,
            parallel_cutoff: usize::MAX,
            parallelism: LocalParallelism::IntersectionParallel,
            schedule: RangeSchedule::DegreeWeighted,
            storage: GraphStorage::from_env(),
        }
    }

    /// Intersection-parallel hybrid configuration with the default cut-off
    /// (the paper's scheme).
    pub fn parallel(threads: usize) -> Self {
        Self {
            threads,
            parallel_cutoff: crate::intersect::parallel::DEFAULT_PARALLEL_CUTOFF,
            ..Self::sequential()
        }
    }

    /// Vertex-parallel hybrid configuration.
    pub fn vertex_parallel(threads: usize) -> Self {
        Self {
            parallelism: LocalParallelism::VertexParallel,
            parallel_cutoff: usize::MAX,
            ..Self::parallel(threads)
        }
    }

    /// Edge-parallel hybrid configuration.
    pub fn edge_parallel(threads: usize) -> Self {
        Self {
            parallelism: LocalParallelism::EdgeParallel,
            parallel_cutoff: usize::MAX,
            ..Self::parallel(threads)
        }
    }

    /// Same configuration with a different intersection method.
    pub fn with_method(mut self, method: IntersectMethod) -> Self {
        self.method = method;
        self
    }

    /// Same configuration with a different parallelism strategy.
    pub fn with_parallelism(mut self, parallelism: LocalParallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Same configuration with a different range schedule.
    pub fn with_schedule(mut self, schedule: RangeSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Same configuration with a different cost model for `Hybrid`
    /// resolution (see [`crate::intersect::calibrate`]).
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Same configuration on a different adjacency representation.
    pub fn with_storage(mut self, storage: GraphStorage) -> Self {
        self.storage = storage;
        self
    }
}

impl Default for LocalConfig {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Result of a shared-memory run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LocalResult {
    /// Closed-triplet count per vertex (LCC numerators before the formula's factor).
    pub per_vertex_triangles: Vec<u64>,
    /// LCC score per vertex.
    pub lcc: Vec<f64>,
    /// Global triangle count (undirected) or closed-triplet count (directed).
    pub triangle_count: u64,
    /// Number of directed edges processed.
    pub edges_processed: u64,
    /// Wall-clock time of the computation, in nanoseconds.
    pub elapsed_ns: u64,
}

impl LocalResult {
    /// Edges processed per microsecond — the throughput metric of Table III and
    /// Figure 6.
    pub fn edges_per_us(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.edges_processed as f64 / (self.elapsed_ns as f64 / 1_000.0)
    }

    /// Average LCC over all vertices.
    pub fn average_lcc(&self) -> f64 {
        lcc::average(&self.lcc)
    }
}

/// Shared-memory LCC/TC runner.
#[derive(Debug, Clone, Copy)]
pub struct LocalLcc {
    config: LocalConfig,
}

impl LocalLcc {
    /// Creates a runner with the given configuration.
    pub fn new(config: LocalConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &LocalConfig {
        &self.config
    }

    /// Runs triangle counting and LCC over `g`.
    pub fn run(&self, g: &CsrGraph) -> LocalResult {
        let n = g.vertex_count();
        if self.config.threads > 1 {
            // Build the persistent pool before the timed section so the first
            // measured run does not pay one-time worker spawn cost. The first
            // call sizes it (environment overrides win); later calls no-op.
            rayon::ensure_pool(self.config.threads);
        }
        if self.config.storage == GraphStorage::Compressed {
            // Compression happens outside the timed section, like CSR
            // construction does for the plain path: the timed computation is
            // the fused decompress+intersect traversal itself.
            let ccsr = CompressedCsr::from_csr(g);
            let start = Instant::now();
            let (per_vertex, edges) = match self.config.parallelism {
                _ if self.config.threads <= 1 || n == 0 => {
                    compressed_range(&ccsr, 0, n, &self.config.cost_model)
                }
                LocalParallelism::IntersectionParallel => {
                    compressed_range(&ccsr, 0, n, &self.config.cost_model)
                }
                LocalParallelism::VertexParallel => self.run_compressed_vertex_parallel(g, &ccsr),
                LocalParallelism::EdgeParallel => self.run_compressed_edge_parallel(g, &ccsr),
            };
            let elapsed_ns = start.elapsed().as_nanos() as u64;
            return finish(g, per_vertex, edges, elapsed_ns);
        }
        let start = Instant::now();
        let (per_vertex, edges) = match self.config.parallelism {
            _ if self.config.threads <= 1 || n == 0 => self.run_intersection_parallel(g),
            LocalParallelism::IntersectionParallel => self.run_intersection_parallel(g),
            LocalParallelism::VertexParallel => self.run_vertex_parallel(g),
            LocalParallelism::EdgeParallel => self.run_edge_parallel(g),
        };
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        finish(g, per_vertex, edges, elapsed_ns)
    }

    /// Sequential outer loop; each intersection may itself run in parallel.
    fn run_intersection_parallel(&self, g: &CsrGraph) -> (Vec<u64>, u64) {
        let intersector = ParallelIntersector::new(
            self.config.method,
            self.config.threads,
            self.config.parallel_cutoff,
        )
        .with_cost_model(self.config.cost_model);
        let n = g.vertex_count();
        let mut per_vertex = vec![0u64; n];
        let mut edges = 0u64;
        for u in 0..n as VertexId {
            let (t, e) = count_vertex(g, u, &intersector);
            per_vertex[u as usize] = t;
            edges += e;
        }
        (per_vertex, edges)
    }

    /// Vertex-parallel outer loop: contiguous vertex ranges mapped across
    /// threads, each with a private partial buffer stitched together at the
    /// end. Ranges are oversplit 8x relative to the thread count so the pool's
    /// stealing can balance residual unevenness, and the range boundaries
    /// follow the configured [`RangeSchedule`].
    fn run_vertex_parallel(&self, g: &CsrGraph) -> (Vec<u64>, u64) {
        let intersector = self.sequential_intersector();
        let n = g.vertex_count();
        let ranges = (self.config.threads * 8).clamp(1, n);
        let bounds = match self.effective_schedule() {
            RangeSchedule::Static => static_bounds(n, ranges),
            RangeSchedule::DegreeWeighted => balanced_vertex_bounds(g.offsets(), ranges),
        };
        let partials: Vec<(usize, Vec<u64>, u64)> = (0..ranges)
            .into_par_iter()
            .map(|r| {
                let (lo, hi) = (bounds[r], bounds[r + 1]);
                let mut counts = vec![0u64; hi - lo];
                let mut edges = 0u64;
                for u in lo..hi {
                    let (t, e) = count_vertex(g, u as VertexId, &intersector);
                    counts[u - lo] = t;
                    edges += e;
                }
                (lo, counts, edges)
            })
            .collect();
        let mut per_vertex = vec![0u64; n];
        let mut edges = 0u64;
        for (lo, counts, e) in partials {
            per_vertex[lo..lo + counts.len()].copy_from_slice(&counts);
            edges += e;
        }
        (per_vertex, edges)
    }

    /// Edge-parallel outer loop: the directed-edge array is cut into ranges —
    /// equal edge counts under [`RangeSchedule::Static`], equal intersection
    /// mass (per-edge `deg(u) + deg(v)` prefix sum) under
    /// [`RangeSchedule::DegreeWeighted`]. A range's partial buffer spans only
    /// the vertices whose rows it touches, and boundary rows (split between
    /// two ranges) sum correctly because addition is associative.
    fn run_edge_parallel(&self, g: &CsrGraph) -> (Vec<u64>, u64) {
        let intersector = self.sequential_intersector();
        let n = g.vertex_count();
        let m = g.edge_count() as usize;
        if m == 0 {
            return (vec![0u64; n], 0);
        }
        let offsets = g.offsets();
        let adjacencies = g.adjacencies();
        let direction = g.direction();
        let ranges = (self.config.threads * 8).clamp(1, m);
        let bounds = match self.effective_schedule() {
            RangeSchedule::Static => static_bounds(m, ranges),
            RangeSchedule::DegreeWeighted => balanced_edge_bounds(g, ranges),
        };
        let partials: Vec<(usize, Vec<u64>)> = (0..ranges)
            .into_par_iter()
            .map(|r| {
                let e_lo = bounds[r] as u64;
                let e_hi = bounds[r + 1] as u64;
                if e_lo >= e_hi {
                    return (0, Vec::new());
                }
                // Owner of edge e is the vertex u with offsets[u] <= e < offsets[u+1].
                let u_first = offsets.partition_point(|&o| o <= e_lo) - 1;
                let mut counts: Vec<u64> = Vec::new();
                let mut u = u_first;
                while u < n && offsets[u] < e_hi {
                    let adj_u = g.neighbours(u as VertexId);
                    let row_lo = offsets[u].max(e_lo);
                    let row_hi = offsets[u + 1].min(e_hi);
                    let mut t = 0u64;
                    for e in row_lo..row_hi {
                        let v = adjacencies[e as usize];
                        let k = (e - offsets[u]) as usize;
                        let adj_v = g.neighbours(v);
                        t += count_closing_at(direction, adj_u, adj_v, v, k, &intersector);
                    }
                    counts.push(t);
                    u += 1;
                }
                (u_first, counts)
            })
            .collect();
        let mut per_vertex = vec![0u64; n];
        for (u_first, counts) in partials {
            for (i, t) in counts.into_iter().enumerate() {
                per_vertex[u_first + i] += t;
            }
        }
        (per_vertex, m as u64)
    }

    /// Vertex-parallel outer loop over compressed rows: the same range
    /// structure as [`run_vertex_parallel`](Self::run_vertex_parallel)
    /// (degree-weighted bounds still come from the plain offsets — chunk
    /// boundaries are a scheduling choice, not a data path), with each range
    /// running the fused decompress+intersect kernels.
    fn run_compressed_vertex_parallel(
        &self,
        g: &CsrGraph,
        ccsr: &CompressedCsr,
    ) -> (Vec<u64>, u64) {
        let n = g.vertex_count();
        let ranges = (self.config.threads * 8).clamp(1, n);
        let bounds = match self.effective_schedule() {
            RangeSchedule::Static => static_bounds(n, ranges),
            RangeSchedule::DegreeWeighted => balanced_vertex_bounds(g.offsets(), ranges),
        };
        let model = self.config.cost_model;
        let partials: Vec<(usize, Vec<u64>, u64)> = (0..ranges)
            .into_par_iter()
            .map(|r| {
                let (lo, hi) = (bounds[r], bounds[r + 1]);
                let (counts, edges) = compressed_range(ccsr, lo, hi, &model);
                (lo, counts, edges)
            })
            .collect();
        let mut per_vertex = vec![0u64; n];
        let mut edges = 0u64;
        for (lo, counts, e) in partials {
            per_vertex[lo..lo + counts.len()].copy_from_slice(&counts);
            edges += e;
        }
        (per_vertex, edges)
    }

    /// Edge-parallel outer loop over compressed rows: identical range
    /// arithmetic to [`run_edge_parallel`](Self::run_edge_parallel), but the
    /// `a`-side row is decoded once per row segment and the `v` rows are
    /// intersected in compressed form.
    fn run_compressed_edge_parallel(&self, g: &CsrGraph, ccsr: &CompressedCsr) -> (Vec<u64>, u64) {
        let n = g.vertex_count();
        let m = g.edge_count() as usize;
        if m == 0 {
            return (vec![0u64; n], 0);
        }
        let offsets = g.offsets();
        let direction = g.direction();
        let ranges = (self.config.threads * 8).clamp(1, m);
        let bounds = match self.effective_schedule() {
            RangeSchedule::Static => static_bounds(m, ranges),
            RangeSchedule::DegreeWeighted => balanced_edge_bounds(g, ranges),
        };
        let model = self.config.cost_model;
        let partials: Vec<(usize, Vec<u64>)> = (0..ranges)
            .into_par_iter()
            .map(|r| {
                let e_lo = bounds[r] as u64;
                let e_hi = bounds[r + 1] as u64;
                if e_lo >= e_hi {
                    return (0, Vec::new());
                }
                let u_first = offsets.partition_point(|&o| o <= e_lo) - 1;
                let mut counts: Vec<u64> = Vec::new();
                let mut adj_u: Vec<VertexId> = Vec::new();
                let mut u = u_first;
                while u < n && offsets[u] < e_hi {
                    adj_u.clear();
                    decode_row(ccsr.row(u as VertexId), &mut adj_u);
                    let row_lo = offsets[u].max(e_lo);
                    let row_hi = offsets[u + 1].min(e_hi);
                    let mut t = 0u64;
                    for e in row_lo..row_hi {
                        let k = (e - offsets[u]) as usize;
                        let v = adj_u[k];
                        t += compressed_count_closing_at(
                            direction,
                            &adj_u,
                            ccsr.row(v),
                            v,
                            k,
                            &model,
                        );
                    }
                    counts.push(t);
                    u += 1;
                }
                (u_first, counts)
            })
            .collect();
        let mut per_vertex = vec![0u64; n];
        for (u_first, counts) in partials {
            for (i, t) in counts.into_iter().enumerate() {
                per_vertex[u_first + i] += t;
            }
        }
        (per_vertex, m as u64)
    }

    fn sequential_intersector(&self) -> ParallelIntersector {
        ParallelIntersector::new(self.config.method, 1, usize::MAX)
            .with_cost_model(self.config.cost_model)
    }

    /// Equal-work boundaries only pay off when chunks actually run
    /// concurrently; when the facade will run the loop inline (single-core
    /// host without an env override), skip the prefix-sum cost — the results
    /// are identical either way.
    fn effective_schedule(&self) -> RangeSchedule {
        if rayon::effective_parallelism() <= 1 {
            RangeSchedule::Static
        } else {
            self.config.schedule
        }
    }
}

/// Equal-count chunk boundaries: `parts + 1` entries cutting `0..len` into
/// ceil-sized chunks (the pre-[`RangeSchedule`] behaviour, kept as baseline).
fn static_bounds(len: usize, parts: usize) -> Vec<usize> {
    let chunk = len.div_ceil(parts.max(1));
    (0..=parts).map(|j| (j * chunk).min(len)).collect()
}

/// Equal-work chunk boundaries over the directed-edge array: edge `(u, v)` is
/// weighted `deg(u) + deg(v)`, the size of the two rows its intersection
/// reads, so a hub's huge rows no longer land in one chunk just because equal
/// edge *counts* said so.
///
/// Streams the weight prefix in two passes instead of materializing an
/// `O(m)` array — only the `parts + 1` boundaries are kept, so the scheduler
/// adds no transient memory proportional to the graph. Produces exactly the
/// bounds [`balanced_prefix_bounds`] would on the materialized prefix (each
/// boundary is the first edge whose prefix weight reaches its target).
fn balanced_edge_bounds(g: &CsrGraph, parts: usize) -> Vec<usize> {
    let offsets = g.offsets();
    let adjacencies = g.adjacencies();
    let m = adjacencies.len();
    let parts = parts.max(1);
    let row_weights = |u: usize| {
        let deg_u = offsets[u + 1] - offsets[u];
        (offsets[u]..offsets[u + 1]).map(move |e| {
            let v = adjacencies[e as usize] as usize;
            deg_u + (offsets[v + 1] - offsets[v])
        })
    };
    let total: u64 = (0..g.vertex_count()).flat_map(row_weights).sum();
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0);
    let mut next = 1usize;
    let mut acc = 0u64; // weight of all edges before the current one
    for (e, weight) in (0..g.vertex_count()).flat_map(row_weights).enumerate() {
        while next < parts && acc >= ((total as u128 * next as u128) / parts as u128) as u64 {
            bounds.push(e);
            next += 1;
        }
        acc += weight;
    }
    while next < parts {
        bounds.push(m);
        next += 1;
    }
    bounds.push(m);
    bounds
}

/// Runs the fused decompress+intersect traversal over the vertex range
/// `lo..hi`: row `u` is decoded once (amortized over its whole row — the
/// scratch buffer is reused across vertices), each `v` row stays compressed
/// and goes through [`compressed_count_closing`]. Returns the per-vertex
/// closed-triplet counts for the range and the directed edges processed.
fn compressed_range(
    ccsr: &CompressedCsr,
    lo: usize,
    hi: usize,
    model: &CostModel,
) -> (Vec<u64>, u64) {
    let mut counts = vec![0u64; hi - lo];
    let mut edges = 0u64;
    let mut adj_u: Vec<VertexId> = Vec::new();
    for u in lo..hi {
        let (t, e) = compressed_count_vertex(ccsr, u as VertexId, &mut adj_u, model);
        counts[u - lo] = t;
        edges += e;
    }
    (counts, edges)
}

/// Compressed counterpart of `count_vertex`: decodes `adj(u)` into the
/// caller's scratch buffer and counts the closed triplets anchored at `u`
/// without decompressing any `v` row.
pub fn compressed_count_vertex(
    ccsr: &CompressedCsr,
    u: VertexId,
    adj_u: &mut Vec<VertexId>,
    model: &CostModel,
) -> (u64, u64) {
    adj_u.clear();
    decode_row(ccsr.row(u), adj_u);
    let direction = ccsr.direction();
    let mut t = 0u64;
    for (k, &v) in adj_u.iter().enumerate() {
        t += compressed_count_closing_at(direction, adj_u, ccsr.row(v), v, k, model);
    }
    (t, adj_u.len() as u64)
}

/// Compressed counterpart of [`count_closing_at`]: the decoded `adj_u` side
/// is sliced exactly like the plain path (`closing_a_side`), and the
/// upper-triangle filter on the compressed `v` row becomes the kernels'
/// `bound` parameter instead of a `partition_point` on decoded data.
pub fn compressed_count_closing_at(
    direction: Direction,
    adj_u: &[VertexId],
    row_v: &[u32],
    v: VertexId,
    neighbour_idx: usize,
    model: &CostModel,
) -> u64 {
    debug_assert!(
        direction == Direction::Directed || adj_u[neighbour_idx] == v,
        "neighbour_idx must locate v in adj_u"
    );
    let a = closing_a_side(direction, adj_u, neighbour_idx);
    let bound = match direction {
        Direction::Undirected => Some(v),
        Direction::Directed => None,
    };
    compressed_count_closing(a, row_v, bound, model)
}

/// Counts the closed triplets anchored at `u`, using the O(1) incremental
/// upper-triangle offset: because `v` iterates `adj_u` in sorted order, the
/// suffix of `adj_u` past `v` starts right after the running neighbour index —
/// no `partition_point` over `adj_u` needed.
fn count_vertex(g: &CsrGraph, u: VertexId, intersector: &ParallelIntersector) -> (u64, u64) {
    let adj_u = g.neighbours(u);
    let direction = g.direction();
    let mut t = 0u64;
    for (k, &v) in adj_u.iter().enumerate() {
        let adj_v = g.neighbours(v);
        t += count_closing_at(direction, adj_u, adj_v, v, k, intersector);
    }
    (t, adj_u.len() as u64)
}

/// The `adj_u`-side operand of the closing count for the edge `(u, v)`:
/// undirected graphs intersect only the upper-triangle suffix past `v`
/// (located at `neighbour_idx` within `adj_u`), directed graphs the whole
/// row. Shared between [`count_closing_at`] and the distributed reader's
/// fused miss path so the two can never diverge.
pub(crate) fn closing_a_side(
    direction: Direction,
    adj_u: &[VertexId],
    neighbour_idx: usize,
) -> &[VertexId] {
    match direction {
        Direction::Undirected => &adj_u[neighbour_idx + 1..],
        Direction::Directed => adj_u,
    }
}

/// Start of the `adj_v`-side operand: the first index past `v` (undirected
/// upper-triangle offsetting) or `0` (directed). Counterpart of
/// [`closing_a_side`], shared for the same reason.
pub(crate) fn closing_b_start(direction: Direction, adj_v: &[VertexId], v: VertexId) -> usize {
    match direction {
        Direction::Undirected => adj_v.partition_point(|&x| x <= v),
        Direction::Directed => 0,
    }
}

/// Counts the closing vertices for the edge `(u, v)` given both adjacency lists:
/// undirected graphs count only `w > v` (upper-triangle offsetting), directed graphs
/// count the full intersection (ordered pairs, Eq. 1).
///
/// This is the general entry point for callers that cannot supply `v`'s index
/// within `adj_u` (out-of-order or index-free iteration); every in-tree
/// caller — the local loops and the distributed worker — iterates in order
/// and uses [`count_closing_at`], which replaces one of the two
/// `partition_point` calls with the already-known neighbour index. The
/// general form is kept public as the reference implementation and is tested
/// for equivalence against the fast path.
pub fn count_closing(
    direction: Direction,
    adj_u: &[VertexId],
    adj_v: &[VertexId],
    v: VertexId,
    intersector: &ParallelIntersector,
) -> u64 {
    match direction {
        Direction::Undirected => {
            let a = &adj_u[adj_u.partition_point(|&x| x <= v)..];
            let b = &adj_v[adj_v.partition_point(|&x| x <= v)..];
            intersector.count(a, b)
        }
        Direction::Directed => intersector.count(adj_u, adj_v),
    }
}

/// Fast path of [`count_closing`] for callers iterating `adj_u` in order:
/// `neighbour_idx` is the index of `v` within `adj_u`, so the upper-triangle
/// suffix of `adj_u` is `adj_u[neighbour_idx + 1..]` — O(1) instead of a
/// binary search. Only the `adj_v` side still needs its `partition_point`.
pub fn count_closing_at(
    direction: Direction,
    adj_u: &[VertexId],
    adj_v: &[VertexId],
    v: VertexId,
    neighbour_idx: usize,
    intersector: &ParallelIntersector,
) -> u64 {
    debug_assert!(
        direction == Direction::Directed || adj_u[neighbour_idx] == v,
        "neighbour_idx must locate v in adj_u"
    );
    let a = closing_a_side(direction, adj_u, neighbour_idx);
    let b = &adj_v[closing_b_start(direction, adj_v, v)..];
    intersector.count(a, b)
}

/// Assembles a [`LocalResult`] from per-vertex closed-triplet counts.
pub fn finish(
    g: &CsrGraph,
    per_vertex_triangles: Vec<u64>,
    edges_processed: u64,
    elapsed_ns: u64,
) -> LocalResult {
    let degrees = g.degrees();
    let lcc = lcc::scores_from_counts(g.direction(), &degrees, &per_vertex_triangles);
    let total: u64 = per_vertex_triangles.iter().sum();
    let triangle_count = match g.direction() {
        Direction::Undirected => total / 3,
        Direction::Directed => total,
    };
    LocalResult {
        per_vertex_triangles,
        lcc,
        triangle_count,
        edges_processed,
        elapsed_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmatc_graph::gen::{GraphGenerator, RmatGenerator, WattsStrogatz};
    use rmatc_graph::reference;

    fn rmat() -> CsrGraph {
        RmatGenerator::paper(10, 8).generate_cleaned(1).into_csr()
    }

    #[test]
    fn matches_reference_on_rmat() {
        let g = rmat();
        let result = LocalLcc::new(LocalConfig::sequential()).run(&g);
        assert_eq!(
            result.per_vertex_triangles,
            reference::per_vertex_triangles(&g)
        );
        assert_eq!(result.triangle_count, reference::count_triangles(&g));
        let expected_lcc = reference::lcc_scores(&g);
        for (a, b) in result.lcc.iter().zip(expected_lcc.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn all_methods_give_identical_counts() {
        let g = rmat();
        let baseline = LocalLcc::new(LocalConfig::sequential())
            .run(&g)
            .triangle_count;
        for method in IntersectMethod::all() {
            let cfg = LocalConfig::sequential().with_method(method);
            assert_eq!(
                LocalLcc::new(cfg).run(&g).triangle_count,
                baseline,
                "{method:?}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = rmat();
        let seq = LocalLcc::new(LocalConfig::sequential()).run(&g);
        let mut par_cfg = LocalConfig::parallel(8);
        par_cfg.parallel_cutoff = 16; // force the parallel path even on small lists
        let par = LocalLcc::new(par_cfg).run(&g);
        assert_eq!(seq.per_vertex_triangles, par.per_vertex_triangles);
    }

    #[test]
    fn vertex_and_edge_parallel_match_sequential() {
        for g in [
            rmat(),
            WattsStrogatz::new(400, 8, 0.1)
                .generate_cleaned(7)
                .into_csr(),
        ] {
            let seq = LocalLcc::new(LocalConfig::sequential()).run(&g);
            for threads in [2, 4, 8] {
                let vp = LocalLcc::new(LocalConfig::vertex_parallel(threads)).run(&g);
                assert_eq!(
                    seq.per_vertex_triangles, vp.per_vertex_triangles,
                    "vertex {threads}"
                );
                assert_eq!(seq.edges_processed, vp.edges_processed);
                let ep = LocalLcc::new(LocalConfig::edge_parallel(threads)).run(&g);
                assert_eq!(
                    seq.per_vertex_triangles, ep.per_vertex_triangles,
                    "edge {threads}"
                );
                assert_eq!(seq.edges_processed, ep.edges_processed);
            }
        }
    }

    #[test]
    fn schedules_give_identical_results() {
        // Degree-weighted and static chunking must be observationally
        // identical; only the chunk boundaries differ.
        for g in [
            rmat(),
            WattsStrogatz::new(400, 8, 0.1)
                .generate_cleaned(7)
                .into_csr(),
        ] {
            let seq = LocalLcc::new(LocalConfig::sequential()).run(&g);
            for mode in [
                LocalParallelism::VertexParallel,
                LocalParallelism::EdgeParallel,
            ] {
                for schedule in [RangeSchedule::Static, RangeSchedule::DegreeWeighted] {
                    let cfg = LocalConfig::vertex_parallel(4)
                        .with_parallelism(mode)
                        .with_schedule(schedule);
                    let result = LocalLcc::new(cfg).run(&g);
                    assert_eq!(
                        seq.per_vertex_triangles, result.per_vertex_triangles,
                        "{mode:?} {schedule:?}"
                    );
                    assert_eq!(seq.edges_processed, result.edges_processed);
                }
            }
        }
    }

    #[test]
    fn streaming_edge_bounds_match_the_materialized_prefix() {
        // The O(parts)-memory two-pass walk must reproduce exactly what
        // `balanced_prefix_bounds` computes on the materialized weight prefix.
        // (Direct unit test: on single-core hosts `effective_schedule`
        // bypasses this code in the end-to-end paths.)
        let mut directed_edges = Vec::new();
        for u in 0..40u32 {
            for v in 0..40u32 {
                if u != v && (u * 7 + v) % 3 != 0 {
                    directed_edges.push((u, v));
                }
            }
        }
        for g in [
            rmat(),
            CsrGraph::from_edges(40, &directed_edges, Direction::Directed),
        ] {
            let offsets = g.offsets();
            let adjacencies = g.adjacencies();
            let mut prefix = vec![0u64];
            let mut acc = 0u64;
            for u in 0..g.vertex_count() {
                let deg_u = offsets[u + 1] - offsets[u];
                for e in offsets[u]..offsets[u + 1] {
                    let v = adjacencies[e as usize] as usize;
                    acc += deg_u + (offsets[v + 1] - offsets[v]);
                    prefix.push(acc);
                }
            }
            for parts in [1, 2, 3, 8, 32] {
                assert_eq!(
                    balanced_edge_bounds(&g, parts),
                    rmatc_graph::split::balanced_prefix_bounds(&prefix, parts),
                    "parts={parts}"
                );
            }
        }
    }

    #[test]
    fn degree_weighted_chunks_balance_edge_mass_on_skewed_graphs() {
        let g = RmatGenerator::paper(11, 16).generate_cleaned(3).into_csr();
        let parts = 16;
        let offsets = g.offsets();
        let max_weight = |bounds: &[usize]| {
            bounds
                .windows(2)
                .map(|w| offsets[w[1]] - offsets[w[0]])
                .max()
                .unwrap()
        };
        let weighted = max_weight(&balanced_vertex_bounds(offsets, parts));
        let statics = max_weight(&static_bounds(g.vertex_count(), parts));
        assert!(
            weighted < statics,
            "degree-weighted max chunk {weighted} must beat static {statics} on R-MAT skew"
        );
    }

    #[test]
    fn parallel_modes_match_on_directed_graphs() {
        let mut edges = Vec::new();
        for u in 0..40u32 {
            for v in 0..40u32 {
                if u != v && (u + v) % 3 != 0 {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(40, &edges, Direction::Directed);
        let seq = LocalLcc::new(LocalConfig::sequential()).run(&g);
        let vp = LocalLcc::new(LocalConfig::vertex_parallel(4)).run(&g);
        let ep = LocalLcc::new(LocalConfig::edge_parallel(4)).run(&g);
        assert_eq!(seq.per_vertex_triangles, vp.per_vertex_triangles);
        assert_eq!(seq.per_vertex_triangles, ep.per_vertex_triangles);
    }

    #[test]
    fn directed_graph_uses_ordered_pairs() {
        let mut edges = Vec::new();
        for u in 0..3u32 {
            for v in 0..3u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(3, &edges, Direction::Directed);
        let result = LocalLcc::new(LocalConfig::sequential()).run(&g);
        assert!(result.lcc.iter().all(|&c| (c - 1.0).abs() < 1e-12));
    }

    #[test]
    fn edges_processed_counts_directed_edges() {
        let g = rmat();
        let result = LocalLcc::new(LocalConfig::sequential()).run(&g);
        assert_eq!(result.edges_processed, g.edge_count());
        assert!(result.edges_per_us() > 0.0);
    }

    #[test]
    fn watts_strogatz_average_is_analytic() {
        let g = WattsStrogatz::new(300, 6, 0.0)
            .generate_cleaned(2)
            .into_csr();
        let result = LocalLcc::new(LocalConfig::parallel(4)).run(&g);
        assert!((result.average_lcc() - WattsStrogatz::lattice_lcc(6)).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = CsrGraph::from_edges(0, &[], Direction::Undirected);
        for cfg in [
            LocalConfig::sequential(),
            LocalConfig::vertex_parallel(4),
            LocalConfig::edge_parallel(4),
        ] {
            let result = LocalLcc::new(cfg).run(&g);
            assert_eq!(result.triangle_count, 0);
            assert!(result.lcc.is_empty());
            assert_eq!(result.edges_processed, 0);
        }
    }

    #[test]
    fn compressed_storage_matches_plain_across_parallelism_modes() {
        for g in [
            rmat(),
            WattsStrogatz::new(400, 8, 0.1)
                .generate_cleaned(7)
                .into_csr(),
        ] {
            let plain = LocalLcc::new(LocalConfig::sequential()).run(&g);
            for cfg in [
                LocalConfig::sequential(),
                LocalConfig::parallel(4),
                LocalConfig::vertex_parallel(4),
                LocalConfig::edge_parallel(4),
            ] {
                let compressed = LocalLcc::new(cfg.with_storage(GraphStorage::Compressed)).run(&g);
                assert_eq!(
                    plain.per_vertex_triangles, compressed.per_vertex_triangles,
                    "{:?}",
                    cfg.parallelism
                );
                assert_eq!(plain.edges_processed, compressed.edges_processed);
                for (a, b) in plain.lcc.iter().zip(compressed.lcc.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "LCC must be bit-identical");
                }
            }
        }
    }

    #[test]
    fn compressed_storage_matches_plain_on_directed_graphs() {
        let mut edges = Vec::new();
        for u in 0..40u32 {
            for v in 0..40u32 {
                if u != v && (u + v) % 3 != 0 {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(40, &edges, Direction::Directed);
        let plain = LocalLcc::new(LocalConfig::sequential()).run(&g);
        let compressed =
            LocalLcc::new(LocalConfig::sequential().with_storage(GraphStorage::Compressed)).run(&g);
        assert_eq!(plain.per_vertex_triangles, compressed.per_vertex_triangles);
    }

    #[test]
    fn count_closing_general_and_fast_path_agree() {
        let g = rmat();
        let ix = ParallelIntersector::new(IntersectMethod::Hybrid, 1, usize::MAX);
        for u in 0..g.vertex_count() as VertexId {
            let adj_u = g.neighbours(u);
            for (k, &v) in adj_u.iter().enumerate() {
                let adj_v = g.neighbours(v);
                assert_eq!(
                    count_closing(g.direction(), adj_u, adj_v, v, &ix),
                    count_closing_at(g.direction(), adj_u, adj_v, v, k, &ix),
                    "u={u} v={v}"
                );
            }
        }
    }
}
