//! Shared-memory edge-centric triangle counting and LCC over one CSR graph.
//!
//! This is the per-node computation kernel of the paper: for every vertex and every
//! incident edge, intersect the two adjacency lists (Section II-C), offsetting the
//! intersection on undirected graphs so each triangle is counted once per corner.
//! Shared-memory parallelism follows Section III-C: the *intersection* is what runs
//! in parallel, not the edge loop, which keeps thread imbalance low at the price of
//! frequent parallel-region entry — the effect measured in Figure 6 and Table III.

use crate::intersect::{IntersectMethod, ParallelIntersector};
use crate::lcc;
use rmatc_graph::types::{Direction, VertexId};
use rmatc_graph::CsrGraph;
use std::time::Instant;

/// Configuration for the shared-memory computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LocalConfig {
    /// Intersection kernel selection.
    pub method: IntersectMethod,
    /// Number of threads used to parallelize each intersection (1 = sequential).
    pub threads: usize,
    /// Intersections whose longer list is below this length run sequentially.
    pub parallel_cutoff: usize,
}

impl LocalConfig {
    /// Sequential hybrid configuration.
    pub fn sequential() -> Self {
        Self { method: IntersectMethod::Hybrid, threads: 1, parallel_cutoff: usize::MAX }
    }

    /// Parallel hybrid configuration with the default cut-off.
    pub fn parallel(threads: usize) -> Self {
        Self {
            method: IntersectMethod::Hybrid,
            threads,
            parallel_cutoff: crate::intersect::parallel::DEFAULT_PARALLEL_CUTOFF,
        }
    }

    /// Same configuration with a different intersection method.
    pub fn with_method(mut self, method: IntersectMethod) -> Self {
        self.method = method;
        self
    }
}

impl Default for LocalConfig {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Result of a shared-memory run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LocalResult {
    /// Closed-triplet count per vertex (LCC numerators before the formula's factor).
    pub per_vertex_triangles: Vec<u64>,
    /// LCC score per vertex.
    pub lcc: Vec<f64>,
    /// Global triangle count (undirected) or closed-triplet count (directed).
    pub triangle_count: u64,
    /// Number of directed edges processed.
    pub edges_processed: u64,
    /// Wall-clock time of the computation, in nanoseconds.
    pub elapsed_ns: u64,
}

impl LocalResult {
    /// Edges processed per microsecond — the throughput metric of Table III and
    /// Figure 6.
    pub fn edges_per_us(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.edges_processed as f64 / (self.elapsed_ns as f64 / 1_000.0)
    }

    /// Average LCC over all vertices.
    pub fn average_lcc(&self) -> f64 {
        lcc::average(&self.lcc)
    }
}

/// Shared-memory LCC/TC runner.
#[derive(Debug, Clone, Copy)]
pub struct LocalLcc {
    config: LocalConfig,
}

impl LocalLcc {
    /// Creates a runner with the given configuration.
    pub fn new(config: LocalConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &LocalConfig {
        &self.config
    }

    /// Runs triangle counting and LCC over `g`.
    pub fn run(&self, g: &CsrGraph) -> LocalResult {
        let intersector = ParallelIntersector::new(
            self.config.method,
            self.config.threads,
            self.config.parallel_cutoff,
        );
        let n = g.vertex_count();
        let start = Instant::now();
        let mut per_vertex = vec![0u64; n];
        let mut edges = 0u64;
        for u in 0..n as VertexId {
            let adj_u = g.neighbours(u);
            let mut t = 0u64;
            for &v in adj_u {
                edges += 1;
                let adj_v = g.neighbours(v);
                t += count_closing(g.direction(), adj_u, adj_v, v, &intersector);
            }
            per_vertex[u as usize] = t;
        }
        let elapsed_ns = start.elapsed().as_nanos() as u64;
        finish(g, per_vertex, edges, elapsed_ns)
    }
}

/// Counts the closing vertices for the edge `(u, v)` given both adjacency lists:
/// undirected graphs count only `w > v` (upper-triangle offsetting), directed graphs
/// count the full intersection (ordered pairs, Eq. 1).
pub fn count_closing(
    direction: Direction,
    adj_u: &[VertexId],
    adj_v: &[VertexId],
    v: VertexId,
    intersector: &ParallelIntersector,
) -> u64 {
    match direction {
        Direction::Undirected => {
            let a = &adj_u[adj_u.partition_point(|&x| x <= v)..];
            let b = &adj_v[adj_v.partition_point(|&x| x <= v)..];
            intersector.count(a, b)
        }
        Direction::Directed => intersector.count(adj_u, adj_v),
    }
}

/// Assembles a [`LocalResult`] from per-vertex closed-triplet counts.
pub fn finish(
    g: &CsrGraph,
    per_vertex_triangles: Vec<u64>,
    edges_processed: u64,
    elapsed_ns: u64,
) -> LocalResult {
    let degrees = g.degrees();
    let lcc = lcc::scores_from_counts(g.direction(), &degrees, &per_vertex_triangles);
    let total: u64 = per_vertex_triangles.iter().sum();
    let triangle_count = match g.direction() {
        Direction::Undirected => total / 3,
        Direction::Directed => total,
    };
    LocalResult { per_vertex_triangles, lcc, triangle_count, edges_processed, elapsed_ns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmatc_graph::gen::{GraphGenerator, RmatGenerator, WattsStrogatz};
    use rmatc_graph::reference;

    fn rmat() -> CsrGraph {
        RmatGenerator::paper(10, 8).generate_cleaned(1).into_csr()
    }

    #[test]
    fn matches_reference_on_rmat() {
        let g = rmat();
        let result = LocalLcc::new(LocalConfig::sequential()).run(&g);
        assert_eq!(result.per_vertex_triangles, reference::per_vertex_triangles(&g));
        assert_eq!(result.triangle_count, reference::count_triangles(&g));
        let expected_lcc = reference::lcc_scores(&g);
        for (a, b) in result.lcc.iter().zip(expected_lcc.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn all_methods_give_identical_counts() {
        let g = rmat();
        let baseline = LocalLcc::new(LocalConfig::sequential()).run(&g).triangle_count;
        for method in IntersectMethod::all() {
            let cfg = LocalConfig::sequential().with_method(method);
            assert_eq!(LocalLcc::new(cfg).run(&g).triangle_count, baseline, "{method:?}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = rmat();
        let seq = LocalLcc::new(LocalConfig::sequential()).run(&g);
        let mut par_cfg = LocalConfig::parallel(8);
        par_cfg.parallel_cutoff = 16; // force the parallel path even on small lists
        let par = LocalLcc::new(par_cfg).run(&g);
        assert_eq!(seq.per_vertex_triangles, par.per_vertex_triangles);
    }

    #[test]
    fn directed_graph_uses_ordered_pairs() {
        let mut edges = Vec::new();
        for u in 0..3u32 {
            for v in 0..3u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(3, &edges, Direction::Directed);
        let result = LocalLcc::new(LocalConfig::sequential()).run(&g);
        assert!(result.lcc.iter().all(|&c| (c - 1.0).abs() < 1e-12));
    }

    #[test]
    fn edges_processed_counts_directed_edges() {
        let g = rmat();
        let result = LocalLcc::new(LocalConfig::sequential()).run(&g);
        assert_eq!(result.edges_processed, g.edge_count());
        assert!(result.edges_per_us() > 0.0);
    }

    #[test]
    fn watts_strogatz_average_is_analytic() {
        let g = WattsStrogatz::new(300, 6, 0.0).generate_cleaned(2).into_csr();
        let result = LocalLcc::new(LocalConfig::parallel(4)).run(&g);
        assert!((result.average_lcc() - WattsStrogatz::lattice_lcc(6)).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = CsrGraph::from_edges(0, &[], Direction::Undirected);
        let result = LocalLcc::new(LocalConfig::sequential()).run(&g);
        assert_eq!(result.triangle_count, 0);
        assert!(result.lcc.is_empty());
        assert_eq!(result.edges_processed, 0);
    }
}
