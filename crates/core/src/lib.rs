//! The paper's primary contribution: fully asynchronous distributed-memory triangle
//! counting and local clustering coefficient (LCC) computation with RMA caching.
//!
//! The crate is organised to follow Section III of the paper:
//!
//! * [`intersect`] — the frontier-intersection kernels of Section II-C and III-C:
//!   binary search, sorted set intersection (SSI), the hybrid decision rule of
//!   Eq. (3), and shared-memory parallel variants of both (the paper's OpenMP
//!   parallelism, here expressed with rayon). This reproduction adds two faster
//!   kernels in the same cost classes — a SIMD/branchless block-compare merge
//!   ([`intersect::simd`]) and a galloping search with a running cursor
//!   ([`intersect::galloping`]) — and extends the hybrid rule to pick the best
//!   kernel of the winning class per edge. The class boundaries themselves can
//!   be re-derived for the host at runtime by an ATLAS-style micro-probe
//!   ([`intersect::calibrate`]): a fitted [`CostProfile`] replaces the
//!   analytic crossovers through the `cost_model` knob on [`LocalConfig`] and
//!   [`DistConfig`], with the deterministic analytic rule as the default.
//! * [`local`] — shared-memory edge-centric TC/LCC over one CSR graph: the code path
//!   measured in Table III and Figure 6. Besides the paper's
//!   intersection-parallel scheme, vertex-parallel and edge-parallel outer
//!   loops are available ([`local::LocalParallelism`]), with the
//!   upper-triangle offset maintained incrementally in O(1) instead of two
//!   binary searches per edge.
//! * [`distributed`] — the fully asynchronous distributed algorithm (Algorithm 3):
//!   1D partitioning, CSR windows exposed via RMA, the two-get remote-adjacency
//!   protocol, optional CLaMPI caching of both windows with LRU or degree-centrality
//!   scores, and double buffering of communication with computation. This is the
//!   code path measured in Figures 7–10.
//! * [`reuse`] — the remote-access data-reuse analyses behind Figures 1, 4 and 5.
//! * [`lcc`] — the LCC formulas (Eqs. 1 and 2), re-exported from the graph substrate
//!   so that every implementation shares one definition.
//! * [`jaccard`] — distributed Jaccard / common-neighbour similarity built on the
//!   same two-get protocol and caches, the first extension the paper's conclusion
//!   proposes as future work.
//! * [`service`] — the resident query service over the same substrate: a
//!   long-lived [`QueryEngine`] with warm caches, batched cache-deduplicated
//!   reads, admission control, and answers bit-identical to the batch
//!   pipelines.

pub mod distributed;
pub mod intersect;
pub mod jaccard;
pub mod lcc;
pub mod local;
pub mod reuse;
pub mod service;

pub use distributed::{
    CacheSpec, DistConfig, DistLcc, DistResult, RankReport, ScoreMode, TimingBreakdown,
};
pub use intersect::{CostModel, CostProfile, IntersectMethod, Intersector};
pub use jaccard::{DistJaccard, JaccardResult};
pub use local::{LocalConfig, LocalLcc, LocalParallelism, LocalResult, RangeSchedule};
pub use rmatc_rma::{FaultPlan, RetryPolicy, RmaError};
pub use service::{
    Query, QueryAnswer, QueryEngine, QueryId, QueryResponse, ServiceConfig, ServiceError,
    ServiceStats,
};
