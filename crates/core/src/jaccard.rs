//! Distributed Jaccard / common-neighbour similarity — the first "other graph
//! problem that may benefit from the proposed approach" the paper's conclusion lists
//! as future work (and cites as reference \[12\], communication-efficient Jaccard
//! similarity for distributed genome comparisons).
//!
//! The Jaccard similarity of an edge `(u, v)` is
//! `|adj(u) ∩ adj(v)| / |adj(u) ∪ adj(v)|`. Its distributed computation has exactly
//! the access pattern of LCC: every rank walks its locally owned vertices, fetches
//! the adjacency list of each (possibly remote) neighbour, and intersects — so the
//! same two-get RMA protocol, the same CLaMPI caches and the same degree-centrality
//! scores apply unchanged. This module reuses the LCC machinery end to end and only
//! swaps the per-edge kernel, demonstrating that the paper's approach generalizes
//! beyond triangle counting.

use crate::distributed::config::{DistConfig, ResolvedCaches};
use crate::distributed::pipeline::{self, Deferred, SharedReader, Started};
use crate::distributed::reader::RemoteReader;
use crate::distributed::windows::GraphWindows;
use crate::intersect::{compressed_count_closing, copy_decode_intersect, Intersector};
use rayon::prelude::*;
use rmatc_graph::compressed::decoded_len;
use rmatc_graph::partition::PartitionedGraph;
use rmatc_graph::types::VertexId;
use rmatc_graph::CsrGraph;
use rmatc_graph::GraphStorage;
use rmatc_rma::{run_ranks, Endpoint, RankStats, RmaError, ThreadTimer};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Arc;

/// Similarity score of one directed edge.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EdgeSimilarity {
    /// Source vertex (the locally owned endpoint).
    pub source: VertexId,
    /// Destination vertex.
    pub destination: VertexId,
    /// Number of common neighbours of the two endpoints.
    pub common_neighbours: u64,
    /// Jaccard similarity `|∩| / |∪|` (0 when both adjacency lists are empty).
    pub jaccard: f64,
}

/// Result of a distributed Jaccard computation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JaccardResult {
    /// Per-edge similarities, in CSR order of the global graph.
    pub edges: Vec<EdgeSimilarity>,
    /// Per-rank RMA statistics (gets, bytes, modeled communication time).
    pub rank_stats: Vec<RankStats>,
    /// Per-rank compute time (thread CPU time), in nanoseconds.
    pub compute_ns: Vec<u64>,
}

impl JaccardResult {
    /// Mean Jaccard similarity over all edges (0 for an empty graph).
    pub fn mean_jaccard(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.edges.iter().map(|e| e.jaccard).sum::<f64>() / self.edges.len() as f64
    }

    /// The `k` most similar edges in [`similarity_order`]: descending Jaccard
    /// score, equal scores broken by ascending `(source, destination)` — the
    /// result is deterministic regardless of thread count or storage mode.
    pub fn top_k(&self, k: usize) -> Vec<EdgeSimilarity> {
        top_k_edges(&self.edges, k)
    }

    /// Total RMA gets issued across ranks.
    pub fn total_gets(&self) -> u64 {
        self.rank_stats.iter().map(|s| s.gets).sum()
    }

    /// Maximum modeled communication time over ranks, in nanoseconds.
    pub fn max_comm_time_ns(&self) -> f64 {
        self.rank_stats
            .iter()
            .map(|s| s.comm_time_ns)
            .fold(0.0, f64::max)
    }
}

/// Distributed Jaccard-similarity runner sharing the LCC configuration type.
#[derive(Debug, Clone)]
pub struct DistJaccard {
    config: DistConfig,
}

impl DistJaccard {
    /// Creates a runner with the given configuration (ranks, partitioning, caching,
    /// score mode and network model are interpreted exactly as for [`crate::DistLcc`]).
    pub fn new(config: DistConfig) -> Self {
        Self { config }
    }

    /// Partitions `g` and computes the similarity of every directed edge.
    ///
    /// Panics if a rank exhausts its remote-read retry budget — only reachable
    /// under an unrecoverable [`rmatc_rma::FaultPlan`]; use
    /// [`DistJaccard::try_run`] to observe that as an error instead.
    pub fn run(&self, g: &CsrGraph) -> JaccardResult {
        self.try_run(g)
            .expect("a rank exhausted its remote-read retry budget")
    }

    /// Runs on an already partitioned graph. Panics like [`DistJaccard::run`]
    /// when a rank exhausts its retry budget.
    pub fn run_partitioned(&self, pg: &PartitionedGraph) -> JaccardResult {
        self.try_run_partitioned(pg)
            .expect("a rank exhausted its remote-read retry budget")
    }

    /// Fallible variant of [`DistJaccard::run`]: under fault injection, an
    /// exhausted retry budget surfaces as [`RmaError`] instead of panicking.
    /// Fault-free runs never error.
    pub fn try_run(&self, g: &CsrGraph) -> Result<JaccardResult, RmaError> {
        let pg = PartitionedGraph::from_global(g, self.config.scheme, self.config.ranks)
            .expect("invalid rank count for this graph");
        self.try_run_partitioned(&pg)
    }

    /// Fallible variant of [`DistJaccard::run_partitioned`] (see
    /// [`DistJaccard::try_run`]).
    pub fn try_run_partitioned(&self, pg: &PartitionedGraph) -> Result<JaccardResult, RmaError> {
        let cfg = &self.config;
        let windows = GraphWindows::build_with(pg, cfg.storage);
        let caches = match &cfg.cache {
            Some(spec) => spec.resolve(pg.global_vertex_count(), windows.adjacency_bytes() as u64),
            None => ResolvedCaches {
                offsets: None,
                adjacencies: None,
            },
        };
        let outputs = run_ranks(cfg.ranks, |rank| run_rank(rank, pg, &windows, cfg, &caches))
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        let mut edges = Vec::new();
        let mut rank_stats = Vec::with_capacity(cfg.ranks);
        let mut compute_ns = Vec::with_capacity(cfg.ranks);
        for out in outputs {
            edges.extend(out.edges);
            rank_stats.push(out.stats);
            compute_ns.push(out.compute_ns);
        }
        edges.sort_by_key(|e| (e.source, e.destination));
        Ok(JaccardResult {
            edges,
            rank_stats,
            compute_ns,
        })
    }
}

struct RankJaccard {
    edges: Vec<EdgeSimilarity>,
    stats: RankStats,
    compute_ns: u64,
}

/// The canonical ranking order of similarity records: descending Jaccard
/// score, ties broken by ascending `(source, destination)`. Scores must not
/// be NaN (ours never are — a zero union yields score 0).
pub fn similarity_order(a: &EdgeSimilarity, b: &EdgeSimilarity) -> std::cmp::Ordering {
    b.jaccard
        .partial_cmp(&a.jaccard)
        .expect("scores are not NaN")
        .then_with(|| (a.source, a.destination).cmp(&(b.source, b.destination)))
}

/// The `k` best records of `edges` under [`similarity_order`]. Input order is
/// irrelevant: equal-score prefixes resolve by vertex ids, so the result is
/// identical across thread counts, storage modes, and batch shapes.
pub fn top_k_edges(edges: &[EdgeSimilarity], k: usize) -> Vec<EdgeSimilarity> {
    let mut sorted = edges.to_vec();
    sorted.sort_by(similarity_order);
    sorted.truncate(k);
    sorted
}

/// Builds one edge's similarity record from the endpoint degrees and the
/// common-neighbour count.
pub(crate) fn edge_similarity(
    source: VertexId,
    destination: VertexId,
    degree_u: usize,
    degree_v: usize,
    common: u64,
) -> EdgeSimilarity {
    let union = degree_u as u64 + degree_v as u64 - common;
    let jaccard = if union == 0 {
        0.0
    } else {
        common as f64 / union as f64
    };
    EdgeSimilarity {
        source,
        destination,
        common_neighbours: common,
        jaccard,
    }
}

fn run_rank(
    rank: usize,
    pg: &PartitionedGraph,
    windows: &GraphWindows,
    cfg: &DistConfig,
    caches: &ResolvedCaches,
) -> Result<RankJaccard, RmaError> {
    if cfg.overlapped() {
        // Pipeline depth or intra-rank threads requested: same access
        // pattern, overlapped worker (the global edge sort in
        // `try_run_partitioned` absorbs the completion-order reshuffle).
        return run_rank_overlapped(rank, pg, windows, cfg, caches);
    }
    let part = &pg.partitions[rank];
    let mut reader = RemoteReader::new(windows, caches, cfg);
    let mut ep = Endpoint::new(rank, cfg.ranks, cfg.network).with_retry(cfg.retry);
    if let Some(plan) = cfg.faults {
        ep = ep.with_faults(plan.injector(rank));
    }
    let intersector = Intersector::new(cfg.method).with_cost_model(cfg.cost_model);
    let mut edges = Vec::new();
    ep.lock_all();
    let timer = ThreadTimer::start();
    for local_idx in 0..part.local_vertex_count() {
        let source = part.global_ids[local_idx];
        let adj_u = part.neighbours_of_local(local_idx);
        for &v in adj_u {
            let owner = pg.partitioner.owner(v);
            let v_local = pg.partitioner.local_index(v);
            let (common, degree_v) = if owner == rank {
                let adj_v = part.neighbours_of_local(v_local);
                (intersector.count(adj_u, adj_v), adj_v.len())
            } else {
                let adj_v = match reader.read_adjacency(&mut ep, owner, v_local) {
                    Ok(row) => row,
                    Err(e) => {
                        // Close the epoch before surfacing the error so the
                        // endpoint is left in a consistent state.
                        ep.unlock_all();
                        return Err(e);
                    }
                };
                match cfg.storage {
                    GraphStorage::Plain => (intersector.count(adj_u, &adj_v), adj_v.len()),
                    // The row arrived compressed: count in place over the
                    // stored words (no bound — Jaccard wants the whole
                    // intersection) and take the degree from the count word.
                    GraphStorage::Compressed => (
                        compressed_count_closing(adj_u, &adj_v, None, &cfg.cost_model),
                        decoded_len(&adj_v),
                    ),
                }
            };
            let union = adj_u.len() as u64 + degree_v as u64 - common;
            let jaccard = if union == 0 {
                0.0
            } else {
                common as f64 / union as f64
            };
            edges.push(EdgeSimilarity {
                source,
                destination: v,
                common_neighbours: common,
                jaccard,
            });
        }
    }
    let compute_ns = timer.elapsed_ns();
    ep.unlock_all();
    Ok(RankJaccard {
        edges,
        stats: ep.into_stats(),
        compute_ns,
    })
}

/// One Jaccard adjacency get in flight: the deferred read plus the edge
/// context needed to finish the similarity record at completion. The deferred
/// value is `(common, degree_v)` — under compressed storage the row length on
/// the wire is a word count, so the degree must come from the decoded row.
struct JacSlot<'a> {
    deferred: Deferred<(u64, usize)>,
    source: VertexId,
    destination: VertexId,
    adj_u: &'a [VertexId],
}

/// The overlapped counterpart of [`run_rank`]: pipelined adjacency gets and
/// optional intra-rank threads, sharing the LCC pipeline machinery
/// ([`crate::distributed::pipeline`]) with the Jaccard kernel swapped in.
fn run_rank_overlapped(
    rank: usize,
    pg: &PartitionedGraph,
    windows: &GraphWindows,
    cfg: &DistConfig,
    caches: &ResolvedCaches,
) -> Result<RankJaccard, RmaError> {
    let part = &pg.partitions[rank];
    let n_local = part.local_vertex_count();
    let workers = pipeline::worker_count(cfg, n_local);
    let reader = SharedReader::new(windows, caches, cfg, workers);
    let intersector = Intersector::new(cfg.method).with_cost_model(cfg.cost_model);
    let chunk = pipeline::chunk_size(n_local, workers);

    let outs: Vec<Result<RankJaccard, RmaError>> = (0..workers)
        .into_par_iter()
        .map(|t| {
            let lo = (t * chunk).min(n_local);
            let hi = ((t + 1) * chunk).min(n_local);
            jaccard_thread(rank, lo..hi, pg, &reader, cfg, &intersector)
        })
        .collect();
    // Lowest failing thread wins, keeping the surfaced error deterministic.
    let outs = outs.into_iter().collect::<Result<Vec<_>, _>>()?;

    let mut edges = Vec::new();
    let mut stats: Option<RankStats> = None;
    let mut compute_ns = 0u64;
    for out in outs {
        edges.extend(out.edges);
        match &mut stats {
            Some(merged) => merged.merge(&out.stats),
            None => stats = Some(out.stats),
        }
        compute_ns = compute_ns.max(out.compute_ns);
    }
    Ok(RankJaccard {
        edges,
        stats: stats.unwrap_or_else(|| RankStats::new(cfg.ranks)),
        compute_ns,
    })
}

/// One worker thread over a contiguous chunk of the rank's vertices.
fn jaccard_thread(
    rank: usize,
    range: Range<usize>,
    pg: &PartitionedGraph,
    reader: &SharedReader,
    cfg: &DistConfig,
    intersector: &Intersector,
) -> Result<RankJaccard, RmaError> {
    let mut ep = Endpoint::new(rank, cfg.ranks, cfg.network).with_retry(cfg.retry);
    if let Some(plan) = cfg.faults {
        ep = ep.with_faults(plan.injector(rank));
    }
    let mut edges = Vec::new();
    let mut fifo: VecDeque<JacSlot<'_>> = VecDeque::with_capacity(cfg.effective_pipeline_depth());
    ep.lock_all();
    let timer = ThreadTimer::start();
    let outcome = jaccard_loop(
        rank,
        range,
        pg,
        reader,
        cfg,
        intersector,
        &mut ep,
        &mut fifo,
        &mut edges,
    );
    match outcome {
        Ok(()) => {
            let compute_ns = timer.elapsed_ns();
            ep.unlock_all();
            Ok(RankJaccard {
                edges,
                stats: ep.into_stats(),
                compute_ns,
            })
        }
        Err(e) => {
            // Drop the in-flight slots and charge their cost as a final
            // flush, so the epoch closes cleanly.
            fifo.clear();
            ep.abandon_outstanding();
            ep.unlock_all();
            Err(e)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn jaccard_loop<'a>(
    rank: usize,
    range: Range<usize>,
    pg: &'a PartitionedGraph,
    reader: &SharedReader,
    cfg: &DistConfig,
    intersector: &Intersector,
    ep: &mut Endpoint,
    fifo: &mut VecDeque<JacSlot<'a>>,
    edges: &mut Vec<EdgeSimilarity>,
) -> Result<(), RmaError> {
    let part = &pg.partitions[rank];
    let depth = cfg.effective_pipeline_depth();
    for local_idx in range {
        let source = part.global_ids[local_idx];
        let adj_u = part.neighbours_of_local(local_idx);
        for &v in adj_u {
            let owner = pg.partitioner.owner(v);
            let v_local = pg.partitioner.local_index(v);
            if owner == rank {
                let adj_v = part.neighbours_of_local(v_local);
                let common = intersector.count(adj_u, adj_v);
                edges.push(edge_similarity(source, v, adj_u.len(), adj_v.len(), common));
                continue;
            }
            // Both closures return `(common, degree_v)`: the wire length of a
            // compressed row is its word count, not the degree, so the degree
            // always comes from the row itself.
            let started = if reader.storage() == GraphStorage::Compressed {
                let model = reader.model();
                reader.start_remote(
                    ep,
                    owner,
                    v_local,
                    |row| {
                        (
                            compressed_count_closing(adj_u, row, None, model),
                            decoded_len(row),
                        )
                    },
                    |src| {
                        let degree_v = decoded_len(src);
                        let (arc, common) = copy_decode_intersect(src, adj_u, None, model);
                        (arc, (common, degree_v))
                    },
                )?
            } else {
                reader.start_remote(
                    ep,
                    owner,
                    v_local,
                    |row| (intersector.count(adj_u, row), row.len()),
                    |src| {
                        let arc: Arc<[VertexId]> = Arc::from(src);
                        let common = intersector.count(adj_u, &arc);
                        let degree_v = arc.len();
                        (arc, (common, degree_v))
                    },
                )?
            };
            match started {
                Started::Immediate((common, degree_v)) => {
                    edges.push(edge_similarity(source, v, adj_u.len(), degree_v, common));
                }
                Started::Deferred(deferred) => {
                    if fifo.len() >= depth {
                        let slot = fifo.pop_front().expect("fifo is non-empty at depth");
                        complete_jaccard_slot(ep, reader, intersector, slot, edges)?;
                    }
                    fifo.push_back(JacSlot {
                        deferred,
                        source,
                        destination: v,
                        adj_u,
                    });
                }
            }
        }
    }
    // Drain the tail in issue order.
    while let Some(slot) = fifo.pop_front() {
        complete_jaccard_slot(ep, reader, intersector, slot, edges)?;
    }
    Ok(())
}

fn complete_jaccard_slot(
    ep: &mut Endpoint,
    reader: &SharedReader,
    intersector: &Intersector,
    slot: JacSlot<'_>,
    edges: &mut Vec<EdgeSimilarity>,
) -> Result<(), RmaError> {
    let JacSlot {
        deferred,
        source,
        destination,
        adj_u,
    } = slot;
    let (common, degree_v) = if reader.storage() == GraphStorage::Compressed {
        let model = reader.model();
        reader.complete(ep, deferred, |row| {
            (
                compressed_count_closing(adj_u, row, None, model),
                decoded_len(row),
            )
        })?
    } else {
        reader.complete(ep, deferred, |row| {
            (intersector.count(adj_u, row), row.len())
        })?
    };
    edges.push(edge_similarity(
        source,
        destination,
        adj_u.len(),
        degree_v,
        common,
    ));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::config::CacheSpec;
    use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
    use rmatc_graph::reference;
    use rmatc_graph::types::Direction;

    fn reference_jaccard(g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
        let common = reference::common_neighbours(g, u, v);
        let union = g.degree(u) as u64 + g.degree(v) as u64 - common;
        if union == 0 {
            0.0
        } else {
            common as f64 / union as f64
        }
    }

    #[test]
    fn clique_edges_have_maximal_similarity() {
        // In a 4-clique, every edge's endpoints share the other two vertices:
        // |∩| = 2, |∪| = 4 (each endpoint also neighbours the other) → 0.5.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(4, &edges, Direction::Undirected);
        let result = DistJaccard::new(DistConfig::non_cached(2)).run(&g);
        assert_eq!(result.edges.len(), 12);
        for e in &result.edges {
            assert_eq!(e.common_neighbours, 2);
            assert!((e.jaccard - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_reference_on_every_edge_across_rank_counts() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(17).into_csr();
        for ranks in [1usize, 2, 4] {
            let result = DistJaccard::new(DistConfig::non_cached(ranks)).run(&g);
            assert_eq!(result.edges.len() as u64, g.edge_count());
            for e in &result.edges {
                let expected = reference_jaccard(&g, e.source, e.destination);
                assert!(
                    (e.jaccard - expected).abs() < 1e-12,
                    "edge ({}, {}) at {ranks} ranks",
                    e.source,
                    e.destination
                );
            }
        }
    }

    #[test]
    fn caching_does_not_change_scores_but_cuts_gets() {
        let g = RmatGenerator::paper(9, 16).generate_cleaned(19).into_csr();
        let plain = DistJaccard::new(DistConfig::non_cached(4)).run(&g);
        let mut cfg = DistConfig::non_cached(4);
        cfg.cache = Some(CacheSpec::paper(g.csr_size_bytes() as usize));
        let cached = DistJaccard::new(cfg.with_degree_scores()).run(&g);
        assert_eq!(plain.edges, cached.edges);
        assert!(cached.total_gets() < plain.total_gets());
        assert!(cached.max_comm_time_ns() < plain.max_comm_time_ns());
    }

    #[test]
    fn top_k_and_mean_are_consistent() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(23).into_csr();
        let result = DistJaccard::new(DistConfig::non_cached(2)).run(&g);
        let mean = result.mean_jaccard();
        assert!((0.0..=1.0).contains(&mean));
        let top = result.top_k(10);
        assert!(top.len() <= 10);
        assert!(top.windows(2).all(|w| w[0].jaccard >= w[1].jaccard));
        if let Some(best) = top.first() {
            assert!(best.jaccard >= mean);
        }
    }

    #[test]
    fn faulted_runs_with_retries_match_fault_free_scores() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(29).into_csr();
        let clean = DistJaccard::new(DistConfig::non_cached(3)).run(&g);
        let cfg = DistConfig::non_cached(3)
            .with_faults(rmatc_rma::FaultPlan::light(11))
            .with_retry(rmatc_rma::RetryPolicy {
                max_attempts: 16,
                ..Default::default()
            });
        let faulted = DistJaccard::new(cfg)
            .try_run(&g)
            .expect("light faults are recoverable");
        assert_eq!(clean.edges, faulted.edges);
        assert!(
            faulted
                .rank_stats
                .iter()
                .map(|s| s.fault_events())
                .sum::<u64>()
                > 0,
            "the light plan must actually inject faults"
        );
    }

    #[test]
    fn overlapped_runs_match_sequential_scores_exactly() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(31).into_csr();
        let baseline = DistJaccard::new(DistConfig::non_cached(2)).run(&g);
        for (depth, threads) in [(4usize, 1usize), (1, 4), (8, 2)] {
            let mut cfg = DistConfig::non_cached(2);
            cfg.pipeline_depth = depth;
            cfg.intra_threads = threads;
            let out = DistJaccard::new(cfg).run(&g);
            assert_eq!(
                out.edges, baseline.edges,
                "depth {depth}, threads {threads}"
            );
            // Non-cached: gets are per-edge deterministic however the
            // overlapped loop interleaves them.
            assert_eq!(out.total_gets(), baseline.total_gets());
        }
    }

    #[test]
    fn overlapped_cached_runs_match_sequential_scores_exactly() {
        let g = RmatGenerator::paper(9, 16).generate_cleaned(19).into_csr();
        let mut cfg = DistConfig::non_cached(4);
        cfg.cache = Some(CacheSpec::paper(g.csr_size_bytes() as usize));
        let cfg = cfg.with_degree_scores();
        let baseline = DistJaccard::new(cfg).run(&g);
        let mut piped = cfg;
        piped.pipeline_depth = 6;
        let out = DistJaccard::new(piped).run(&g);
        assert_eq!(out.edges, baseline.edges);
        // Get counts are only comparable over the *same* windows: the cache's
        // slot hash keys on the window id, which `GraphWindows::build`
        // allocates afresh per run. Over shared windows, single-threaded
        // pipelining performs cache operations in issue order — the same
        // sequence as the sequential rank, so the same hit pattern.
        let pg = PartitionedGraph::from_global(&g, cfg.scheme, cfg.ranks).unwrap();
        let windows = GraphWindows::build_with(&pg, cfg.storage);
        let caches = cfg
            .cache
            .as_ref()
            .unwrap()
            .resolve(pg.global_vertex_count(), windows.adjacency_bytes() as u64);
        for rank in 0..cfg.ranks {
            let seq = run_rank(rank, &pg, &windows, &cfg, &caches).unwrap();
            let pip = run_rank(rank, &pg, &windows, &piped, &caches).unwrap();
            assert_eq!(pip.stats.gets, seq.stats.gets, "rank {rank}");
            assert_eq!(pip.stats.bytes, seq.stats.bytes, "rank {rank}");
            assert_eq!(pip.stats.local_reads, seq.stats.local_reads, "rank {rank}");
        }
    }

    #[test]
    fn compressed_storage_matches_plain_scores_everywhere() {
        // Jaccard over compressed windows — sequential, cached and
        // overlapped — must reproduce the plain-storage edges bit for bit.
        let g = RmatGenerator::paper(8, 8).generate_cleaned(17).into_csr();
        let plain = DistJaccard::new(DistConfig::non_cached(4)).run(&g);
        let base = DistConfig::non_cached(4).with_storage(GraphStorage::Compressed);
        assert_eq!(DistJaccard::new(base).run(&g).edges, plain.edges);
        let mut cached = base;
        cached.cache = Some(CacheSpec::paper(g.csr_size_bytes() as usize));
        let cached = cached.with_degree_scores();
        assert_eq!(DistJaccard::new(cached).run(&g).edges, plain.edges);
        let mut piped = cached;
        piped.pipeline_depth = 6;
        piped.intra_threads = 2;
        assert_eq!(DistJaccard::new(piped).run(&g).edges, plain.edges);
    }

    #[test]
    fn empty_graph_yields_empty_result() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (1, 0)], Direction::Undirected);
        let result = DistJaccard::new(DistConfig::non_cached(1)).run(&g);
        assert_eq!(result.edges.len(), 2);
        assert_eq!(result.edges[0].common_neighbours, 0);
        assert_eq!(result.edges[0].jaccard, 0.0);
        assert_eq!(result.total_gets(), 0);
    }
}
