//! Distributed Jaccard / common-neighbour similarity — the first "other graph
//! problem that may benefit from the proposed approach" the paper's conclusion lists
//! as future work (and cites as reference \[12\], communication-efficient Jaccard
//! similarity for distributed genome comparisons).
//!
//! The Jaccard similarity of an edge `(u, v)` is
//! `|adj(u) ∩ adj(v)| / |adj(u) ∪ adj(v)|`. Its distributed computation has exactly
//! the access pattern of LCC: every rank walks its locally owned vertices, fetches
//! the adjacency list of each (possibly remote) neighbour, and intersects — so the
//! same two-get RMA protocol, the same CLaMPI caches and the same degree-centrality
//! scores apply unchanged. This module reuses the LCC machinery end to end and only
//! swaps the per-edge kernel, demonstrating that the paper's approach generalizes
//! beyond triangle counting.

use crate::distributed::config::{DistConfig, ResolvedCaches};
use crate::distributed::reader::RemoteReader;
use crate::distributed::windows::GraphWindows;
use crate::intersect::Intersector;
use rmatc_graph::partition::PartitionedGraph;
use rmatc_graph::types::VertexId;
use rmatc_graph::CsrGraph;
use rmatc_rma::{run_ranks, Endpoint, RankStats, RmaError, ThreadTimer};

/// Similarity score of one directed edge.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EdgeSimilarity {
    /// Source vertex (the locally owned endpoint).
    pub source: VertexId,
    /// Destination vertex.
    pub destination: VertexId,
    /// Number of common neighbours of the two endpoints.
    pub common_neighbours: u64,
    /// Jaccard similarity `|∩| / |∪|` (0 when both adjacency lists are empty).
    pub jaccard: f64,
}

/// Result of a distributed Jaccard computation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JaccardResult {
    /// Per-edge similarities, in CSR order of the global graph.
    pub edges: Vec<EdgeSimilarity>,
    /// Per-rank RMA statistics (gets, bytes, modeled communication time).
    pub rank_stats: Vec<RankStats>,
    /// Per-rank compute time (thread CPU time), in nanoseconds.
    pub compute_ns: Vec<u64>,
}

impl JaccardResult {
    /// Mean Jaccard similarity over all edges (0 for an empty graph).
    pub fn mean_jaccard(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.edges.iter().map(|e| e.jaccard).sum::<f64>() / self.edges.len() as f64
    }

    /// The `k` most similar edges, sorted by descending Jaccard score.
    pub fn top_k(&self, k: usize) -> Vec<EdgeSimilarity> {
        let mut sorted = self.edges.clone();
        sorted.sort_by(|a, b| {
            b.jaccard
                .partial_cmp(&a.jaccard)
                .expect("scores are not NaN")
        });
        sorted.truncate(k);
        sorted
    }

    /// Total RMA gets issued across ranks.
    pub fn total_gets(&self) -> u64 {
        self.rank_stats.iter().map(|s| s.gets).sum()
    }

    /// Maximum modeled communication time over ranks, in nanoseconds.
    pub fn max_comm_time_ns(&self) -> f64 {
        self.rank_stats
            .iter()
            .map(|s| s.comm_time_ns)
            .fold(0.0, f64::max)
    }
}

/// Distributed Jaccard-similarity runner sharing the LCC configuration type.
#[derive(Debug, Clone)]
pub struct DistJaccard {
    config: DistConfig,
}

impl DistJaccard {
    /// Creates a runner with the given configuration (ranks, partitioning, caching,
    /// score mode and network model are interpreted exactly as for [`crate::DistLcc`]).
    pub fn new(config: DistConfig) -> Self {
        Self { config }
    }

    /// Partitions `g` and computes the similarity of every directed edge.
    ///
    /// Panics if a rank exhausts its remote-read retry budget — only reachable
    /// under an unrecoverable [`rmatc_rma::FaultPlan`]; use
    /// [`DistJaccard::try_run`] to observe that as an error instead.
    pub fn run(&self, g: &CsrGraph) -> JaccardResult {
        self.try_run(g)
            .expect("a rank exhausted its remote-read retry budget")
    }

    /// Runs on an already partitioned graph. Panics like [`DistJaccard::run`]
    /// when a rank exhausts its retry budget.
    pub fn run_partitioned(&self, pg: &PartitionedGraph) -> JaccardResult {
        self.try_run_partitioned(pg)
            .expect("a rank exhausted its remote-read retry budget")
    }

    /// Fallible variant of [`DistJaccard::run`]: under fault injection, an
    /// exhausted retry budget surfaces as [`RmaError`] instead of panicking.
    /// Fault-free runs never error.
    pub fn try_run(&self, g: &CsrGraph) -> Result<JaccardResult, RmaError> {
        let pg = PartitionedGraph::from_global(g, self.config.scheme, self.config.ranks)
            .expect("invalid rank count for this graph");
        self.try_run_partitioned(&pg)
    }

    /// Fallible variant of [`DistJaccard::run_partitioned`] (see
    /// [`DistJaccard::try_run`]).
    pub fn try_run_partitioned(&self, pg: &PartitionedGraph) -> Result<JaccardResult, RmaError> {
        let windows = GraphWindows::build(pg);
        let cfg = &self.config;
        let caches = match &cfg.cache {
            Some(spec) => spec.resolve(pg.global_vertex_count(), windows.adjacency_bytes() as u64),
            None => ResolvedCaches {
                offsets: None,
                adjacencies: None,
            },
        };
        let outputs = run_ranks(cfg.ranks, |rank| run_rank(rank, pg, &windows, cfg, &caches))
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;
        let mut edges = Vec::new();
        let mut rank_stats = Vec::with_capacity(cfg.ranks);
        let mut compute_ns = Vec::with_capacity(cfg.ranks);
        for out in outputs {
            edges.extend(out.edges);
            rank_stats.push(out.stats);
            compute_ns.push(out.compute_ns);
        }
        edges.sort_by_key(|e| (e.source, e.destination));
        Ok(JaccardResult {
            edges,
            rank_stats,
            compute_ns,
        })
    }
}

struct RankJaccard {
    edges: Vec<EdgeSimilarity>,
    stats: RankStats,
    compute_ns: u64,
}

fn run_rank(
    rank: usize,
    pg: &PartitionedGraph,
    windows: &GraphWindows,
    cfg: &DistConfig,
    caches: &ResolvedCaches,
) -> Result<RankJaccard, RmaError> {
    let part = &pg.partitions[rank];
    let mut reader = RemoteReader::new(windows, caches, cfg);
    let mut ep = Endpoint::new(rank, cfg.ranks, cfg.network).with_retry(cfg.retry);
    if let Some(plan) = cfg.faults {
        ep = ep.with_faults(plan.injector(rank));
    }
    let intersector = Intersector::new(cfg.method).with_cost_model(cfg.cost_model);
    let mut edges = Vec::new();
    ep.lock_all();
    let timer = ThreadTimer::start();
    for local_idx in 0..part.local_vertex_count() {
        let source = part.global_ids[local_idx];
        let adj_u = part.neighbours_of_local(local_idx);
        for &v in adj_u {
            let owner = pg.partitioner.owner(v);
            let v_local = pg.partitioner.local_index(v);
            let (common, degree_v) = if owner == rank {
                let adj_v = part.neighbours_of_local(v_local);
                (intersector.count(adj_u, adj_v), adj_v.len())
            } else {
                let adj_v = match reader.read_adjacency(&mut ep, owner, v_local) {
                    Ok(row) => row,
                    Err(e) => {
                        // Close the epoch before surfacing the error so the
                        // endpoint is left in a consistent state.
                        ep.unlock_all();
                        return Err(e);
                    }
                };
                (intersector.count(adj_u, &adj_v), adj_v.len())
            };
            let union = adj_u.len() as u64 + degree_v as u64 - common;
            let jaccard = if union == 0 {
                0.0
            } else {
                common as f64 / union as f64
            };
            edges.push(EdgeSimilarity {
                source,
                destination: v,
                common_neighbours: common,
                jaccard,
            });
        }
    }
    let compute_ns = timer.elapsed_ns();
    ep.unlock_all();
    Ok(RankJaccard {
        edges,
        stats: ep.into_stats(),
        compute_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::config::CacheSpec;
    use rmatc_graph::gen::{GraphGenerator, RmatGenerator};
    use rmatc_graph::reference;
    use rmatc_graph::types::Direction;

    fn reference_jaccard(g: &CsrGraph, u: VertexId, v: VertexId) -> f64 {
        let common = reference::common_neighbours(g, u, v);
        let union = g.degree(u) as u64 + g.degree(v) as u64 - common;
        if union == 0 {
            0.0
        } else {
            common as f64 / union as f64
        }
    }

    #[test]
    fn clique_edges_have_maximal_similarity() {
        // In a 4-clique, every edge's endpoints share the other two vertices:
        // |∩| = 2, |∪| = 4 (each endpoint also neighbours the other) → 0.5.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        let g = CsrGraph::from_edges(4, &edges, Direction::Undirected);
        let result = DistJaccard::new(DistConfig::non_cached(2)).run(&g);
        assert_eq!(result.edges.len(), 12);
        for e in &result.edges {
            assert_eq!(e.common_neighbours, 2);
            assert!((e.jaccard - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_reference_on_every_edge_across_rank_counts() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(17).into_csr();
        for ranks in [1usize, 2, 4] {
            let result = DistJaccard::new(DistConfig::non_cached(ranks)).run(&g);
            assert_eq!(result.edges.len() as u64, g.edge_count());
            for e in &result.edges {
                let expected = reference_jaccard(&g, e.source, e.destination);
                assert!(
                    (e.jaccard - expected).abs() < 1e-12,
                    "edge ({}, {}) at {ranks} ranks",
                    e.source,
                    e.destination
                );
            }
        }
    }

    #[test]
    fn caching_does_not_change_scores_but_cuts_gets() {
        let g = RmatGenerator::paper(9, 16).generate_cleaned(19).into_csr();
        let plain = DistJaccard::new(DistConfig::non_cached(4)).run(&g);
        let mut cfg = DistConfig::non_cached(4);
        cfg.cache = Some(CacheSpec::paper(g.csr_size_bytes() as usize));
        let cached = DistJaccard::new(cfg.with_degree_scores()).run(&g);
        assert_eq!(plain.edges, cached.edges);
        assert!(cached.total_gets() < plain.total_gets());
        assert!(cached.max_comm_time_ns() < plain.max_comm_time_ns());
    }

    #[test]
    fn top_k_and_mean_are_consistent() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(23).into_csr();
        let result = DistJaccard::new(DistConfig::non_cached(2)).run(&g);
        let mean = result.mean_jaccard();
        assert!((0.0..=1.0).contains(&mean));
        let top = result.top_k(10);
        assert!(top.len() <= 10);
        assert!(top.windows(2).all(|w| w[0].jaccard >= w[1].jaccard));
        if let Some(best) = top.first() {
            assert!(best.jaccard >= mean);
        }
    }

    #[test]
    fn faulted_runs_with_retries_match_fault_free_scores() {
        let g = RmatGenerator::paper(8, 8).generate_cleaned(29).into_csr();
        let clean = DistJaccard::new(DistConfig::non_cached(3)).run(&g);
        let cfg = DistConfig::non_cached(3)
            .with_faults(rmatc_rma::FaultPlan::light(11))
            .with_retry(rmatc_rma::RetryPolicy {
                max_attempts: 16,
                ..Default::default()
            });
        let faulted = DistJaccard::new(cfg)
            .try_run(&g)
            .expect("light faults are recoverable");
        assert_eq!(clean.edges, faulted.edges);
        assert!(
            faulted
                .rank_stats
                .iter()
                .map(|s| s.fault_events())
                .sum::<u64>()
                > 0,
            "the light plan must actually inject faults"
        );
    }

    #[test]
    fn empty_graph_yields_empty_result() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (1, 0)], Direction::Undirected);
        let result = DistJaccard::new(DistConfig::non_cached(1)).run(&g);
        assert_eq!(result.edges.len(), 2);
        assert_eq!(result.edges[0].common_neighbours, 0);
        assert_eq!(result.edges[0].jaccard, 0.0);
        assert_eq!(result.total_gets(), 0);
    }
}
