//! Resident similarity / LCC query service over the distributed substrate.
//!
//! The batch pipelines ([`crate::DistJaccard`], [`crate::DistLcc`]) answer one
//! whole-graph question per run and tear their caches down afterwards. This
//! module keeps the machinery *resident*: a [`QueryEngine`] owns a partitioned
//! graph, its RMA windows and warm per-rank CLaMPI caches across calls, and
//! answers point queries ([`Query`]) against them — the "long-lived similarity
//! service under heavy traffic" the roadmap's north star describes, where the
//! paper's cache hit rate becomes the service's capacity multiplier.
//!
//! # Batching and read deduplication
//!
//! Queries are admitted into a bounded queue and executed in batches
//! ([`QueryEngine::run_batch`]). Before any network traffic, the batch is
//! *planned*: every remote adjacency row the batch needs is collected as a
//! `(owner, local index)` key, sorted and deduplicated, and fetched exactly
//! once — a hub row referenced by twenty queries in the batch crosses the
//! (modeled) network at most once, and later batches are served straight from
//! the warm cache. The requested-reads / unique-fetches quotient is reported
//! as [`ServiceStats::dedup_ratio`].
//!
//! # Answer equivalence
//!
//! Every answer is produced by the *same* kernels over the *same* operands the
//! batch pipelines use (`Intersector::count`, [`crate::local::count_closing_at`],
//! the fused compressed kernels), so service answers are bit-identical to
//! `DistJaccard` / `DistLcc` results — `tests/service.rs` holds the engine to
//! that across storage modes, eviction policies and batch sizes.
//!
//! # Overload and deadlines
//!
//! Admission control is explicit: a full queue sheds the query with
//! [`ServiceError::Overloaded`] instead of blocking, and a per-query deadline
//! (in the same virtual-time nanoseconds the [`rmatc_rma::RetryPolicy`]
//! timeout uses) expires queries that waited too long with
//! [`ServiceError::DeadlineExceeded`]. No query is ever silently dropped:
//! `accepted == completed + failed + queued` holds at every point
//! ([`ServiceStats::reconciles`]).
//!
//! See `docs/SERVICE.md` for the operational guide and `examples/service.rs`
//! for a runnable tour.

mod engine;
mod stats;

pub use engine::{QueryEngine, QueryResponse};
pub use stats::{LatencyPercentiles, ServiceStats};

use crate::distributed::config::DistConfig;
use crate::jaccard::EdgeSimilarity;
use rmatc_graph::types::VertexId;
use rmatc_rma::RmaError;

/// A point query against the resident engine.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Query {
    /// Number of common neighbours of `u` and `v`.
    CommonNeighbors {
        /// First endpoint (the query is routed to its owner rank).
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// Full similarity record of the pair `(u, v)` — common neighbours and
    /// Jaccard score, exactly as [`crate::DistJaccard`] computes it for edges.
    Jaccard {
        /// First endpoint (the query is routed to its owner rank).
        u: VertexId,
        /// Second endpoint.
        v: VertexId,
    },
    /// The `k` most similar neighbours of `u`, ordered by
    /// [`crate::jaccard::similarity_order`] (descending score, deterministic
    /// tie-break).
    TopK {
        /// The vertex whose neighbourhood is ranked.
        u: VertexId,
        /// Number of entries to return.
        k: usize,
    },
    /// Local clustering coefficient of `v`, exactly as [`crate::DistLcc`]
    /// computes it.
    LccOf {
        /// The vertex whose LCC is computed.
        v: VertexId,
    },
}

impl Query {
    /// The vertex whose owner rank executes this query (its adjacency row is
    /// the local operand of every kernel the query runs).
    pub fn home_vertex(&self) -> VertexId {
        match *self {
            Query::CommonNeighbors { u, .. } | Query::Jaccard { u, .. } | Query::TopK { u, .. } => {
                u
            }
            Query::LccOf { v } => v,
        }
    }
}

/// The answer to one [`Query`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum QueryAnswer {
    /// Answer to [`Query::CommonNeighbors`].
    CommonNeighbors(u64),
    /// Answer to [`Query::Jaccard`].
    Jaccard(EdgeSimilarity),
    /// Answer to [`Query::TopK`].
    TopK(Vec<EdgeSimilarity>),
    /// Answer to [`Query::LccOf`].
    Lcc(f64),
}

/// Ticket identifying an admitted query; returned by [`QueryEngine::submit`]
/// and echoed on the matching [`QueryResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

/// Typed failure of one query (or of its admission).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The admission queue was full: the query was shed, not enqueued.
    /// Submit again after draining a batch (`run_batch`).
    Overloaded {
        /// Queue depth at rejection time (== capacity).
        queue_depth: usize,
        /// The configured capacity.
        capacity: usize,
    },
    /// The query's deadline elapsed (in virtual-time nanoseconds, the same
    /// clock [`rmatc_rma::RetryPolicy::timeout_ns`] runs on) before the
    /// engine got to it.
    DeadlineExceeded {
        /// Virtual nanoseconds the query waited in the queue.
        waited_ns: f64,
        /// The deadline it carried.
        deadline_ns: f64,
    },
    /// A query endpoint is outside the graph's vertex range; rejected at
    /// submission.
    UnknownVertex {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices in the resident graph.
        vertex_count: usize,
    },
    /// A remote read the query depended on exhausted its retry budget (only
    /// reachable under an unrecoverable [`rmatc_rma::FaultPlan`]). The engine
    /// itself stays healthy: subsequent queries are unaffected.
    Read(RmaError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded {
                queue_depth,
                capacity,
            } => write!(f, "queue full ({queue_depth}/{capacity}): query shed"),
            ServiceError::DeadlineExceeded {
                waited_ns,
                deadline_ns,
            } => write!(
                f,
                "deadline exceeded: waited {waited_ns:.0} ns of {deadline_ns:.0} ns"
            ),
            ServiceError::UnknownVertex {
                vertex,
                vertex_count,
            } => write!(
                f,
                "vertex {vertex} outside graph of {vertex_count} vertices"
            ),
            ServiceError::Read(e) => write!(f, "remote read failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Read(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RmaError> for ServiceError {
    fn from(e: RmaError) -> Self {
        ServiceError::Read(e)
    }
}

/// Configuration of a [`QueryEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// The distributed substrate: rank count, partitioning, caching, storage,
    /// network model, retry policy and fault plan — interpreted exactly as
    /// for the batch pipelines.
    pub dist: DistConfig,
    /// Admission-queue capacity; a submit against a full queue is shed with
    /// [`ServiceError::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum queries drained into one batch window by
    /// [`QueryEngine::run_batch`] (values below 1 behave as 1).
    pub batch_size: usize,
    /// Default per-query deadline in virtual nanoseconds; `None` means
    /// queries wait indefinitely. Override per query with
    /// [`QueryEngine::submit_with_deadline`].
    pub default_deadline_ns: Option<f64>,
}

impl ServiceConfig {
    /// Service defaults (1024-deep queue, 64-query batches, no deadline) over
    /// the given distributed configuration.
    pub fn new(dist: DistConfig) -> Self {
        Self {
            dist,
            queue_capacity: 1024,
            batch_size: 64,
            default_deadline_ns: None,
        }
    }

    /// Same configuration with a different admission-queue capacity.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Same configuration with a different batch window size.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch;
        self
    }

    /// Same configuration with a default per-query deadline (virtual ns).
    pub fn with_deadline_ns(mut self, deadline_ns: f64) -> Self {
        self.default_deadline_ns = Some(deadline_ns);
        self
    }
}
