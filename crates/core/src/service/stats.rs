//! Service-level statistics: admission/outcome counters, the batch planner's
//! dedup accounting, merged RMA and cache counters, and latency percentiles
//! over both timebases.

use rmatc_clampi::CacheStats;
use rmatc_rma::RankStats;

/// Nearest-rank latency percentiles over one timebase, in nanoseconds.
/// All zero when no query has completed yet.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct LatencyPercentiles {
    /// Median latency.
    pub p50_ns: f64,
    /// 90th percentile latency.
    pub p90_ns: f64,
    /// 99th percentile latency.
    pub p99_ns: f64,
    /// Worst observed latency.
    pub max_ns: f64,
}

impl LatencyPercentiles {
    /// Nearest-rank percentiles over `samples` (order-insensitive; the slice
    /// is copied and sorted). Empty input yields all-zero percentiles.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are not NaN"));
        let at = |p: f64| {
            // Nearest-rank: the smallest sample with at least p of the mass
            // at or below it.
            let rank = (p * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        Self {
            p50_ns: at(0.50),
            p90_ns: at(0.90),
            p99_ns: at(0.99),
            max_ns: *sorted.last().expect("non-empty"),
        }
    }
}

/// Point-in-time statistics snapshot of a [`crate::service::QueryEngine`].
///
/// Admission accounting is conservation-based: every submission is counted
/// exactly once as accepted, shed, or rejected, and every accepted query is
/// exactly one of completed, failed, or still queued —
/// [`ServiceStats::reconciles`] checks both identities.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServiceStats {
    /// Total `submit` calls, including shed and rejected ones.
    pub submitted: u64,
    /// Queries admitted into the queue.
    pub accepted: u64,
    /// Queries shed at admission because the queue was full.
    pub shed_overload: u64,
    /// Queries rejected at admission for naming unknown vertices.
    pub rejected_invalid: u64,
    /// Accepted queries answered successfully.
    pub completed: u64,
    /// Accepted queries that failed (deadline expiry or read failure).
    pub failed: u64,
    /// Accepted queries still waiting in the queue.
    pub queue_depth: usize,
    /// Batch windows executed so far.
    pub batches: u64,
    /// Remote adjacency rows referenced by batch members, before dedup.
    pub row_reads: u64,
    /// Remote adjacency rows actually fetched after sort + dedup.
    pub unique_row_reads: u64,
    /// The engine's virtual clock (modeled communication + measured compute),
    /// in nanoseconds.
    pub virtual_now_ns: f64,
    /// RMA-layer counters merged across all rank endpoints.
    pub rma: RankStats,
    /// Offsets-cache counters merged across ranks (when caching is enabled).
    pub offsets_cache: Option<CacheStats>,
    /// Adjacency-cache counters merged across ranks (when caching is enabled).
    pub adjacency_cache: Option<CacheStats>,
    /// Latency percentiles in wall-clock time.
    pub wall_latency: LatencyPercentiles,
    /// Latency percentiles in virtual time (the clock deadlines run on).
    pub virtual_latency: LatencyPercentiles,
}

impl ServiceStats {
    /// Requested-reads / unique-fetches quotient of the batch planner: how
    /// many times each fetched row was used within its batch window, on
    /// average. 1.0 means no overlap (or no remote reads at all); hub-heavy
    /// batches push this well above 1.
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique_row_reads == 0 {
            1.0
        } else {
            self.row_reads as f64 / self.unique_row_reads as f64
        }
    }

    /// Adjacency-cache hit rate across ranks, when caching is enabled.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.adjacency_cache.as_ref().map(|c| c.hit_rate())
    }

    /// The conservation identities: `submitted = accepted + shed + rejected`
    /// and `accepted = completed + failed + queued`. Holds at every point in
    /// the engine's lifetime — no query is ever silently dropped.
    pub fn reconciles(&self) -> bool {
        self.submitted == self.accepted + self.shed_overload + self.rejected_invalid
            && self.accepted == self.completed + self.failed + self.queue_depth as u64
    }
}
