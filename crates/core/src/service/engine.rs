//! The resident [`QueryEngine`]: warm windows, per-rank endpoints and caches,
//! bounded admission, and the batch planner that sorts/dedups adjacency reads.

use super::stats::{LatencyPercentiles, ServiceStats};
use super::{Query, QueryAnswer, QueryId, ServiceConfig, ServiceError};
use crate::distributed::config::{ResolvedCaches, ScoreMode};
use crate::distributed::windows::GraphWindows;
use crate::intersect::{compressed_count_closing, CostModel, Intersector, ParallelIntersector};
use crate::jaccard::{edge_similarity, top_k_edges, EdgeSimilarity};
use crate::lcc::lcc_from_triangles;
use crate::local::{compressed_count_closing_at, count_closing_at};
use rmatc_clampi::{CacheStats, RowRef, ShardedCachedWindow};
use rmatc_graph::compressed::decoded_len;
use rmatc_graph::partition::PartitionedGraph;
use rmatc_graph::types::{Direction, VertexId};
use rmatc_graph::{CsrGraph, GraphStorage};
use rmatc_rma::{Endpoint, RankStats, RmaError, ThreadTimer};
use std::collections::VecDeque;
use std::time::Instant;

/// One rank's resident serving state: a long-lived endpoint (its passive-target
/// epoch stays open for the engine's lifetime) plus the warm CLaMPI caches over
/// the shared windows. One shard per cache: the serving loop is sequential, and
/// one shard is bit-identical to the single-threaded wrapper.
struct RankLane {
    ep: Endpoint,
    offsets_cache: Option<ShardedCachedWindow<u64>>,
    adj_cache: Option<ShardedCachedWindow<VertexId>>,
}

/// The kernel/selection knobs every query runs with, mirroring the batch
/// pipelines: `intersector` is the Jaccard pair kernel, `pintersector` the
/// (sequential) LCC closing-count kernel, `model` drives the fused compressed
/// kernels.
struct Kernels {
    intersector: Intersector,
    pintersector: ParallelIntersector,
    model: CostModel,
    storage: GraphStorage,
    score_mode: ScoreMode,
    direction: Direction,
}

/// An admitted query waiting in the bounded queue.
struct Pending {
    id: QueryId,
    query: Query,
    deadline_ns: Option<f64>,
    enqueued_vns: f64,
    enqueued_wall: Instant,
}

/// The engine's answer to one admitted query, with its end-to-end latency in
/// both timebases (measured at batch completion — queries in one batch window
/// complete together).
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The ticket returned by [`QueryEngine::submit`].
    pub id: QueryId,
    /// The query this answers.
    pub query: Query,
    /// The answer, or the typed per-query failure.
    pub result: Result<QueryAnswer, ServiceError>,
    /// Wall-clock nanoseconds from submission to batch completion.
    pub wall_ns: u64,
    /// Virtual (modeled) nanoseconds from submission to batch completion —
    /// the same clock the network cost model and retry timeouts run on.
    pub virtual_ns: f64,
}

/// Per-batch read-plan accounting of one rank group.
#[derive(Default)]
struct GroupMetrics {
    row_refs: u64,
    unique_rows: u64,
}

/// A resident query service over a partitioned graph (see the
/// [module docs](crate::service)).
///
/// The engine owns the graph, its RMA windows, one endpoint per rank with the
/// access epoch held open, and warm CLaMPI caches that persist across batches
/// — the paper's cache hit rate compounds across the query stream instead of
/// resetting per run.
pub struct QueryEngine {
    pg: PartitionedGraph,
    windows: GraphWindows,
    lanes: Vec<RankLane>,
    kernels: Kernels,
    config: ServiceConfig,
    queue: VecDeque<Pending>,
    next_id: u64,
    // Admission/outcome counters; `ServiceStats::reconciles` ties them together.
    submitted: u64,
    accepted: u64,
    shed_overload: u64,
    rejected_invalid: u64,
    completed: u64,
    failed: u64,
    // Batch planner accounting.
    batches: u64,
    row_refs: u64,
    unique_rows: u64,
    // Measured compute time of all batch windows (thread CPU ns); together
    // with the endpoints' modeled communication time this is the engine's
    // virtual clock.
    compute_ns_total: u64,
    wall_latencies_ns: Vec<f64>,
    virtual_latencies_ns: Vec<f64>,
}

impl QueryEngine {
    /// Partitions `g` per the service's [`crate::DistConfig`] and builds the
    /// resident engine.
    pub fn new(g: &CsrGraph, config: ServiceConfig) -> Self {
        let pg = PartitionedGraph::from_global(g, config.dist.scheme, config.dist.ranks)
            .expect("invalid rank count for this graph");
        Self::from_partitioned(pg, config)
    }

    /// Builds the engine over an already partitioned graph (which it owns for
    /// its lifetime — the windows borrow into it logically, the service keeps
    /// them warm).
    pub fn from_partitioned(pg: PartitionedGraph, config: ServiceConfig) -> Self {
        let dist = &config.dist;
        let windows = GraphWindows::build_with(&pg, dist.storage);
        let caches = match &dist.cache {
            Some(spec) => spec.resolve(pg.global_vertex_count(), windows.adjacency_bytes() as u64),
            None => ResolvedCaches {
                offsets: None,
                adjacencies: None,
            },
        };
        let lanes = (0..dist.ranks)
            .map(|rank| {
                let mut ep = Endpoint::new(rank, dist.ranks, dist.network).with_retry(dist.retry);
                if let Some(plan) = dist.faults {
                    ep = ep.with_faults(plan.injector(rank));
                }
                // The resident epoch: opened once here, closed in Drop.
                ep.lock_all();
                RankLane {
                    ep,
                    offsets_cache: caches
                        .offsets
                        .map(|cfg| ShardedCachedWindow::new(windows.offsets.clone(), cfg, 1)),
                    adj_cache: caches
                        .adjacencies
                        .map(|cfg| ShardedCachedWindow::new(windows.adjacencies.clone(), cfg, 1)),
                }
            })
            .collect();
        let kernels = Kernels {
            intersector: Intersector::new(dist.method).with_cost_model(dist.cost_model),
            pintersector: ParallelIntersector::new(dist.method, 1, usize::MAX)
                .with_cost_model(dist.cost_model),
            model: dist.cost_model,
            storage: dist.storage,
            score_mode: dist.score_mode,
            direction: pg.direction,
        };
        Self {
            pg,
            windows,
            lanes,
            kernels,
            config,
            queue: VecDeque::new(),
            next_id: 0,
            submitted: 0,
            accepted: 0,
            shed_overload: 0,
            rejected_invalid: 0,
            completed: 0,
            failed: 0,
            batches: 0,
            row_refs: 0,
            unique_rows: 0,
            compute_ns_total: 0,
            wall_latencies_ns: Vec::new(),
            virtual_latencies_ns: Vec::new(),
        }
    }

    /// The resident partitioned graph.
    pub fn partitioned_graph(&self) -> &PartitionedGraph {
        &self.pg
    }

    /// The service configuration the engine was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The engine's virtual clock, in nanoseconds: modeled communication and
    /// local-read time across all rank endpoints plus the measured compute
    /// time of every batch window so far. Deadlines and the reported virtual
    /// latencies run on this clock.
    pub fn virtual_now_ns(&self) -> f64 {
        let comm: f64 = self
            .lanes
            .iter()
            .map(|l| l.ep.stats().comm_time_ns + l.ep.stats().local_time_ns)
            .sum();
        comm + self.compute_ns_total as f64
    }

    /// Admits `query` with the configured default deadline.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when the queue is full (the query is shed,
    /// never silently dropped), [`ServiceError::UnknownVertex`] when an
    /// endpoint is out of range.
    pub fn submit(&mut self, query: Query) -> Result<QueryId, ServiceError> {
        self.submit_with_deadline(query, self.config.default_deadline_ns)
    }

    /// Admits `query` with an explicit per-query deadline in virtual
    /// nanoseconds (`None` waits indefinitely). See [`QueryEngine::submit`]
    /// for the error contract.
    pub fn submit_with_deadline(
        &mut self,
        query: Query,
        deadline_ns: Option<f64>,
    ) -> Result<QueryId, ServiceError> {
        self.submitted += 1;
        if let Err(e) = self.validate(&query) {
            self.rejected_invalid += 1;
            return Err(e);
        }
        if self.queue.len() >= self.config.queue_capacity {
            self.shed_overload += 1;
            return Err(ServiceError::Overloaded {
                queue_depth: self.queue.len(),
                capacity: self.config.queue_capacity,
            });
        }
        let id = QueryId(self.next_id);
        self.next_id += 1;
        self.accepted += 1;
        self.queue.push_back(Pending {
            id,
            query,
            deadline_ns,
            enqueued_vns: self.virtual_now_ns(),
            enqueued_wall: Instant::now(),
        });
        Ok(id)
    }

    /// Rejects queries naming vertices outside the resident graph.
    fn validate(&self, query: &Query) -> Result<(), ServiceError> {
        let n = self.pg.global_vertex_count();
        let check = |vertex: VertexId| {
            if (vertex as usize) < n {
                Ok(())
            } else {
                Err(ServiceError::UnknownVertex {
                    vertex,
                    vertex_count: n,
                })
            }
        };
        match *query {
            Query::CommonNeighbors { u, v } | Query::Jaccard { u, v } => {
                check(u)?;
                check(v)
            }
            Query::TopK { u, .. } => check(u),
            Query::LccOf { v } => check(v),
        }
    }

    /// Executes one batch window: drains up to [`ServiceConfig::batch_size`]
    /// queries, expires the ones whose deadline elapsed in the queue, plans
    /// and dedups the remote adjacency reads of the rest, fetches each unique
    /// row once (through the warm caches where enabled) and answers every
    /// query. Returns one [`QueryResponse`] per drained query, in admission
    /// order; an empty queue returns an empty vector.
    pub fn run_batch(&mut self) -> Vec<QueryResponse> {
        let take = self.queue.len().min(self.config.batch_size.max(1));
        if take == 0 {
            return Vec::new();
        }
        self.batches += 1;
        let batch: Vec<Pending> = self.queue.drain(..take).collect();
        let now_v = self.virtual_now_ns();
        let timer = ThreadTimer::start();

        let mut results: Vec<Option<Result<QueryAnswer, ServiceError>>> = vec![None; batch.len()];
        // Deadline pass: queries that already waited past their deadline are
        // expired with a typed error, not silently dropped.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.pg.ranks()];
        for (i, p) in batch.iter().enumerate() {
            let waited = now_v - p.enqueued_vns;
            match p.deadline_ns {
                Some(deadline) if waited > deadline => {
                    results[i] = Some(Err(ServiceError::DeadlineExceeded {
                        waited_ns: waited,
                        deadline_ns: deadline,
                    }));
                }
                _ => {
                    let home = self.pg.partitioner.owner(p.query.home_vertex());
                    groups[home].push(i);
                }
            }
        }

        // Rank groups execute in rank order; within a group the read plan is
        // sorted and deduplicated before any fetch.
        for (rank, members) in groups.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let (answers, metrics) = exec_rank_group(
                &self.pg,
                &self.windows,
                &mut self.lanes[rank],
                &self.kernels,
                &batch,
                members,
            );
            self.row_refs += metrics.row_refs;
            self.unique_rows += metrics.unique_rows;
            for (i, result) in answers {
                results[i] = Some(result);
            }
        }

        self.compute_ns_total += timer.elapsed_ns();
        let done_v = self.virtual_now_ns();
        let done_w = Instant::now();
        batch
            .into_iter()
            .zip(results)
            .map(|(p, result)| {
                let result = result.expect("every batch member got a result");
                match result {
                    Ok(_) => self.completed += 1,
                    Err(_) => self.failed += 1,
                }
                let wall_ns = done_w.duration_since(p.enqueued_wall).as_nanos() as u64;
                let virtual_ns = (done_v - p.enqueued_vns).max(0.0);
                self.wall_latencies_ns.push(wall_ns as f64);
                self.virtual_latencies_ns.push(virtual_ns);
                QueryResponse {
                    id: p.id,
                    query: p.query,
                    result,
                    wall_ns,
                    virtual_ns,
                }
            })
            .collect()
    }

    /// Runs batch windows until the queue is empty, returning every response.
    pub fn drain(&mut self) -> Vec<QueryResponse> {
        let mut out = Vec::new();
        while !self.queue.is_empty() {
            out.extend(self.run_batch());
        }
        out
    }

    /// Convenience for interactive use: admits `query` (no deadline) and runs
    /// batch windows until its response surfaces. Queued queries ahead of it
    /// are answered along the way (their responses are dropped here — use
    /// [`QueryEngine::run_batch`] to observe every response).
    ///
    /// # Errors
    ///
    /// Admission errors ([`ServiceError::Overloaded`],
    /// [`ServiceError::UnknownVertex`]) and the query's own execution failure
    /// ([`ServiceError::Read`]).
    pub fn oneshot(&mut self, query: Query) -> Result<QueryAnswer, ServiceError> {
        let id = self.submit_with_deadline(query, None)?;
        loop {
            let responses = self.run_batch();
            debug_assert!(!responses.is_empty(), "the queue holds our query");
            if let Some(r) = responses.into_iter().find(|r| r.id == id) {
                return r.result;
            }
        }
    }

    /// A point-in-time statistics snapshot (see [`ServiceStats`]).
    pub fn stats(&self) -> ServiceStats {
        let mut rma = RankStats::new(self.pg.ranks());
        let mut offsets_cache: Option<CacheStats> = None;
        let mut adjacency_cache: Option<CacheStats> = None;
        for lane in &self.lanes {
            rma.merge(lane.ep.stats());
            if let Some(c) = &lane.offsets_cache {
                merge_into(&mut offsets_cache, &c.stats());
            }
            if let Some(c) = &lane.adj_cache {
                merge_into(&mut adjacency_cache, &c.stats());
            }
        }
        ServiceStats {
            submitted: self.submitted,
            accepted: self.accepted,
            shed_overload: self.shed_overload,
            rejected_invalid: self.rejected_invalid,
            completed: self.completed,
            failed: self.failed,
            queue_depth: self.queue.len(),
            batches: self.batches,
            row_reads: self.row_refs,
            unique_row_reads: self.unique_rows,
            virtual_now_ns: self.virtual_now_ns(),
            rma,
            offsets_cache,
            adjacency_cache,
            wall_latency: LatencyPercentiles::from_samples(&self.wall_latencies_ns),
            virtual_latency: LatencyPercentiles::from_samples(&self.virtual_latencies_ns),
        }
    }
}

impl Drop for QueryEngine {
    fn drop(&mut self) {
        // Close the resident access epochs (opened in the constructor).
        for lane in &mut self.lanes {
            lane.ep.unlock_all();
        }
    }
}

fn merge_into(acc: &mut Option<CacheStats>, stats: &CacheStats) {
    match acc {
        Some(merged) => merged.merge(stats),
        None => *acc = Some(stats.clone()),
    }
}

/// A query operand row: the home partition's plain CSR row, or a fetched /
/// cached remote row in the window's storage representation (plain vertex ids
/// or compressed words).
enum Side<'a> {
    Local(&'a [VertexId]),
    Stored(&'a [VertexId]),
}

/// Per-member outcomes of one rank group, keyed by batch index.
type GroupAnswers = Vec<(usize, Result<QueryAnswer, ServiceError>)>;

/// Executes the members of one batch assigned to `lane`'s rank: plans the
/// remote reads (sort + dedup), fetches each unique row once, then answers
/// each query from the landed rows — the same operands and kernels the batch
/// pipelines use, so answers cannot diverge from them.
fn exec_rank_group(
    pg: &PartitionedGraph,
    windows: &GraphWindows,
    lane: &mut RankLane,
    kernels: &Kernels,
    batch: &[Pending],
    members: &[usize],
) -> (GroupAnswers, GroupMetrics) {
    let rank = lane.ep.rank();
    let part = &pg.partitions[rank];

    // 1. Plan: every remote row the group needs, as (owner, local index).
    let mut keys: Vec<(usize, usize)> = Vec::new();
    let mut row_refs = 0u64;
    {
        let mut note = |v: VertexId| {
            let owner = pg.partitioner.owner(v);
            if owner != rank {
                row_refs += 1;
                keys.push((owner, pg.partitioner.local_index(v)));
            }
        };
        for &i in members {
            match batch[i].query {
                Query::CommonNeighbors { v, .. } | Query::Jaccard { v, .. } => note(v),
                Query::TopK { u, .. } => {
                    for &v in part.neighbours_of_local(pg.partitioner.local_index(u)) {
                        note(v);
                    }
                }
                Query::LccOf { v } => {
                    for &w in part.neighbours_of_local(pg.partitioner.local_index(v)) {
                        note(w);
                    }
                }
            }
        }
    }
    keys.sort_unstable();
    keys.dedup();
    let metrics = GroupMetrics {
        row_refs,
        unique_rows: keys.len() as u64,
    };

    // 2. Fetch each unique row exactly once, in sorted key order. A fetch
    // failure (retry budget exhausted under an unrecoverable fault plan) is
    // held per key: only the queries referencing that row fail.
    let RankLane {
        ep,
        offsets_cache,
        adj_cache,
    } = lane;
    let offsets_cache = offsets_cache.as_ref();
    let adj_cache = adj_cache.as_ref();
    let rows: Vec<Result<RowRef<'_, VertexId>, RmaError>> = keys
        .iter()
        .map(|&(target, v_local)| {
            fetch_row(
                ep,
                offsets_cache,
                adj_cache,
                windows,
                kernels,
                target,
                v_local,
            )
        })
        .collect();

    // 3. Answer each query from the landed rows.
    let out = members
        .iter()
        .map(|&i| {
            let result = run_query(pg, part, rank, kernels, &keys, &rows, batch[i].query);
            (i, result)
        })
        .collect();
    (out, metrics)
}

/// The two-get protocol for one remote row, mirroring
/// [`crate::distributed::reader::RemoteReader::read_adjacency`]: offsets get
/// (cache-intercepted where enabled), then the adjacency get with the degree
/// proxy as its eviction score. Compressed misses record logical vs stored
/// bytes on the cache, keeping the compression win measurable in
/// [`ServiceStats`].
fn fetch_row<'c>(
    ep: &mut Endpoint,
    offsets_cache: Option<&'c ShardedCachedWindow<u64>>,
    adj_cache: Option<&'c ShardedCachedWindow<VertexId>>,
    windows: &'c GraphWindows,
    kernels: &Kernels,
    target: usize,
    v_local: usize,
) -> Result<RowRef<'c, VertexId>, RmaError> {
    let (start, end) = match offsets_cache {
        Some(cache) => {
            let row = cache.get_scored(ep, target, v_local, 2, 0.0)?;
            (row[0] as usize, row[1] as usize)
        }
        None if target == ep.rank() => {
            let row = ep.local_read(&windows.offsets, v_local, 2);
            (row[0] as usize, row[1] as usize)
        }
        None => {
            let row = ep.get_with_retry(&windows.offsets, target, v_local, 2)?;
            (row[0] as usize, row[1] as usize)
        }
    };
    let len = end - start;
    if len == 0 {
        return Ok(RowRef::Window(&[]));
    }
    let score = match kernels.score_mode {
        ScoreMode::Lru => 0.0,
        ScoreMode::DegreeCentrality => len as f64,
    };
    match adj_cache {
        Some(cache) => {
            let row = cache.get_scored(ep, target, start, len, score)?;
            if kernels.storage == GraphStorage::Compressed {
                if let RowRef::Fetched(arc) = &row {
                    cache.record_compression(
                        target,
                        start,
                        len,
                        decoded_len(arc) as u64 * 4,
                        len as u64 * 4,
                    );
                }
            }
            Ok(row)
        }
        None if target == ep.rank() => Ok(RowRef::Window(ep.local_read(
            &windows.adjacencies,
            start,
            len,
        ))),
        None => Ok(RowRef::Fetched(ep.get_with_retry(
            &windows.adjacencies,
            target,
            start,
            len,
        )?)),
    }
}

/// Resolves the operand row of vertex `v` for a query executing on `rank`:
/// locally owned rows come straight from the partition (plain ids, exactly as
/// the batch workers read them), remote rows from the batch's landed set.
fn side_of<'a>(
    pg: &PartitionedGraph,
    part: &'a rmatc_graph::partition::RankPartition,
    rank: usize,
    keys: &[(usize, usize)],
    rows: &'a [Result<RowRef<'a, VertexId>, RmaError>],
    v: VertexId,
) -> Result<Side<'a>, ServiceError> {
    let owner = pg.partitioner.owner(v);
    let v_local = pg.partitioner.local_index(v);
    if owner == rank {
        return Ok(Side::Local(part.neighbours_of_local(v_local)));
    }
    let idx = keys
        .binary_search(&(owner, v_local))
        .expect("every referenced remote row was planned");
    match &rows[idx] {
        Ok(row) => Ok(Side::Stored(row.as_slice())),
        Err(e) => Err(ServiceError::Read(e.clone())),
    }
}

/// Common-neighbour count and degree of the `v` side of a pair query — the
/// exact kernel dispatch of the Jaccard pipeline's rank loop (plain rows run
/// `Intersector::count`, compressed remote rows the fused in-place kernel with
/// the degree taken from the decoded count word).
fn pair_common(kernels: &Kernels, adj_u: &[VertexId], side: &Side<'_>) -> (u64, usize) {
    match *side {
        Side::Local(adj_v) => (kernels.intersector.count(adj_u, adj_v), adj_v.len()),
        Side::Stored(row) => match kernels.storage {
            GraphStorage::Plain => (kernels.intersector.count(adj_u, row), row.len()),
            GraphStorage::Compressed => (
                compressed_count_closing(adj_u, row, None, &kernels.model),
                decoded_len(row),
            ),
        },
    }
}

/// Closing-count contribution of the edge `(v, w)` for an LCC query — the
/// exact kernel dispatch of the LCC worker (`count_closing_at` over plain
/// rows, the fused compressed variant over compressed remote rows).
fn lcc_closing(
    kernels: &Kernels,
    adj_v: &[VertexId],
    side: &Side<'_>,
    w: VertexId,
    neighbour_idx: usize,
) -> u64 {
    match *side {
        Side::Local(adj_w) => count_closing_at(
            kernels.direction,
            adj_v,
            adj_w,
            w,
            neighbour_idx,
            &kernels.pintersector,
        ),
        Side::Stored(row) => match kernels.storage {
            GraphStorage::Plain => count_closing_at(
                kernels.direction,
                adj_v,
                row,
                w,
                neighbour_idx,
                &kernels.pintersector,
            ),
            GraphStorage::Compressed => compressed_count_closing_at(
                kernels.direction,
                adj_v,
                row,
                w,
                neighbour_idx,
                &kernels.model,
            ),
        },
    }
}

/// Answers one query from the batch's landed rows.
fn run_query(
    pg: &PartitionedGraph,
    part: &rmatc_graph::partition::RankPartition,
    rank: usize,
    kernels: &Kernels,
    keys: &[(usize, usize)],
    rows: &[Result<RowRef<'_, VertexId>, RmaError>],
    query: Query,
) -> Result<QueryAnswer, ServiceError> {
    match query {
        Query::CommonNeighbors { u, v } => {
            let adj_u = part.neighbours_of_local(pg.partitioner.local_index(u));
            let side = side_of(pg, part, rank, keys, rows, v)?;
            let (common, _) = pair_common(kernels, adj_u, &side);
            Ok(QueryAnswer::CommonNeighbors(common))
        }
        Query::Jaccard { u, v } => {
            let adj_u = part.neighbours_of_local(pg.partitioner.local_index(u));
            let side = side_of(pg, part, rank, keys, rows, v)?;
            let (common, degree_v) = pair_common(kernels, adj_u, &side);
            Ok(QueryAnswer::Jaccard(edge_similarity(
                u,
                v,
                adj_u.len(),
                degree_v,
                common,
            )))
        }
        Query::TopK { u, k } => {
            let adj_u = part.neighbours_of_local(pg.partitioner.local_index(u));
            let mut edges: Vec<EdgeSimilarity> = Vec::with_capacity(adj_u.len());
            for &v in adj_u {
                let side = side_of(pg, part, rank, keys, rows, v)?;
                let (common, degree_v) = pair_common(kernels, adj_u, &side);
                edges.push(edge_similarity(u, v, adj_u.len(), degree_v, common));
            }
            Ok(QueryAnswer::TopK(top_k_edges(&edges, k)))
        }
        Query::LccOf { v } => {
            let adj_v = part.neighbours_of_local(pg.partitioner.local_index(v));
            let mut triangles = 0u64;
            for (neighbour_idx, &w) in adj_v.iter().enumerate() {
                let side = side_of(pg, part, rank, keys, rows, w)?;
                triangles += lcc_closing(kernels, adj_v, &side, w, neighbour_idx);
            }
            Ok(QueryAnswer::Lcc(lcc_from_triangles(
                kernels.direction,
                adj_v.len() as u32,
                triangles,
            )))
        }
    }
}
