//! Shared-memory parallel intersection (Section III-C).
//!
//! The paper parallelizes the *intersection itself* rather than distributing edges
//! across threads, to keep thread imbalance low: for search-class kernels (binary
//! search, galloping) the key (shorter) array is split into equal chunks, for
//! merge-class kernels (SSI, SIMD) the longer array is split and every thread
//! intersects its chunk with the relevant window of the shorter list. A cut-off
//! avoids paying the fork/join overhead on small intersections, and the paper
//! further reduces the cost of entering parallel regions with
//! `OMP_WAIT_POLICY=active`; the persistent work-stealing pool behind the
//! vendored `rayon` facade plays that role here — entering a parallel region
//! costs an injector push onto already-running workers, not a thread spawn.

use super::binary::binary_search_count;
use super::calibrate::CostModel;
use super::galloping::{galloping_count, galloping_count_range};
use super::hybrid::IntersectMethod;
use super::simd::{simd_count, simd_count_chunk};
use super::ssi::{ssi_count, ssi_count_chunk};
use rayon::prelude::*;
use rmatc_graph::types::VertexId;

/// Default cut-off below which the intersection is computed sequentially.
pub const DEFAULT_PARALLEL_CUTOFF: usize = 8_192;

/// A parallel intersector with a sequential cut-off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelIntersector {
    method: IntersectMethod,
    /// Cost model `Hybrid` resolves kernels through (analytic by default).
    model: CostModel,
    /// Intersections where the longer list is below this length run sequentially.
    cutoff: usize,
    /// Number of chunks the parallel region is split into (typically the thread count).
    chunks: usize,
}

impl ParallelIntersector {
    /// Creates a parallel intersector. `chunks` is typically the number of threads
    /// (the paper uses up to 16); values below 1 are clamped to 1.
    pub fn new(method: IntersectMethod, chunks: usize, cutoff: usize) -> Self {
        Self {
            method,
            model: CostModel::Analytic,
            chunks: chunks.max(1),
            cutoff,
        }
    }

    /// Creates an intersector with the default cut-off.
    pub fn with_default_cutoff(method: IntersectMethod, chunks: usize) -> Self {
        Self::new(method, chunks, DEFAULT_PARALLEL_CUTOFF)
    }

    /// Same intersector resolving `Hybrid` through `model` instead of the
    /// analytic rule. The analytic path is unchanged — the model is consulted
    /// only at the per-pair dispatch that already existed.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// The configured method.
    pub fn method(&self) -> IntersectMethod {
        self.method
    }

    /// The cost model `Hybrid` resolves through.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// The concrete kernel the cost model resolves for a pair of list
    /// lengths, in either order — the same decision [`ParallelIntersector::count`]
    /// makes internally, exposed so callers that pre-route work (the
    /// distributed reader's fused miss path) can never diverge from it.
    pub fn resolved_method(&self, len_a: usize, len_b: usize) -> IntersectMethod {
        let (short, long) = if len_a <= len_b {
            (len_a, len_b)
        } else {
            (len_b, len_a)
        };
        self.method.resolve_with(short, long, &self.model)
    }

    /// Counts `|a ∩ b|`, using the parallel kernels above the cut-off.
    pub fn count(&self, a: &[VertexId], b: &[VertexId]) -> u64 {
        let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
        let method = self.resolved_method(short.len(), long.len());
        if self.chunks == 1 || long.len() < self.cutoff {
            return match method {
                IntersectMethod::SortedSetIntersection => ssi_count(short, long),
                IntersectMethod::BinarySearch => binary_search_count(short, long),
                IntersectMethod::Simd => simd_count(short, long),
                IntersectMethod::Galloping => galloping_count(short, long),
                IntersectMethod::Hybrid => unreachable!("resolve() returns a concrete method"),
            };
        }
        rayon::ensure_pool(self.chunks);
        match method {
            IntersectMethod::SortedSetIntersection => {
                self.parallel_merge(short, long, ssi_count_chunk)
            }
            IntersectMethod::Simd => self.parallel_merge(short, long, simd_count_chunk),
            IntersectMethod::BinarySearch => {
                self.parallel_search(short, long, |keys, hay, range| {
                    binary_search_count(&keys[range], hay)
                })
            }
            IntersectMethod::Galloping => self.parallel_search(short, long, galloping_count_range),
            IntersectMethod::Hybrid => unreachable!("resolve() returns a concrete method"),
        }
    }

    /// Parallel merge-class kernel: split the longer array into chunks, each
    /// thread intersects its chunk against (the relevant window of) the
    /// shorter array.
    fn parallel_merge(
        &self,
        short: &[VertexId],
        long: &[VertexId],
        kernel: impl Fn(&[VertexId], &[VertexId], std::ops::Range<usize>) -> u64 + Sync,
    ) -> u64 {
        let chunk = long.len().div_ceil(self.chunks).max(1);
        (0..self.chunks)
            .into_par_iter()
            .map(|c| {
                let start = (c * chunk).min(long.len());
                let end = (start + chunk).min(long.len());
                kernel(short, long, start..end)
            })
            .sum()
    }

    /// Parallel search-class kernel: split the key (shorter) array into chunks,
    /// each thread looks its keys up in the longer array.
    fn parallel_search(
        &self,
        short: &[VertexId],
        long: &[VertexId],
        kernel: impl Fn(&[VertexId], &[VertexId], std::ops::Range<usize>) -> u64 + Sync,
    ) -> u64 {
        let chunk = short.len().div_ceil(self.chunks).max(1);
        (0..self.chunks)
            .into_par_iter()
            .map(|c| {
                let start = (c * chunk).min(short.len());
                let end = (start + chunk).min(short.len());
                kernel(short, long, start..end)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn random_sorted(rng: &mut impl Rng, len: usize, universe: u32) -> Vec<u32> {
        let mut v: Vec<u32> = (0..len).map(|_| rng.gen_range(0..universe)).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn parallel_matches_sequential_for_all_methods() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = random_sorted(&mut rng, 20_000, 100_000);
        let b = random_sorted(&mut rng, 60_000, 100_000);
        let expected = rmatc_graph::reference::sorted_intersection_count(&a, &b);
        for method in IntersectMethod::all() {
            for chunks in [1, 2, 4, 8] {
                let ix = ParallelIntersector::new(method, chunks, 1024);
                assert_eq!(ix.count(&a, &b), expected, "{method:?} chunks={chunks}");
                assert_eq!(ix.count(&b, &a), expected, "{method:?} swapped");
            }
        }
    }

    #[test]
    fn cutoff_is_respected_without_changing_results() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = random_sorted(&mut rng, 100, 1_000);
        let b = random_sorted(&mut rng, 500, 1_000);
        let expected = rmatc_graph::reference::sorted_intersection_count(&a, &b);
        let below_cutoff = ParallelIntersector::new(IntersectMethod::Hybrid, 8, 1 << 20);
        let above_cutoff = ParallelIntersector::new(IntersectMethod::Hybrid, 8, 1);
        assert_eq!(below_cutoff.count(&a, &b), expected);
        assert_eq!(above_cutoff.count(&a, &b), expected);
    }

    #[test]
    fn empty_inputs() {
        for method in IntersectMethod::all() {
            let ix = ParallelIntersector::with_default_cutoff(method, 4);
            assert_eq!(ix.count(&[], &[1, 2, 3]), 0, "{method:?}");
            assert_eq!(ix.count(&[], &[]), 0, "{method:?}");
        }
    }

    #[test]
    fn zero_chunks_clamps_to_one() {
        let ix = ParallelIntersector::new(IntersectMethod::SortedSetIntersection, 0, 0);
        assert_eq!(ix.count(&[1, 2, 3], &[2, 3, 4]), 2);
    }

    #[test]
    fn hub_leaf_intersections_are_correct() {
        // Extremely skewed pair, the case the hybrid rule routes to galloping.
        let small = vec![10u32, 500_000, 900_000];
        let big: Vec<u32> = (0..1_000_000).step_by(2).collect();
        for method in IntersectMethod::all() {
            let ix = ParallelIntersector::new(method, 8, 1024);
            assert_eq!(ix.count(&small, &big), 3, "{method:?}");
        }
    }
}
