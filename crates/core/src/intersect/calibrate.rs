//! Runtime calibration of the hybrid cost model (ATLAS-style micro-probing).
//!
//! The analytic rule of [`hybrid`](super::hybrid) trusts two asymptotic
//! boundaries on every machine: Eq. (3)'s merge↔search crossover
//! `|B|/|A| ≤ log2(|B|) − 1` and the galloping↔binary-search rule
//! `|B| < |A|²`. Both are *model* boundaries — the constants hidden by the
//! O-notation (SIMD width, branch-miss cost, cache line economics of nearly
//! sequential vs random probes) shift the real crossovers from host to host,
//! and Table III's win margins hinge on picking the right kernel per pair.
//!
//! This module closes that gap the way ATLAS tunes BLAS: run the actual
//! kernels on a log-spaced grid of `(|A|, |B|)` shapes once, find where their
//! measured times cross, and persist the result as a [`CostProfile`]:
//!
//! * the **merge↔search boundary** becomes a piecewise-log curve — for each
//!   grid point `log2 |B|`, the ratio `|B|/|A|` at which the fastest
//!   search-class kernel overtakes the SIMD merge, linearly interpolated in
//!   `log2 |B|` between grid points (the analytic curve `log2(|B|) − 1` is a
//!   straight line in that space, so the analytic model is exactly
//!   representable — see [`CostProfile::analytic`]);
//! * the **galloping↔binary boundary** becomes a skew exponent `g`: galloping
//!   wins while `g · log2(|B|/|A|) < log2 |B|`, i.e. `|B| < |A|^(g/(g−1))`
//!   in the analytic form; the paper's model is `g = 2`. The exponent is
//!   fitted by *least regret* over the timed sweep rather than by solving
//!   through a crossover point, because a cache hierarchy can invert the
//!   family's predicted winning side (see [`fit_gallop_exponent`]). The same
//!   sweep jointly fits a **haystack-size cutoff** `log2 |B| ≥ c` past which
//!   galloping wins regardless of the gap — the cache-cliff shape documented
//!   in `docs/TUNING.md`, where restart binary search loses its hot top tree
//!   levels once the haystack spills out of cache. `c = 0` disables the
//!   cutoff, and the analytic profile keeps it disabled, so the exponent-only
//!   family stays exactly representable;
//! * the **compressed merge↔search boundary** gets its own grid
//!   (`compressed_merge_ratio`): the fused decompress+intersect kernels of
//!   [`compressed`](super::compressed) have different constants than the
//!   plain-row kernels (block decode is amortized for the merge class, while
//!   the skip kernel avoids decoding entirely), so their crossover is probed
//!   separately with the same machinery.
//!
//! A [`CostProfile`] plugs into the selection path through
//! [`CostModel::Calibrated`] — [`LocalConfig`](crate::local::LocalConfig) and
//! the distributed `DistConfig` carry a `cost_model` knob, and
//! [`IntersectMethod::resolve_with`](super::IntersectMethod::resolve_with)
//! dispatches through it. [`CostModel::Analytic`] stays the default: it is
//! deterministic across hosts, which CI and the differential tests rely on.
//!
//! Profiles persist as pretty-printed JSON under
//! `~/.cache/rmatc/profile-<host>.json` (override with the `RMATC_PROFILE`
//! environment variable) and load lazily at most once per process
//! ([`load_default_profile`]). `rmatc-calibrate` (in `rmatc-bench`) is the
//! command-line front end; `docs/TUNING.md` documents the workflow.
//!
//! Whatever the profile says, only the *kernel choice* changes — every kernel
//! returns the same counts (the differential suite in `tests/kernels.rs`
//! proves it), so a bad profile can cost time but never correctness.

use super::binary::binary_search_count;
use super::compressed::{compressed_simd_count, compressed_skip_count};
use super::galloping::galloping_count;
use super::hybrid::{select_kernel, ssi_is_faster, IntersectMethod};
use super::simd::simd_count;
use rmatc_graph::types::VertexId;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Instant;

/// `log2 |B|` of the first grid point of [`CostProfile::merge_ratio`].
pub const LOG_B_MIN: u32 = 6;

/// Number of grid points: `log2 |B|` ∈ `LOG_B_MIN ..= LOG_B_MIN + GRID_POINTS - 1`
/// (64 … 1Mi entries), one per power of two.
pub const GRID_POINTS: usize = 15;

/// Serialized format version of [`CostProfile`].
pub const PROFILE_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// The profile and the cost-model knob.
// ---------------------------------------------------------------------------

/// A machine's fitted kernel-crossover curves.
///
/// `merge_ratio[i]` is the `|B|/|A|` threshold at `log2 |B| = LOG_B_MIN + i`:
/// at or below it the merge class (SIMD block-compare) is expected to win,
/// above it the search class. Between grid points the threshold is linearly
/// interpolated in `log2 |B|`; outside the grid the nearest segment
/// extrapolates. `gallop_exponent` splits the search class: galloping wins
/// while `gallop_exponent · log2(|B|/|A|) < log2 |B|`.
///
/// Fixed-size arrays keep the profile `Copy`, so carrying it in
/// [`LocalConfig`](crate::local::LocalConfig)/`DistConfig` costs a memcpy and
/// no allocation. Serialization goes through the workspace's `serde` facade
/// ([`serde::Serialize`]/[`serde::Deserialize`] are implemented by hand
/// against its value-tree model) and round-trips bit-exactly for finite
/// values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostProfile {
    /// Merge↔search crossover ratio per `log2 |B|` grid point.
    pub merge_ratio: [f64; GRID_POINTS],
    /// Skew exponent of the galloping↔binary-search boundary (analytic: 2).
    pub gallop_exponent: f64,
    /// Merge↔search crossover ratio per grid point for the fused
    /// decompress+intersect kernels over compressed rows. The analytic
    /// profile reuses Eq. (3)'s curve, so analytic compressed selection is
    /// bit-identical to the plain rule.
    pub compressed_merge_ratio: [f64; GRID_POINTS],
    /// Haystack-size cutoff for the galloping↔binary boundary: once
    /// `log2 |B| ≥` this value, galloping wins regardless of the gap (the
    /// cache-cliff case). `0.0` disables the cutoff — the analytic default,
    /// keeping the exponent-only family bit-exact.
    pub gallop_haystack_log2: f64,
}

impl CostProfile {
    /// The profile that reproduces the analytic model *bit-exactly*: the
    /// interpolated merge threshold evaluates to exactly
    /// `log2(|B|) − 1.0` for every `|B|` (the grid stores consecutive
    /// integers minus one, so interpolation reduces to exact float
    /// arithmetic), and the gallop rule with exponent `2.0` performs the same
    /// operations as [`super::hybrid::galloping_is_faster`]. Selecting through
    /// `CostModel::Calibrated(CostProfile::analytic())` is therefore
    /// indistinguishable from `CostModel::Analytic` — the equivalence tests
    /// in `tests/calibrate.rs` check this exhaustively.
    pub fn analytic() -> Self {
        let mut merge_ratio = [0.0; GRID_POINTS];
        for (i, slot) in merge_ratio.iter_mut().enumerate() {
            *slot = (LOG_B_MIN as usize + i) as f64 - 1.0;
        }
        Self {
            merge_ratio,
            gallop_exponent: 2.0,
            compressed_merge_ratio: merge_ratio,
            gallop_haystack_log2: 0.0,
        }
    }

    /// The interpolated merge↔search threshold on `|B|/|A|` for a given
    /// `log2 |B|` (`lb`). Linear between grid points, nearest-segment
    /// extrapolation outside the grid.
    pub fn merge_threshold(&self, lb: f64) -> f64 {
        let i = ((lb.floor() as i64) - LOG_B_MIN as i64).clamp(0, GRID_POINTS as i64 - 2) as usize;
        let x_i = (LOG_B_MIN as usize + i) as f64;
        self.merge_ratio[i] + (lb - x_i) * (self.merge_ratio[i + 1] - self.merge_ratio[i])
    }

    /// Calibrated counterpart of [`super::hybrid::ssi_is_faster`]: true when
    /// the merge class is expected to win for `short_len ≤ long_len`.
    pub fn merge_is_faster(&self, short_len: usize, long_len: usize) -> bool {
        debug_assert!(short_len <= long_len);
        if short_len == 0 || long_len == 0 {
            return true;
        }
        let ratio = long_len as f64 / short_len as f64;
        ratio <= self.merge_threshold((long_len as f64).log2())
    }

    /// Calibrated counterpart of [`super::hybrid::galloping_is_faster`],
    /// with the measured skew exponent in place of the analytic `2.0`, and
    /// the fitted haystack cutoff short-circuiting the exponent rule: a
    /// haystack past the cache cliff always gallops (`0.0` = disabled).
    pub fn galloping_is_faster(&self, short_len: usize, long_len: usize) -> bool {
        debug_assert!(short_len <= long_len);
        if short_len == 0 || long_len == 0 {
            return true;
        }
        if self.gallop_haystack_log2 > 0.0 && (long_len as f64).log2() >= self.gallop_haystack_log2
        {
            return true;
        }
        let gap = (long_len as f64 / short_len as f64).max(1.0);
        self.gallop_exponent * gap.log2() < (long_len as f64).log2()
    }

    /// The interpolated compressed-kernel merge↔search threshold on
    /// `|B|/|A|` at `log2 |B| = lb` — same interpolation shape as
    /// [`merge_threshold`](Self::merge_threshold), over the compressed grid.
    pub fn compressed_merge_threshold(&self, lb: f64) -> f64 {
        let i = ((lb.floor() as i64) - LOG_B_MIN as i64).clamp(0, GRID_POINTS as i64 - 2) as usize;
        let x_i = (LOG_B_MIN as usize + i) as f64;
        self.compressed_merge_ratio[i]
            + (lb - x_i) * (self.compressed_merge_ratio[i + 1] - self.compressed_merge_ratio[i])
    }

    /// Calibrated class boundary for the fused decompress+intersect kernels:
    /// true when the block-decode merge ([`compressed_simd_count`]) is
    /// expected to beat the header-skipping search kernel
    /// ([`compressed_skip_count`]) for `short_len ≤ long_len`.
    pub fn compressed_merge_is_faster(&self, short_len: usize, long_len: usize) -> bool {
        debug_assert!(short_len <= long_len);
        if short_len == 0 || long_len == 0 {
            return true;
        }
        let ratio = long_len as f64 / short_len as f64;
        ratio <= self.compressed_merge_threshold((long_len as f64).log2())
    }

    /// The calibrated three-way kernel choice for a `(short, long)` pair —
    /// the drop-in replacement for [`select_kernel`].
    pub fn select_kernel(&self, short_len: usize, long_len: usize) -> IntersectMethod {
        if self.merge_is_faster(short_len, long_len) {
            IntersectMethod::Simd
        } else if self.galloping_is_faster(short_len, long_len) {
            IntersectMethod::Galloping
        } else {
            IntersectMethod::BinarySearch
        }
    }

    /// Structural sanity: every threshold finite, the exponent finite and
    /// positive. Enforced on deserialization so a hand-edited profile cannot
    /// smuggle NaNs into the hot path. Threshold *values* are deliberately
    /// unbounded — the fitter clamps its own output to `[1, 2^20]`, but a
    /// hand-written profile may express "never merge" (0) or "always merge"
    /// (huge) without tripping validation; selection stays well-defined for
    /// any finite curve.
    pub fn validate(&self) -> Result<(), String> {
        for (i, &t) in self.merge_ratio.iter().enumerate() {
            if !t.is_finite() {
                return Err(format!("merge_ratio[{i}] = {t} is not finite"));
            }
        }
        for (i, &t) in self.compressed_merge_ratio.iter().enumerate() {
            if !t.is_finite() {
                return Err(format!("compressed_merge_ratio[{i}] = {t} is not finite"));
            }
        }
        if !self.gallop_exponent.is_finite() || self.gallop_exponent <= 0.0 {
            return Err(format!(
                "gallop_exponent = {} must be finite and positive",
                self.gallop_exponent
            ));
        }
        if !self.gallop_haystack_log2.is_finite() || self.gallop_haystack_log2 < 0.0 {
            return Err(format!(
                "gallop_haystack_log2 = {} must be finite and non-negative",
                self.gallop_haystack_log2
            ));
        }
        Ok(())
    }

    /// Renders the profile as the persisted pretty-JSON document.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self).expect("validated profiles are finite")
    }

    /// Parses a persisted profile, validating version, grid shape, and
    /// finiteness.
    pub fn from_json(text: &str) -> Result<Self, serde::Error> {
        serde::json::from_str(text)
    }
}

impl serde::Serialize for CostProfile {
    fn to_value(&self) -> serde::Value {
        serde::Value::object([
            ("version", serde::Serialize::to_value(&PROFILE_VERSION)),
            ("log_b_min", serde::Serialize::to_value(&LOG_B_MIN)),
            ("merge_ratio", serde::Serialize::to_value(&self.merge_ratio)),
            (
                "gallop_exponent",
                serde::Serialize::to_value(&self.gallop_exponent),
            ),
            (
                "compressed_merge_ratio",
                serde::Serialize::to_value(&self.compressed_merge_ratio),
            ),
            (
                "gallop_haystack_log2",
                serde::Serialize::to_value(&self.gallop_haystack_log2),
            ),
        ])
    }
}

impl serde::Deserialize for CostProfile {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let version: u32 = field(value, "version")?;
        if version != PROFILE_VERSION {
            return Err(serde::Error::new(format!(
                "profile version {version} is not the supported {PROFILE_VERSION}"
            )));
        }
        let log_b_min: u32 = field(value, "log_b_min")?;
        if log_b_min != LOG_B_MIN {
            return Err(serde::Error::new(format!(
                "profile grid starts at log2|B| = {log_b_min}, expected {LOG_B_MIN}"
            )));
        }
        let merge_ratio: [f64; GRID_POINTS] = field(value, "merge_ratio")?;
        let profile = CostProfile {
            merge_ratio,
            gallop_exponent: field(value, "gallop_exponent")?,
            // Profiles persisted before the compressed kernels existed carry
            // neither field: default to the plain grid (the analytic
            // relationship) and a disabled cutoff rather than rejecting them.
            compressed_merge_ratio: match value.get("compressed_merge_ratio") {
                Some(v) => <[f64; GRID_POINTS]>::from_value(v)?,
                None => merge_ratio,
            },
            gallop_haystack_log2: match value.get("gallop_haystack_log2") {
                Some(v) => f64::from_value(v)?,
                None => 0.0,
            },
        };
        profile.validate().map_err(serde::Error::new)?;
        Ok(profile)
    }
}

fn field<T: serde::Deserialize>(value: &serde::Value, name: &str) -> Result<T, serde::Error> {
    T::from_value(
        value
            .get(name)
            .ok_or_else(|| serde::Error::field(name, "a value"))?,
    )
}

/// Which cost model [`IntersectMethod::Hybrid`](super::IntersectMethod)
/// resolves kernels through.
///
/// `Analytic` is the deterministic default — the paper's Eq. (3) plus the
/// `|B| < |A|²` probe rule, identical on every host, which CI and the
/// differential tests depend on. `Calibrated` carries a fitted
/// [`CostProfile`]; the analytic path pays nothing for the knob beyond one
/// predictable branch.
// The size gap between the variants is accepted: `CostModel` must stay
// `Copy` — it is embedded by value in every `Intersector`/reader and copied
// freely at setup time — and a `CostProfile` is a few hundred bytes of
// crossover grids read once per pair selection, never boxed on a hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum CostModel {
    /// Eq. (3) + `|B| < |A|²`, as written in the paper.
    #[default]
    Analytic,
    /// Crossovers measured on this machine by [`calibrate`].
    Calibrated(CostProfile),
}

impl CostModel {
    /// Resolves the kernel for a `(short, long)` pair under this model.
    #[inline]
    pub fn select(&self, short_len: usize, long_len: usize) -> IntersectMethod {
        match self {
            CostModel::Analytic => select_kernel(short_len, long_len),
            CostModel::Calibrated(profile) => profile.select_kernel(short_len, long_len),
        }
    }

    /// Class boundary for the fused decompress+intersect kernels under this
    /// model: `Analytic` applies Eq. (3) unchanged (same constants as the
    /// plain rule — deterministic across hosts), `Calibrated` consults the
    /// separately probed compressed crossover grid.
    #[inline]
    pub fn compressed_merge_is_faster(&self, short_len: usize, long_len: usize) -> bool {
        match self {
            CostModel::Analytic => ssi_is_faster(short_len, long_len),
            CostModel::Calibrated(profile) => {
                profile.compressed_merge_is_faster(short_len, long_len)
            }
        }
    }

    /// `Calibrated` with the persisted machine profile when one exists
    /// ([`load_default_profile`]), `Analytic` otherwise. The opt-in entry
    /// point for binaries that want measured crossovers without forcing every
    /// user to run the calibrator first.
    pub fn from_environment() -> Self {
        match load_default_profile() {
            Some(profile) => CostModel::Calibrated(profile),
            None => CostModel::Analytic,
        }
    }

    /// Short display label (`"analytic"` / `"calibrated"`).
    pub fn label(&self) -> &'static str {
        match self {
            CostModel::Analytic => "analytic",
            CostModel::Calibrated(_) => "calibrated",
        }
    }
}

// ---------------------------------------------------------------------------
// Persistence.
// ---------------------------------------------------------------------------

/// The path profiles persist to: `RMATC_PROFILE` when set, else
/// `$XDG_CACHE_HOME|$HOME/.cache` + `rmatc/profile-<host>-<arch>.json`, else
/// (no home at all) `./rmatc-profile.json`.
pub fn default_profile_path() -> PathBuf {
    if let Ok(path) = std::env::var("RMATC_PROFILE") {
        if !path.is_empty() {
            return PathBuf::from(path);
        }
    }
    let file = format!("profile-{}.json", host_tag());
    cache_dir()
        .map(|dir| dir.join("rmatc").join(file))
        .unwrap_or_else(|| PathBuf::from("rmatc-profile.json"))
}

fn cache_dir() -> Option<PathBuf> {
    if let Ok(xdg) = std::env::var("XDG_CACHE_HOME") {
        if !xdg.is_empty() {
            return Some(PathBuf::from(xdg));
        }
    }
    std::env::var("HOME")
        .ok()
        .filter(|h| !h.is_empty())
        .map(|h| PathBuf::from(h).join(".cache"))
}

/// `<hostname>-<arch>`, sanitized to `[A-Za-z0-9._-]` — profiles are
/// per-machine, and a profile copied across machines is exactly the failure
/// mode this tag makes visible.
pub fn host_tag() -> String {
    let hostname = std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.is_empty())
        .or_else(|| {
            std::fs::read_to_string("/proc/sys/kernel/hostname")
                .ok()
                .map(|s| s.trim().to_string())
                .filter(|h| !h.is_empty())
        })
        .unwrap_or_else(|| "host".to_string());
    let mut tag: String = hostname
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    tag.push('-');
    tag.push_str(std::env::consts::ARCH);
    tag
}

/// Writes `profile` to `path` as pretty JSON, creating parent directories.
pub fn save_profile(profile: &CostProfile, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, profile.to_json())
}

/// Reads and validates a profile from `path`.
pub fn load_profile(path: &std::path::Path) -> Result<CostProfile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    CostProfile::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Lazily loads the machine profile from [`default_profile_path`], at most
/// once per process. `None` when no profile has been persisted (or it fails
/// validation — a warning goes to stderr, and the caller falls back to the
/// analytic model rather than aborting).
pub fn load_default_profile() -> Option<CostProfile> {
    static PROFILE: OnceLock<Option<CostProfile>> = OnceLock::new();
    *PROFILE.get_or_init(|| {
        let path = default_profile_path();
        if !path.exists() {
            return None;
        }
        match load_profile(&path) {
            Ok(profile) => Some(profile),
            Err(e) => {
                eprintln!("ignoring invalid cost profile: {e}");
                None
            }
        }
    })
}

// ---------------------------------------------------------------------------
// The micro-probe.
// ---------------------------------------------------------------------------

/// Probe budget and coverage. `quick` fits in tens of milliseconds (startup /
/// CI smoke), `full` spends under a second for tighter crossovers.
#[derive(Debug, Clone)]
pub struct CalibrationConfig {
    /// Grid points (`log2 |B|`) whose merge↔search crossover is measured
    /// directly; the remaining [`GRID_POINTS`] entries are filled by
    /// piecewise-linear interpolation/extrapolation over these.
    pub probe_log_b: Vec<u32>,
    /// Key-list sizes (`log2 |A|`) probed for the galloping↔binary crossover.
    pub probe_log_a: Vec<u32>,
    /// Largest `log2 |B|` the gallop sweep may allocate.
    pub max_gallop_log_b: u32,
    /// Wall-clock budget per timing sample, in nanoseconds.
    pub sample_budget_ns: u64,
    /// Seed of the deterministic list generator (shapes only — timings are
    /// still the machine's).
    pub seed: u64,
}

impl CalibrationConfig {
    /// Thorough probe: six merge grid points up to `|B| = 2^18`, three key
    /// sizes for the gallop exponent. Under a second on a laptop core.
    ///
    /// The gallop key sizes are deliberately *large* (2^10 … 2^12): the
    /// galloping↔binary boundary only matters for hub rows (thousands of
    /// keys against out-of-cache haystacks) — at toy sizes everything is
    /// L1-resident and restart binary search wins trivially, which would fit
    /// an exponent the hot path's shapes never see.
    pub fn full() -> Self {
        Self {
            probe_log_b: vec![8, 10, 12, 14, 16, 18],
            probe_log_a: vec![10, 11, 12],
            max_gallop_log_b: 23,
            sample_budget_ns: 400_000,
            seed: 0x5eed,
        }
    }

    /// Coarse probe: three merge grid points, two key sizes; tens of
    /// milliseconds. The `--quick` mode of `rmatc-calibrate` and the CI
    /// dry-run use this.
    pub fn quick() -> Self {
        Self {
            probe_log_b: vec![8, 11, 14],
            probe_log_a: vec![10, 12],
            max_gallop_log_b: 22,
            sample_budget_ns: 120_000,
            seed: 0x5eed,
        }
    }
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// One measured merge↔search crossover.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeProbe {
    /// `log2 |B|` of the probed grid point.
    pub log_b: u32,
    /// Fitted crossover ratio `|B|/|A|` at that size.
    pub threshold: f64,
}

/// One timed galloping-vs-binary sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GallopSample {
    /// `log2 |A|` of the key list.
    pub log_a: u32,
    /// `log2 |B|` of the haystack.
    pub log_b: u32,
    /// Measured galloping time per call, nanoseconds.
    pub gallop_ns: f64,
    /// Measured restart-binary-search time per call, nanoseconds.
    pub binary_ns: f64,
}

impl GallopSample {
    /// True when galloping measured faster on this shape.
    pub fn gallop_wins(&self) -> bool {
        self.gallop_ns < self.binary_ns
    }
}

/// A fitted profile together with the raw crossover points it was fitted
/// from, for reporting (`rmatc-calibrate` prints them next to the analytic
/// curve).
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The fitted, grid-filled profile.
    pub profile: CostProfile,
    /// Measured merge↔search crossovers, one per probed grid point.
    pub merge_probes: Vec<MergeProbe>,
    /// Measured compressed-kernel merge↔search crossovers, one per probed
    /// grid point (fused block-decode merge vs header-skipping search).
    pub compressed_probes: Vec<MergeProbe>,
    /// Timed galloping-vs-binary samples across the `(|A|, |B|)` sweep.
    pub gallop_samples: Vec<GallopSample>,
}

/// Runs the micro-probe and fits a [`CostProfile`].
///
/// Deterministic in structure (the probed shapes come from a fixed-seed
/// generator) but the fitted values are *measurements* — two runs on the same
/// machine agree to noise, two machines legitimately differ. That is the
/// point.
pub fn calibrate(config: &CalibrationConfig) -> Calibration {
    let merge_probes: Vec<MergeProbe> = config
        .probe_log_b
        .iter()
        .map(|&log_b| MergeProbe {
            log_b,
            threshold: probe_merge_crossover(log_b, config),
        })
        .collect();
    let compressed_probes: Vec<MergeProbe> = config
        .probe_log_b
        .iter()
        .map(|&log_b| MergeProbe {
            log_b,
            threshold: probe_compressed_crossover(log_b, config),
        })
        .collect();
    let gallop_samples: Vec<GallopSample> = config
        .probe_log_a
        .iter()
        .flat_map(|&log_a| probe_gallop_samples(log_a, config))
        .collect();

    // Running-max pass (both grids): the true crossover ratio grows with |B|
    // (the merge kernel's linear cost amortizes better the bigger the pair),
    // so any decrease between grid slots is probe noise. Enforcing
    // monotonicity also keeps the above-grid linear extrapolation from
    // diving: a noise-descending last segment would otherwise route big
    // balanced pairs to the search class ([`CostProfile::merge_threshold`]
    // extrapolates the end segments without a clamp, to stay exact for the
    // analytic profile).
    let fill_grid = |probes: &[MergeProbe]| {
        let mut grid = [0.0; GRID_POINTS];
        for (i, slot) in grid.iter_mut().enumerate() {
            let lb = (LOG_B_MIN as usize + i) as f64;
            *slot = interpolate_probes(probes, lb);
        }
        for i in 1..GRID_POINTS {
            grid[i] = grid[i].max(grid[i - 1]);
        }
        grid
    };
    let merge_ratio = fill_grid(&merge_probes);
    let compressed_merge_ratio = fill_grid(&compressed_probes);

    let (gallop_exponent, gallop_haystack_log2) =
        fit_gallop_boundary(&gallop_samples, &merge_ratio);

    let profile = CostProfile {
        merge_ratio,
        gallop_exponent,
        compressed_merge_ratio,
        gallop_haystack_log2,
    };
    debug_assert!(profile.validate().is_ok());
    Calibration {
        profile,
        merge_probes,
        compressed_probes,
        gallop_samples,
    }
}

/// Fits the skew exponent `g` (galloping wins while
/// `g · log2(|B|/|A|) < log2 |B|`) by **least regret** over the timed
/// samples: for each candidate `g`, sum the nanoseconds lost on every sample
/// where the candidate picks the slower kernel, and keep the cheapest.
///
/// Only samples the fitted merge boundary routes to the *search class* count
/// (given `merge_ratio`): the exponent is a tie-breaker inside that class,
/// so a shape the hybrid would hand to the SIMD merge anyway — however
/// decisively binary search beats galloping there — must not drag the fit.
/// Without this conditioning the many cheap cache-resident shapes (where
/// restart binary search always wins) can outvote the expensive
/// memory-resident ones the decision actually governs.
///
/// Pass-through-the-crossover fitting (solve `g` from the measured boundary
/// point) is the obvious alternative but is wrong on real hardware: the
/// analytic family predicts galloping wins on the *small-gap* side, while a
/// modern cache hierarchy can flip that — restart binary search keeps its top
/// tree levels hot and wins every L2-resident shape, and galloping's
/// near-sequential probes win once the haystack spills to memory, *whatever*
/// the gap. When the measured boundary is such a cache cliff, no exponent
/// reproduces it exactly, and solving through the crossover point lands on
/// the worst member of the family (it inverts the winning region). Least
/// regret instead returns the projection of the machine's behaviour onto the
/// family that costs the fewest nanoseconds on the probed mix — with
/// degenerate "always gallop" / "never gallop" members available when the
/// machine really is one-sided.
pub fn fit_gallop_exponent(samples: &[GallopSample], merge_ratio: &[f64; GRID_POINTS]) -> f64 {
    fit_gallop_boundary(samples, merge_ratio).0
}

/// Joint least-regret fit of the full galloping↔binary boundary:
/// `(gallop_exponent, gallop_haystack_log2)`. The cutoff extends the
/// exponent family with exactly the shape the cache cliff produces
/// (galloping wins every haystack past some size, whatever the gap);
/// candidate `0.0` — cutoff disabled, the pure exponent family — is swept
/// first and wins ties, so the cutoff only activates when it strictly
/// reduces the summed regret on the probed mix. See [`fit_gallop_exponent`]
/// for why least regret, and the merge-gate conditioning, are the right
/// frame.
pub fn fit_gallop_boundary(
    samples: &[GallopSample],
    merge_ratio: &[f64; GRID_POINTS],
) -> (f64, f64) {
    const CANDIDATES: [f64; 12] = [1.05, 1.2, 1.4, 1.6, 1.8, 2.0, 2.25, 2.5, 3.0, 4.0, 6.0, 8.0];
    // 0.0 disables the cutoff; the rest span the plausible cache-cliff range
    // (haystacks of 2^14 … 2^24 entries, L2 through beyond-LLC).
    const CUTOFFS: [f64; 7] = [0.0, 14.0, 16.0, 18.0, 20.0, 22.0, 24.0];
    let merge_gate = CostProfile {
        merge_ratio: *merge_ratio,
        ..CostProfile::analytic() // only merge_ratio is read by merge_is_faster
    };
    let reachable: Vec<&GallopSample> = samples
        .iter()
        .filter(|s| !merge_gate.merge_is_faster(1 << s.log_a, 1 << s.log_b))
        .collect();
    if reachable.is_empty() {
        return (2.0, 0.0);
    }
    let regret_of = |g: f64, cutoff: f64| -> f64 {
        reachable
            .iter()
            .map(|s| {
                let gap = (s.log_b - s.log_a) as f64;
                let picks_gallop =
                    (cutoff > 0.0 && s.log_b as f64 >= cutoff) || g * gap < s.log_b as f64;
                let picked = if picks_gallop {
                    s.gallop_ns
                } else {
                    s.binary_ns
                };
                picked - s.gallop_ns.min(s.binary_ns)
            })
            .sum()
    };
    // Strictly-better keeps the earliest candidate, so the analytic-shaped
    // members (cutoff disabled, then smaller exponents) win ties.
    let mut best = (regret_of(2.0, 0.0), 2.0, 0.0);
    for cutoff in CUTOFFS {
        for g in CANDIDATES {
            let regret = regret_of(g, cutoff);
            if regret < best.0 {
                best = (regret, g, cutoff);
            }
        }
    }
    (best.1, best.2)
}

/// Piecewise-linear interpolation of the probed `(log_b, threshold)` points
/// at `lb`, extrapolating the end segments — the same shape
/// [`CostProfile::merge_threshold`] evaluates later, so filling the grid this
/// way adds no second approximation. Thresholds are clamped to `[1, 2^20]`
/// (a ratio below 1 cannot occur, and beyond the grid the probe has no
/// evidence).
fn interpolate_probes(probes: &[MergeProbe], lb: f64) -> f64 {
    debug_assert!(!probes.is_empty());
    if probes.len() == 1 {
        return probes[0].threshold;
    }
    let seg = probes
        .windows(2)
        .position(|w| lb < w[1].log_b as f64)
        .unwrap_or(probes.len() - 2);
    let (p0, p1) = (&probes[seg], &probes[seg + 1]);
    let (x0, x1) = (p0.log_b as f64, p1.log_b as f64);
    let t = p0.threshold + (lb - x0) * (p1.threshold - p0.threshold) / (x1 - x0);
    t.clamp(1.0, (1u64 << 20) as f64)
}

/// Finds the ratio `|B|/|A|` at which the fastest search-class kernel
/// overtakes the SIMD merge for `|B| = 2^log_b`, sweeping `|A| = |B| >> k`.
fn probe_merge_crossover(log_b: u32, config: &CalibrationConfig) -> f64 {
    let universe = (1u64 << log_b) * 4;
    let b = synthetic_sorted(
        1usize << log_b,
        universe,
        config.seed ^ ((log_b as u64) << 32),
    );
    let max_k = (log_b.saturating_sub(2)).min(11);
    let mut previous: Option<(f64, f64)> = None; // (log2 ratio, margin)
    for k in 0..=max_k {
        let a = synthetic_sorted(
            (1usize << log_b) >> k,
            universe,
            config.seed ^ 0xa5a5 ^ (k as u64),
        );
        let t_merge = time_kernel(|| simd_count(&a, &b), config.sample_budget_ns);
        let t_bin = time_kernel(|| binary_search_count(&a, &b), config.sample_budget_ns);
        let t_gal = time_kernel(|| galloping_count(&a, &b), config.sample_budget_ns);
        let t_search = t_bin.min(t_gal);
        // Positive margin: merge wins. The crossover is where it hits zero.
        let margin = (t_search / t_merge).ln();
        if margin < 0.0 {
            return match previous {
                // Interpolate the zero crossing in log2-ratio space.
                Some((prev_lr, prev_margin)) => {
                    let frac = prev_margin / (prev_margin - margin);
                    let lr = prev_lr + frac * (k as f64 - prev_lr);
                    2f64.powf(lr).max(1.0)
                }
                // Search already wins at ratio 1: merge never preferred here.
                None => 1.0,
            };
        }
        previous = Some((k as f64, margin));
    }
    // Merge won everywhere probed: the threshold is at least the largest
    // ratio swept.
    2f64.powi(max_k as i32)
}

/// Compressed-kernel counterpart of [`probe_merge_crossover`]: finds the
/// ratio `|B|/|A|` at which the header-skipping search kernel overtakes the
/// fused block-decode merge over one compressed row of `|B| = 2^log_b`
/// values, sweeping `|A| = |B| >> k` with the same crossover interpolation.
fn probe_compressed_crossover(log_b: u32, config: &CalibrationConfig) -> f64 {
    let universe = (1u64 << log_b) * 4;
    let b = synthetic_sorted(
        1usize << log_b,
        universe,
        config.seed ^ ((log_b as u64) << 32),
    );
    let mut row = Vec::new();
    rmatc_graph::compressed::compress_row(&b, &mut row);
    let max_k = (log_b.saturating_sub(2)).min(11);
    let mut previous: Option<(f64, f64)> = None;
    for k in 0..=max_k {
        let a = synthetic_sorted(
            (1usize << log_b) >> k,
            universe,
            config.seed ^ 0xa5a5 ^ (k as u64),
        );
        let t_merge = time_kernel(
            || compressed_simd_count(&a, &row, None),
            config.sample_budget_ns,
        );
        let t_skip = time_kernel(
            || compressed_skip_count(&a, &row, None),
            config.sample_budget_ns,
        );
        let margin = (t_skip / t_merge).ln();
        if margin < 0.0 {
            return match previous {
                Some((prev_lr, prev_margin)) => {
                    let frac = prev_margin / (prev_margin - margin);
                    let lr = prev_lr + frac * (k as f64 - prev_lr);
                    2f64.powf(lr).max(1.0)
                }
                None => 1.0,
            };
        }
        previous = Some((k as f64, margin));
    }
    2f64.powi(max_k as i32)
}

/// Times galloping vs restart binary search for a fixed key list
/// `|A| = 2^log_a` across a doubling `|B|` sweep. The whole sweep is kept
/// (no early exit at the first sign flip) because the win region need not be
/// one-sided — see [`fit_gallop_exponent`].
fn probe_gallop_samples(log_a: u32, config: &CalibrationConfig) -> Vec<GallopSample> {
    let max_log_b = (2 * log_a + 4).min(config.max_gallop_log_b);
    let mut samples = Vec::new();
    for log_b in (log_a + 2)..=max_log_b {
        // Keys and haystack share one value universe (scaled to the haystack,
        // like vertex ids shared by every adjacency row) so the keys spread
        // across the whole of `b`.
        let universe = (1u64 << log_b) * 4;
        let a = synthetic_sorted(1usize << log_a, universe, config.seed ^ 0x9e37);
        let b = synthetic_sorted(1usize << log_b, universe, config.seed ^ (log_b as u64));
        samples.push(GallopSample {
            log_a,
            log_b,
            gallop_ns: time_kernel(|| galloping_count(&a, &b), config.sample_budget_ns),
            binary_ns: time_kernel(|| binary_search_count(&a, &b), config.sample_budget_ns),
        });
    }
    samples
}

/// Times one kernel call: adaptively sized inner loop, best of three samples
/// (minimum is the standard noise-robust estimator for micro-kernels — load
/// spikes only ever add time).
fn time_kernel(mut f: impl FnMut() -> u64, budget_ns: u64) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    let once_ns = start.elapsed().as_nanos().max(30) as u64;
    let iters = (budget_ns / once_ns).clamp(1, 1_000_000);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Deterministic sorted, duplicate-free list of `len` values spread across
/// `0..universe`: cumulative xorshift strides with mean `universe / len`.
///
/// The shared `universe` is the load-bearing part: adjacency rows of very
/// different degrees still draw from the same vertex-id range, so a probe
/// pair must too. (Generating both lists with the same *stride* distribution
/// instead would put a short list's values in a tiny prefix of the long
/// list's range — the merge kernel then exits after that prefix and measures
/// as absurdly fast, wrecking the fit.) Independently seeded lists overlap in
/// a substantial fraction of the shorter one, the regime real rows intersect
/// in, so every kernel's match path is exercised.
fn synthetic_sorted(len: usize, universe: u64, seed: u64) -> Vec<VertexId> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Uniform strides in `1..=2·mean − 1` average `mean`, landing the last
    // value near `universe` without a second normalization pass.
    let mean = (universe / len.max(1) as u64).max(1);
    let span = 2 * mean - 1;
    let mut out = Vec::with_capacity(len);
    let mut value: u64 = next() % mean.min(8);
    for _ in 0..len {
        value += 1 + next() % span;
        out.push(value as VertexId);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_profile_reproduces_equation_three_bit_exactly() {
        let profile = CostProfile::analytic();
        for long in [1usize, 2, 63, 64, 100, 4_096, 65_536, 1 << 22] {
            for short in [1usize, 2, 7, 64, 373, 4_096] {
                let (s, l) = (short.min(long), short.max(long));
                assert_eq!(
                    profile.select_kernel(s, l),
                    select_kernel(s, l),
                    "short={s} long={l}"
                );
            }
        }
    }

    #[test]
    fn analytic_threshold_is_log2_minus_one_everywhere() {
        let profile = CostProfile::analytic();
        for long in [2usize, 64, 100, 1000, 4096, 1 << 20, 1 << 26] {
            let lb = (long as f64).log2();
            assert_eq!(profile.merge_threshold(lb).to_bits(), (lb - 1.0).to_bits());
        }
    }

    #[test]
    fn profile_json_round_trips_bit_exactly() {
        let mut profile = CostProfile::analytic();
        profile.merge_ratio[3] = 7.23456789012345;
        profile.gallop_exponent = std::f64::consts::E;
        let text = profile.to_json();
        let back = CostProfile::from_json(&text).unwrap();
        assert_eq!(back, profile);
        assert_eq!(
            back.gallop_exponent.to_bits(),
            profile.gallop_exponent.to_bits()
        );
    }

    #[test]
    fn malformed_profiles_are_rejected() {
        assert!(CostProfile::from_json("{}").is_err());
        assert!(CostProfile::from_json("not json").is_err());
        // Wrong version.
        let wrong = CostProfile::analytic()
            .to_json()
            .replace("\"version\": 1", "\"version\": 99");
        assert!(CostProfile::from_json(&wrong).is_err());
        // Wrong grid length.
        let v = serde::Value::object([
            ("version", serde::Value::Number(1.0)),
            ("log_b_min", serde::Value::Number(LOG_B_MIN as f64)),
            ("merge_ratio", serde::Value::Array(vec![])),
            ("gallop_exponent", serde::Value::Number(2.0)),
        ]);
        assert!(
            <CostProfile as serde::Deserialize>::from_value(&v).is_err(),
            "empty grid must be rejected"
        );
    }

    #[test]
    fn validation_rejects_non_finite_entries() {
        let mut profile = CostProfile::analytic();
        profile.merge_ratio[0] = f64::NAN;
        assert!(profile.validate().is_err());
        let mut profile = CostProfile::analytic();
        profile.gallop_exponent = -1.0;
        assert!(profile.validate().is_err());
    }

    #[test]
    fn cost_model_dispatches_per_variant() {
        let analytic = CostModel::Analytic;
        let skewed = CostModel::Calibrated(CostProfile {
            // Threshold 0 everywhere: never merge.
            merge_ratio: [0.0; GRID_POINTS],
            ..CostProfile::analytic()
        });
        assert_eq!(analytic.select(1024, 1024), IntersectMethod::Simd);
        assert_ne!(skewed.select(1024, 1024), IntersectMethod::Simd);
        assert_eq!(analytic.label(), "analytic");
        assert_eq!(skewed.label(), "calibrated");
    }

    #[test]
    fn synthetic_lists_are_sorted_unique_and_overlapping() {
        let a = synthetic_sorted(10_000, 40_000, 1);
        let b = synthetic_sorted(10_000, 40_000, 2);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        let common = rmatc_graph::reference::sorted_intersection_count(&a, &b);
        assert!(
            common > 1_000,
            "independently seeded lists must overlap substantially, got {common}"
        );
        // A short list over the same universe spans the long list's range —
        // the property the probe relies on (no early-exit shortcut).
        let short = synthetic_sorted(100, 40_000, 3);
        assert!(
            *short.last().unwrap() as u64 > 20_000,
            "short list must spread across the shared universe, ends at {}",
            short.last().unwrap()
        );
    }

    #[test]
    fn interpolation_passes_through_probe_points() {
        let probes = [
            MergeProbe {
                log_b: 8,
                threshold: 4.0,
            },
            MergeProbe {
                log_b: 12,
                threshold: 12.0,
            },
        ];
        assert_eq!(interpolate_probes(&probes, 8.0), 4.0);
        assert_eq!(interpolate_probes(&probes, 12.0), 12.0);
        assert_eq!(interpolate_probes(&probes, 10.0), 8.0);
        // Extrapolation continues the end segments, clamped at ratio 1.
        assert_eq!(interpolate_probes(&probes, 14.0), 16.0);
        assert_eq!(interpolate_probes(&probes, 6.0), 1.0);
    }

    #[test]
    fn fitted_grids_are_monotone_so_extrapolation_cannot_dive() {
        // A noise-descending probe set must still yield a non-decreasing
        // grid, keeping the above-grid linear extrapolation from routing big
        // balanced pairs to the search class.
        let mut config = CalibrationConfig::quick();
        config.sample_budget_ns = 5_000;
        config.probe_log_b = vec![8, 11, 14];
        config.probe_log_a = vec![];
        config.max_gallop_log_b = 12;
        let profile = calibrate(&config).profile;
        for w in profile.merge_ratio.windows(2) {
            assert!(w[0] <= w[1], "grid must be non-decreasing: {w:?}");
        }
        // Extrapolated thresholds above the grid can therefore never fall
        // below the last slot.
        assert!(profile.merge_threshold(24.0) >= profile.merge_ratio[GRID_POINTS - 1]);
    }

    #[test]
    fn quick_calibration_produces_a_valid_profile() {
        // Structural assertions only: the fitted values are measurements and
        // legitimately vary by machine; validity and bounds must not.
        let mut config = CalibrationConfig::quick();
        config.sample_budget_ns = 20_000; // keep the test fast
        config.probe_log_b = vec![8, 11];
        config.probe_log_a = vec![6];
        config.max_gallop_log_b = 14;
        let calibration = calibrate(&config);
        calibration.profile.validate().unwrap();
        assert_eq!(calibration.merge_probes.len(), 2);
        assert!(!calibration.gallop_samples.is_empty());
        for sample in &calibration.gallop_samples {
            assert!(sample.gallop_ns.is_finite() && sample.gallop_ns > 0.0);
            assert!(sample.binary_ns.is_finite() && sample.binary_ns > 0.0);
        }
        for probe in &calibration.merge_probes {
            assert!(probe.threshold >= 1.0);
        }
        for slot in calibration.profile.merge_ratio {
            assert!((1.0..=(1u64 << 20) as f64).contains(&slot));
        }
        // And the fitted profile serializes.
        let text = calibration.profile.to_json();
        assert_eq!(CostProfile::from_json(&text).unwrap(), calibration.profile);
    }

    #[test]
    fn analytic_compressed_boundary_matches_equation_three() {
        let profile = CostProfile::analytic();
        let model = CostModel::Calibrated(profile);
        for long in [1usize, 2, 63, 64, 100, 4_096, 65_536, 1 << 22] {
            for short in [1usize, 2, 7, 64, 373, 4_096] {
                let (s, l) = (short.min(long), short.max(long));
                assert_eq!(
                    model.compressed_merge_is_faster(s, l),
                    CostModel::Analytic.compressed_merge_is_faster(s, l),
                    "short={s} long={l}"
                );
                assert_eq!(
                    CostModel::Analytic.compressed_merge_is_faster(s, l),
                    ssi_is_faster(s, l)
                );
            }
        }
    }

    #[test]
    fn haystack_cutoff_forces_galloping_past_the_cliff() {
        let mut profile = CostProfile::analytic();
        // Analytic exponent would refuse this extreme skew…
        assert!(!profile.galloping_is_faster(2, 1 << 20));
        // …but a fitted cache cliff at 2^18 overrides it.
        profile.gallop_haystack_log2 = 18.0;
        assert!(profile.galloping_is_faster(2, 1 << 20));
        // Below the cliff the exponent rule still decides.
        assert!(!profile.galloping_is_faster(2, 1 << 16));
        assert!(profile.galloping_is_faster(1 << 10, 1 << 16));
    }

    #[test]
    fn legacy_profiles_without_compressed_fields_still_load() {
        // A profile persisted before the compressed kernels existed.
        let v = serde::Value::object([
            ("version", serde::Value::Number(PROFILE_VERSION as f64)),
            ("log_b_min", serde::Value::Number(LOG_B_MIN as f64)),
            (
                "merge_ratio",
                serde::Serialize::to_value(&CostProfile::analytic().merge_ratio),
            ),
            ("gallop_exponent", serde::Value::Number(2.0)),
        ]);
        let profile = <CostProfile as serde::Deserialize>::from_value(&v).unwrap();
        assert_eq!(profile, CostProfile::analytic());
    }

    #[test]
    fn joint_gallop_fit_activates_the_cutoff_only_on_cliff_shaped_data() {
        // Exponent-shaped data: galloping wins iff the gap is small.
        let exponent_shaped: Vec<GallopSample> = (14..=22)
            .flat_map(|log_b| {
                (6..log_b - 1).map(move |log_a| {
                    let gap = (log_b - log_a) as f64;
                    let gallop_wins = 2.0 * gap < log_b as f64;
                    GallopSample {
                        log_a,
                        log_b,
                        gallop_ns: if gallop_wins { 100.0 } else { 300.0 },
                        binary_ns: if gallop_wins { 300.0 } else { 100.0 },
                    }
                })
            })
            .collect();
        let grid = CostProfile::analytic().merge_ratio;
        let (_, cutoff) = fit_gallop_boundary(&exponent_shaped, &grid);
        assert_eq!(cutoff, 0.0, "no cliff in the data: cutoff must stay off");

        // Cliff-shaped data: galloping wins every haystack ≥ 2^18, loses all
        // smaller ones regardless of gap. No pure exponent represents this.
        let cliff_shaped: Vec<GallopSample> = (14..=22)
            .flat_map(|log_b| {
                (6..log_b - 1).map(move |log_a| {
                    let gallop_wins = log_b >= 18;
                    GallopSample {
                        log_a,
                        log_b,
                        gallop_ns: if gallop_wins { 100.0 } else { 300.0 },
                        binary_ns: if gallop_wins { 300.0 } else { 100.0 },
                    }
                })
            })
            .collect();
        let (exponent, cutoff) = fit_gallop_boundary(&cliff_shaped, &grid);
        assert_eq!(cutoff, 18.0, "the fitted cutoff must land on the cliff");
        // With the cutoff carrying the big haystacks, the exponent must keep
        // the small ones on binary search.
        let profile = CostProfile {
            gallop_exponent: exponent,
            gallop_haystack_log2: cutoff,
            ..CostProfile::analytic()
        };
        assert!(profile.galloping_is_faster(1 << 6, 1 << 20));
        assert!(!profile.galloping_is_faster(1 << 12, 1 << 16));
    }

    #[test]
    fn profile_path_honours_the_env_override() {
        // Can't mutate the environment safely in a threaded test runner, so
        // exercise only the pure pieces: the host tag shape and the fallback.
        let tag = host_tag();
        assert!(tag.contains('-'));
        assert!(tag
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-'));
        let path = default_profile_path();
        assert!(path.to_string_lossy().ends_with(".json"));
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let dir = std::env::temp_dir().join(format!("rmatc-calibrate-test-{}", std::process::id()));
        let path = dir.join("nested").join("profile.json");
        let profile = CostProfile::analytic();
        save_profile(&profile, &path).unwrap();
        assert_eq!(load_profile(&path).unwrap(), profile);
        std::fs::remove_dir_all(&dir).ok();
    }
}
